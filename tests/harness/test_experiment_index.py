"""Strict-open behavior of the cross-run index.

A half-understood index must never feed the regression gate, so
:func:`open_index` rejects anything that is not a readable index at
exactly the current schema version — with an error that says what was
found and what this build expects.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.harness.experiments import (
    INDEX_SCHEMA_VERSION,
    ExperimentIndexError,
    latest_run_id,
    open_index,
)


def test_missing_file_rejected_without_create(tmp_path):
    with pytest.raises(ExperimentIndexError, match="does not exist"):
        open_index(tmp_path / "nope.db")


def test_create_initializes_and_reopens(tmp_path):
    path = tmp_path / "experiments.db"
    open_index(path, create=True).close()
    conn = open_index(path)  # second open validates, does not re-create
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        assert row["value"] == str(INDEX_SCHEMA_VERSION)
    finally:
        conn.close()


def test_non_sqlite_file_rejected_with_clear_error(tmp_path):
    path = tmp_path / "junk.db"
    path.write_text("this is not a sqlite database, not even close\n" * 20)
    with pytest.raises(ExperimentIndexError, match="not a valid experiment index"):
        open_index(path)


def test_foreign_sqlite_db_rejected(tmp_path):
    path = tmp_path / "other.db"
    conn = sqlite3.connect(path)
    conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
    conn.commit()
    conn.close()
    with pytest.raises(ExperimentIndexError, match="not a valid experiment index"):
        open_index(path)


def test_truncated_meta_rejected(tmp_path):
    path = tmp_path / "torn.db"
    open_index(path, create=True).close()
    conn = sqlite3.connect(path)
    conn.execute("DELETE FROM meta")
    conn.commit()
    conn.close()
    with pytest.raises(ExperimentIndexError, match="no schema_version"):
        open_index(path)


@pytest.mark.parametrize("foreign_version", ["0", "99"])
def test_other_schema_version_rejected_by_name(tmp_path, foreign_version):
    path = tmp_path / "old.db"
    open_index(path, create=True).close()
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
        (foreign_version,),
    )
    conn.commit()
    conn.close()
    with pytest.raises(ExperimentIndexError) as err:
        open_index(path)
    # the message names both versions so the fix is obvious
    assert foreign_version in str(err.value)
    assert str(INDEX_SCHEMA_VERSION) in str(err.value)


def test_empty_index_has_no_latest_run(tmp_path):
    path = tmp_path / "empty.db"
    conn = open_index(path, create=True)
    try:
        with pytest.raises(ExperimentIndexError, match="no runs"):
            latest_run_id(conn)
    finally:
        conn.close()
