"""Engine orchestration tests: artifacts, resume, and the cross-run index.

These drive :func:`run_experiment` with an injected ``execute`` stub so
the resume/skip/persist logic is exercised without real kernels.  The
real-workload path is covered by ``test_experiment_acceptance.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.config import BenchConfig
from repro.harness.experiments import (
    ARTIFACT_SCHEMA_VERSION,
    ExperimentIndexError,
    RunDir,
    RunTable,
    get_cells,
    get_run,
    latest_run_id,
    list_runs,
    open_index,
    run_experiment,
)

CFG = BenchConfig(scale=0.1)


def small_table(repeats: int = 1) -> RunTable:
    return RunTable(
        name="stub-table",
        workload="pipeline",
        factors={"backend": ("serial", "threads"), "workers": (1, 2)},
        repeats=repeats,
    )


def stub_execute(cell, table, cfg, ctx):
    return {
        "backend": cell.factors["backend"],
        "workers": cell.factors["workers"],
        "compress_seconds_reps": [0.01, 0.02],
        "compress_throughput_mbs": 100.0,
        "ok": True,
    }


def test_run_writes_full_artifact_layout(tmp_path):
    table = small_table()
    result = run_experiment(table, CFG, tmp_path, execute=stub_execute)
    assert result.executed == 4 and result.resumed == 0
    assert result.all_ok

    run_dir = result.run_dir
    assert (run_dir / "manifest.json").is_file()
    assert (run_dir / "environment.json").is_file()
    assert (run_dir / "report.json").is_file()
    assert (run_dir / "report.md").is_file()
    cell_files = sorted((run_dir / "cells").glob("*.json"))
    assert len(cell_files) == 4

    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert manifest["config_hash"] == table.config_hash(CFG)
    assert manifest["n_cells"] == 4
    assert manifest["git_sha"]
    assert manifest["host"]["cpu_count"] >= 1


def test_fresh_runs_never_collide(tmp_path):
    a = run_experiment(small_table(), CFG, tmp_path, execute=stub_execute)
    b = run_experiment(small_table(), CFG, tmp_path, execute=stub_execute)
    assert a.run_id != b.run_id
    assert b.executed == 4 and b.resumed == 0


def test_resume_skips_exactly_the_completed_cells(tmp_path):
    table = small_table()
    crash_after = 2
    calls = []

    def crashing_execute(cell, *a):
        if len(calls) == crash_after:
            raise RuntimeError("simulated crash")
        calls.append(cell.cell_id)
        return stub_execute(cell, *a)

    with pytest.raises(RuntimeError, match="simulated crash"):
        run_experiment(table, CFG, tmp_path, execute=crashing_execute)

    run_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
    completed_before = set(RunDir(run_dir).completed_cells())
    assert completed_before == set(calls) and len(calls) == crash_after

    executed_on_resume = []

    def resuming_execute(cell, *a):
        executed_on_resume.append(cell.cell_id)
        return stub_execute(cell, *a)

    result = run_experiment(
        table, CFG, tmp_path, resume=run_dir, execute=resuming_execute
    )
    assert result.resumed == crash_after
    assert result.executed == table.n_cells - crash_after
    # exactly the incomplete cells ran, nothing was re-measured
    assert set(executed_on_resume).isdisjoint(completed_before)
    all_ids = {c.cell_id for c in table.expand()}
    assert set(executed_on_resume) | completed_before == all_ids
    assert result.all_ok


def test_resume_tolerates_torn_cell_writes(tmp_path):
    table = small_table()
    first = run_experiment(table, CFG, tmp_path, execute=stub_execute)
    victim = sorted((first.run_dir / "cells").glob("*.json"))[0]
    victim.write_text('{"cell_id": "tr')  # torn mid-write

    result = run_experiment(
        table, CFG, tmp_path, resume=first.run_dir, execute=stub_execute
    )
    assert result.resumed == table.n_cells - 1
    assert result.executed == 1


def test_resume_rejects_mismatched_config(tmp_path):
    first = run_experiment(small_table(), CFG, tmp_path, execute=stub_execute)
    other_cfg = BenchConfig(scale=0.5)
    with pytest.raises(ValueError, match="config hash"):
        run_experiment(
            small_table(), other_cfg, tmp_path,
            resume=first.run_dir, execute=stub_execute,
        )


def test_run_appends_to_index_and_reads_back(tmp_path):
    table = small_table()
    index_path = tmp_path / "experiments.db"
    result = run_experiment(
        table, CFG, tmp_path / "runs", index_path=index_path,
        execute=stub_execute,
    )

    conn = open_index(index_path)
    try:
        runs = list_runs(conn)
        assert [r["run_id"] for r in runs] == [result.run_id]
        run = get_run(conn, result.run_id)
        assert run["table_name"] == "stub-table"
        assert run["workload"] == "pipeline"
        assert run["config_hash"] == table.config_hash(CFG)
        assert latest_run_id(conn, "stub-table") == result.run_id

        cells = get_cells(conn, result.run_id)
        assert len(cells) == 4
        assert [c["cell_index"] for c in cells] == [0, 1, 2, 3]
        assert {c["cell_id"] for c in cells} == {
            c.cell_id for c in table.expand()
        }
        assert all(c["ok"] for c in cells)
        assert cells[0]["metrics"]["compress_throughput_mbs"] == 100.0
    finally:
        conn.close()


def test_index_get_run_names_known_runs_on_miss(tmp_path):
    index_path = tmp_path / "experiments.db"
    result = run_experiment(
        small_table(), CFG, tmp_path / "runs", index_path=index_path,
        execute=stub_execute,
    )
    conn = open_index(index_path)
    try:
        with pytest.raises(ExperimentIndexError, match=result.run_id):
            get_run(conn, "no-such-run")
    finally:
        conn.close()


def test_failed_cell_fails_the_run_but_still_persists(tmp_path):
    def failing_execute(cell, table, cfg, ctx):
        metrics = stub_execute(cell, table, cfg, ctx)
        if cell.index == 1:
            metrics["ok"] = False
        return metrics

    result = run_experiment(
        small_table(), CFG, tmp_path, execute=failing_execute
    )
    assert not result.all_ok
    assert [c["ok"] for c in result.cells] == [True, False, True, True]
    assert result.report["summary"]["n_ok"] == 3
    assert result.report["summary"]["all_ok"] is False
