"""Deterministic builder for the golden-file fixture index.

``tests/harness/fixtures/fixture_index.db`` is a checked-in cross-run
index holding two synthetic runs of a tiny pipeline table, with every
host-dependent value pinned (timestamps, git SHAs, host info, metrics).
The golden report files under ``tests/harness/golden/`` are the byte-
exact rendering of the second run.

Regenerate all three after an intentional schema or rendering change::

    PYTHONPATH=src python tests/harness/fixture_builder.py

The baseline run (``fixture-run-0001``) is deliberately doctored: its
compress throughput is 10x the current run's, so comparing the two with
the timing gate forced on must report a regression — the gate's own
test data lives in the same fixture.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.harness.config import BenchConfig
from repro.harness.experiments import RunTable, append_run, open_index

FIXTURES_DIR = Path(__file__).resolve().parent / "fixtures"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

BASELINE_RUN = "fixture-run-0001"
CURRENT_RUN = "fixture-run-0002"

_TABLE = RunTable(
    name="fixture-smoke",
    workload="pipeline",
    factors={
        "dataset": ("Miranda",),
        "eps": (0.001,),
        "backend": ("serial", "threads"),
        "workers": (1, 2),
        "chain_depth": (0,),
        "clients": (0,),
    },
    repeats=3,
    description="golden-file fixture table (synthetic metrics)",
)

_HOST = {
    "platform": "Linux-fixture",
    "machine": "x86_64",
    "python": "3.12.0",
    "cpu_count": 8,
    "hostname": "fixture-host",
}


def _metrics(slot: int, throughput_scale: float) -> dict:
    """Synthetic but plausible pipeline metrics, exactly reproducible."""
    base = 0.010 + 0.002 * slot
    compress_reps = [base, base * 1.25, base * 1.1]
    reduce_reps = [0.004 + 0.001 * slot, 0.005 + 0.001 * slot, 0.0045 + 0.001 * slot]
    return {
        "dataset": "Miranda",
        "field": "density",
        "eps": 0.001,
        "backend": ("serial", "serial", "threads", "threads")[slot],
        "workers": (1, 2, 1, 2)[slot],
        "chain_depth": 0,
        "clients": 0,
        "repeats": 3,
        "n_elements": 13824,
        "bytes": 55296,
        "block_size": 64,
        "compress_seconds": base,
        "compress_seconds_reps": compress_reps,
        "compress_stage_seconds": {
            "QZ": base * 0.5,
            "LZ": base * 0.2,
            "BF": base * 0.25,
        },
        "compress_throughput_mbs": throughput_scale * (55296 / 1e6) / base,
        "decompress_seconds": base * 0.6,
        "decompress_seconds_reps": [base * 0.6, base * 0.7, base * 0.65],
        "reduce_seconds": min(reduce_reps),
        "reduce_seconds_reps": reduce_reps,
        "mean": 0.125,
        "variance": 0.0625,
        "stream_identical": True,
        "reductions_identical": True,
        "roundtrip_ok": True,
        "ok": True,
    }


def _manifest(run_id: str, created: str, sha: str) -> dict:
    return {
        "schema_version": 1,
        "run_id": run_id,
        "created_utc": created,
        "table": _TABLE.to_json(),
        "config_hash": _TABLE.config_hash(BenchConfig(scale=0.25)),
        "git_sha": sha,
        "host": _HOST,
        "bench_config": {"scale": 0.25, "seed": 20240624, "max_fields": 4,
                         "repeats": 1},
        "n_cells": _TABLE.n_cells,
    }


def _cells(throughput_scale: float) -> list[dict]:
    return [
        {
            "cell_index": cell.index,
            "cell_id": cell.cell_id,
            "factors": dict(cell.factors),
            "metrics": _metrics(cell.index, throughput_scale),
            "ok": True,
        }
        for cell in _TABLE.expand()
    ]


def build_fixture_db(path: Path) -> Path:
    """Write the two-run fixture index at ``path`` (overwrites)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        path.unlink()
    conn = open_index(path, create=True)
    try:
        append_run(
            conn,
            _manifest(BASELINE_RUN, "2026-01-05T09:00:00Z", "a" * 40),
            _cells(throughput_scale=10.0),
        )
        append_run(
            conn,
            _manifest(CURRENT_RUN, "2026-01-06T09:00:00Z", "b" * 40),
            _cells(throughput_scale=1.0),
        )
    finally:
        conn.close()
    return path


def write_goldens() -> None:
    """Regenerate fixture_index.db and the golden report files."""
    from repro.harness.experiments import (
        render_report_json,
        report_from_index,
    )

    db = build_fixture_db(FIXTURES_DIR / "fixture_index.db")
    conn = open_index(db)
    try:
        report, markdown = report_from_index(conn, CURRENT_RUN)
    finally:
        conn.close()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    (GOLDEN_DIR / "fixture_report.json").write_text(render_report_json(report))
    (GOLDEN_DIR / "fixture_report.md").write_text(markdown)
    print(f"[fixture index -> {db}]")
    print(f"[goldens -> {GOLDEN_DIR}]")


if __name__ == "__main__":
    sys.exit(write_goldens())
