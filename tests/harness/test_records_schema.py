"""BENCH_*.json schema stamping and the tolerant loader.

Historical snapshots (schema version 1) carried no ``schema_version`` or
``git_sha``; every new write is stamped with both.  The loader reads
either shape and normalizes — old snapshots come back as version 1 with
an ``"unknown"`` SHA — while refusing versions newer than this build.
"""

from __future__ import annotations

import json

import pytest

from repro.harness import BENCH_SCHEMA_VERSION, load_bench_json, save_bench_json


def test_save_stamps_version_and_sha(tmp_path):
    path = save_bench_json({"experiment": "x", "speedup": 2.5}, tmp_path / "b.json")
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert isinstance(doc["git_sha"], str) and doc["git_sha"]
    assert doc["speedup"] == 2.5


def test_save_respects_caller_stamps(tmp_path):
    payload = {"schema_version": 2, "git_sha": "cafebabe", "x": 1}
    path = save_bench_json(payload, tmp_path / "b.json")
    doc = json.loads(path.read_text())
    assert doc["git_sha"] == "cafebabe"
    # and the caller's dict is not mutated
    assert payload == {"schema_version": 2, "git_sha": "cafebabe", "x": 1}


def test_load_new_shape_round_trips(tmp_path):
    path = save_bench_json({"experiment": "x"}, tmp_path / "b.json")
    doc = load_bench_json(path)
    assert doc["schema_version"] == BENCH_SCHEMA_VERSION
    assert doc["experiment"] == "x"


def test_load_old_shape_is_normalized(tmp_path):
    # a pre-stamping snapshot, written without save_bench_json
    path = tmp_path / "old.json"
    path.write_text(json.dumps({"experiment": "parallel_backends", "cells": []}))
    doc = load_bench_json(path)
    assert doc["schema_version"] == 1
    assert doc["git_sha"] == "unknown"
    assert doc["experiment"] == "parallel_backends"


def test_load_rejects_newer_versions(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"schema_version": BENCH_SCHEMA_VERSION + 1}))
    with pytest.raises(ValueError, match="schema version"):
        load_bench_json(path)


def test_load_rejects_malformed_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": "two"}))
    with pytest.raises(ValueError, match="malformed schema_version"):
        load_bench_json(path)


def test_load_rejects_non_object_documents(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="JSON benchmark object"):
        load_bench_json(path)
