"""End-to-end acceptance: real kernels through the factorial engine.

Scaled-down versions of the acceptance criteria: the predefined
parallel-backends table reproduces ``BENCH_parallel.json``'s cell
structure with every bit-identity flag true, and a chain/service cell of
the tentpole pipeline workload verifies against its eager references.
Everything runs at a tiny synthetic scale so this stays tier-1-sized;
the full-scale sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.harness.config import BenchConfig
from repro.harness.experiments import (
    RunTable,
    bench_parallel_payload,
    get_table,
    run_experiment,
)
from repro.parallel.backends import available_backends

TINY = BenchConfig(scale=0.12, repeats=1)


@pytest.fixture(scope="module")
def parallel_run(tmp_path_factory):
    table = get_table("parallel-backends", workers=(1, 2))
    import dataclasses

    table = dataclasses.replace(table, repeats=1)
    root = tmp_path_factory.mktemp("acceptance")
    return table, run_experiment(
        table, TINY, root, index_path=root / "experiments.db"
    )


def test_parallel_backends_cells_cover_the_factorial(parallel_run):
    table, result = parallel_run
    assert result.executed == table.n_cells
    combos = {
        (
            c["factors"]["backend"],
            c["factors"]["workers"],
            c["factors"]["kernel"],
        )
        for c in result.cells
    }
    assert combos == {
        (b, w, k)
        for b in available_backends()
        for w in (1, 2)
        for k in ("bitarray", "wordpack")
    }


def test_parallel_backends_identity_flags_all_true(parallel_run):
    _, result = parallel_run
    assert result.all_ok
    for cell in result.cells:
        m = cell["metrics"]
        assert m["stream_identical"] is True, cell["factors"]
        assert m["reductions_identical"] is True, cell["factors"]
        assert m["roundtrip_ok"] is True, cell["factors"]


def test_parallel_backends_reproduces_bench_payload_shape(parallel_run):
    table, result = parallel_run
    bench = bench_parallel_payload(result.manifest, result.cells)
    assert bench["experiment"] == "parallel_backends"
    assert bench["all_identical"] is True
    assert bench["workers"] == [1, 2]
    assert bench["backends"] == list(available_backends())
    assert bench["kernels"] == ["bitarray", "wordpack"]
    assert len(bench["cells"]) == table.n_cells
    for cell in bench["cells"]:
        assert set(cell) == {
            "backend", "workers", "kernel", "compress_seconds",
            "compress_stage_seconds", "decompress_seconds",
            "reduce_seconds", "mean", "variance",
            "stream_identical", "reductions_identical",
        }
        assert set(cell["compress_stage_seconds"]) == {"QZ", "LZ", "BF"}


def test_bitpack_kernel_cells_assert_byte_identity(tmp_path):
    import dataclasses

    table = get_table("bitpack-kernels", widths=(4, 11), size=4096)
    table = dataclasses.replace(table, repeats=1)
    result = run_experiment(table, TINY, tmp_path)
    assert result.all_ok
    for cell in result.cells:
        m = cell["metrics"]
        assert m["identical_to_bitarray"] is True, cell["factors"]
        assert m["roundtrip_ok"] is True, cell["factors"]
        assert m["pack_seconds"] > 0 and m["unpack_seconds"] > 0


def test_pipeline_chain_cell_verifies_against_eager_reference(tmp_path):
    table = RunTable(
        name="chain-accept",
        workload="pipeline",
        factors={
            "dataset": ("Miranda",),
            "eps": (1e-3,),
            "backend": ("serial",),
            "workers": (1,),
            "chain_depth": (3,),
            "clients": (0,),
        },
        repeats=1,
    )
    result = run_experiment(table, TINY, tmp_path)
    assert result.all_ok
    m = result.cells[0]["metrics"]
    assert m["chain_identical"] is True
    assert m["chain"] == ["negation", "scalar_add=0.25", "scalar_multiply=1.5"]
    assert m["chain_seconds"] > 0


def test_pipeline_service_cell_drives_a_real_server(tmp_path):
    table = RunTable(
        name="service-accept",
        workload="pipeline",
        factors={
            "dataset": ("Miranda",),
            "eps": (1e-3,),
            "backend": ("serial",),
            "workers": (1,),
            "chain_depth": (1,),
            "clients": (2,),
        },
        repeats=1,
        options={"requests_per_client": 2},
    )
    result = run_experiment(table, TINY, tmp_path)
    assert result.all_ok
    service = result.cells[0]["metrics"]["service"]
    assert service["completed_requests"] == service["total_requests"] == 4
    assert service["replies_identical"] is True
    assert service["errors"] == []
