"""Harness tests: configuration, rendering, persistence, tiny-scale drivers."""

from __future__ import annotations

import pytest

from repro.harness import (
    BenchConfig,
    config_from_env,
    render_result,
    render_table,
    save_result,
)
from repro.harness.runner import ExperimentResult


class TestConfig:
    def test_defaults(self):
        cfg = BenchConfig()
        assert cfg.eps == 1e-4
        assert cfg.datasets == ("Hurricane", "CESM-ATM", "SCALE-LETKF", "Miranda")

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_FIELDS", "2")
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "3")
        cfg = config_from_env()
        assert cfg.scale == 0.5 and cfg.max_fields == 2 and cfg.repeats == 3

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FIELDS", "2")
        cfg = config_from_env(max_fields=7)
        assert cfg.max_fields == 7

    def test_limit_fields(self):
        cfg = BenchConfig(max_fields=2)
        assert cfg.limit_fields(["a", "b", "c"]) == ["a", "b"]
        assert BenchConfig(max_fields=0).limit_fields(["a", "b"]) == ["a", "b"]


class TestRendering:
    def test_render_table_markdown(self):
        text = render_table(["x", "y"], [[1, 2.5], ["a", 0.000123]], title="T")
        assert "### T" in text
        assert "| x" in text and "| a" in text
        assert "0.000123" in text

    def test_render_result_with_notes(self):
        res = ExperimentResult("e1", "Title", ["a"], [[1]], notes=["check"])
        text = render_result(res)
        assert "> check" in text

    def test_save_result_writes_file(self, tmp_path):
        res = ExperimentResult("exp_x", "Title", ["a"], [[1]])
        path = save_result(res, tmp_path)
        assert path.name == "exp_x.md"
        assert "Title" in path.read_text()


@pytest.mark.slow
class TestDriversTinyScale:
    """Each driver runs end-to-end at a tiny scale and keeps its invariants."""

    @pytest.fixture(scope="class")
    def cfg(self):
        return BenchConfig(scale=0.4, max_fields=1)

    def test_table6_structure(self, cfg):
        from repro.harness import run_table6

        res = run_table6(cfg)
        assert len(res.rows) == 4
        for _, const, total, pct in res.rows:
            assert 0 <= const <= total
            assert pct == pytest.approx(100 * const / total)

    def test_table7_shape_claims(self, cfg):
        from repro.harness import run_table7

        res = run_table7(cfg)
        for row in res.rows:
            ds, szops, szp, sz2, sz3, szx, zfp = row
            assert szops > szp, f"{ds}: SZOps ratio must beat SZp"
            assert all(r > 1 for r in row[1:])

    def test_figures_5_and_6_consistent(self, cfg):
        from repro.harness import measure_ops_matrix, run_figure5, run_figure6

        matrix = measure_ops_matrix(BenchConfig(scale=0.4, max_fields=1, datasets=("Miranda",)))
        f5 = run_figure5(cfg, matrix)
        f6 = run_figure6(cfg, matrix)
        assert len(f5.rows) == len(f6.rows) == 7
        for m in matrix:
            assert m.szp_total_s > 0 and m.szops_kernel_s > 0
        # fully-compressed-space ops must be dramatically faster
        fast = {m.op_name: m.speedup for m in matrix}
        assert fast["negation"] > 5
        assert fast["scalar_add"] > 5
        assert fast["scalar_subtract"] > 5

    def test_ablation_format_recovers_szops_ratio(self, cfg):
        from repro.harness import run_ablation_format

        res = run_ablation_format(cfg)
        labels = [row[0] for row in res.rows]
        ratios = {row[0]: row[1] for row in res.rows}
        assert ratios["all three off (SZOps-shaped)"] >= ratios["SZp (faithful format)"]
        assert ratios["SZOps container"] == pytest.approx(
            ratios["all three off (SZOps-shaped)"], rel=0.06
        )

    def test_ablation_constant_blocks_monotone(self, cfg):
        from repro.harness import run_ablation_constant_blocks

        res = run_ablation_constant_blocks(cfg)
        fractions = [row[1] for row in res.rows]
        assert fractions == sorted(fractions)
        # more constant blocks should not make the reduction slower overall
        times = [row[2] for row in res.rows]
        assert times[-1] < times[0]
