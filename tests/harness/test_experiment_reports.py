"""Golden-file tests for report rendering, on the checked-in fixture index.

``fixtures/fixture_index.db`` holds two synthetic runs with every
host-dependent value pinned (see ``fixture_builder.py``); the goldens
under ``golden/`` are the byte-exact rendering of the current run.  A
rendering change must bump ``REPORT_SCHEMA_VERSION`` and regenerate the
goldens through the builder — it cannot drift silently past this suite.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.experiments import (
    REPORT_SCHEMA_VERSION,
    compare_runs,
    confidence_interval,
    open_index,
    render_report_json,
    report_from_index,
)

from tests.harness import fixture_builder

FIXTURE_DB = fixture_builder.FIXTURES_DIR / "fixture_index.db"
GOLDEN_JSON = fixture_builder.GOLDEN_DIR / "fixture_report.json"
GOLDEN_MD = fixture_builder.GOLDEN_DIR / "fixture_report.md"


@pytest.fixture(scope="module")
def fixture_report():
    conn = open_index(FIXTURE_DB)
    try:
        return report_from_index(conn, fixture_builder.CURRENT_RUN)
    finally:
        conn.close()


def test_report_json_is_byte_stable_against_golden(fixture_report):
    report, _ = fixture_report
    assert render_report_json(report) == GOLDEN_JSON.read_text()


def test_report_markdown_is_byte_stable_against_golden(fixture_report):
    _, markdown = fixture_report
    assert markdown == GOLDEN_MD.read_text()


def test_golden_report_carries_schema_version():
    doc = json.loads(GOLDEN_JSON.read_text())
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
    assert doc["summary"]["all_ok"] is True
    assert doc["summary"]["n_cells"] == 4
    # repetition statistics made it through with CIs attached
    timing = doc["cells"][0]["timing"]["compress"]
    assert timing["n"] == 3 and timing["ci95"] > 0


def test_fixture_builder_reproduces_the_goldens(tmp_path):
    """Regenerating the fixture DB from scratch yields identical bytes."""
    db = fixture_builder.build_fixture_db(tmp_path / "rebuilt.db")
    conn = open_index(db)
    try:
        report, markdown = report_from_index(conn, fixture_builder.CURRENT_RUN)
    finally:
        conn.close()
    assert render_report_json(report) == GOLDEN_JSON.read_text()
    assert markdown == GOLDEN_MD.read_text()


def test_fixture_doctored_baseline_trips_the_gate():
    """The fixture pair encodes a 90% throughput drop: gate must fail it."""
    conn = open_index(FIXTURE_DB)
    try:
        gated = compare_runs(
            conn,
            fixture_builder.BASELINE_RUN,
            fixture_builder.CURRENT_RUN,
            gate_timing="always",
        )
        generous = compare_runs(
            conn,
            fixture_builder.BASELINE_RUN,
            fixture_builder.CURRENT_RUN,
            gate_timing="always",
            max_regression_pct=95.0,
        )
    finally:
        conn.close()
    assert not gated.ok and len(gated.regressions) == 4
    assert generous.ok  # same data clears a 95% threshold


def test_confidence_interval_statistics():
    assert confidence_interval([]) == {"n": 0, "mean": 0.0, "best": 0.0, "ci95": 0.0}
    assert confidence_interval([0.5]) == {
        "n": 1, "mean": 0.5, "best": 0.5, "ci95": 0.0,
    }
    stat = confidence_interval([1.0, 2.0, 3.0])
    assert stat["n"] == 3
    assert stat["mean"] == pytest.approx(2.0)
    assert stat["best"] == 1.0
    # t(0.975, df=2) = 4.303; sd = 1, so ci95 = 4.303 / sqrt(3)
    assert stat["ci95"] == pytest.approx(4.303 / 3**0.5, rel=1e-6)
