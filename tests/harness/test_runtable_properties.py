"""Property tests for the factorial run-table engine.

The contracts pinned here are what every other experiment layer builds
on: cell count is exactly the product of the level counts, expansion
order is deterministic (row-major in declaration order, last factor
fastest), cell ids are content-addressed (stable under renumbering,
unique per assignment), and table/config hashing survives a JSON
round-trip — the resume and compare machinery match cells by these
hashes, so any drift would silently corrupt longitudinal data.
"""

from __future__ import annotations

import itertools
import json
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.harness.config import BenchConfig
from repro.harness.experiments import RunTable, get_table, table_names

# -- strategies -------------------------------------------------------------

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)
_levels = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", max_size=10),
)


@st.composite
def run_tables(draw) -> RunTable:
    n_factors = draw(st.integers(min_value=1, max_value=4))
    factor_names = draw(
        st.lists(_names, min_size=n_factors, max_size=n_factors, unique=True)
    )
    factors = {
        name: tuple(
            draw(st.lists(_levels, min_size=1, max_size=4, unique=True))
        )
        for name in factor_names
    }
    return RunTable(
        name=draw(_names),
        workload=draw(st.sampled_from(["pipeline", "ops_matrix", "fusion"])),
        factors=factors,
        repeats=draw(st.integers(min_value=1, max_value=5)),
    )


# -- expansion --------------------------------------------------------------


@given(run_tables())
def test_cell_count_is_product_of_level_counts(table):
    expected = math.prod(len(v) for v in table.factors.values())
    cells = table.expand()
    assert table.n_cells == expected
    assert len(cells) == expected
    assert [c.index for c in cells] == list(range(expected))


@given(run_tables())
def test_expansion_is_deterministic_and_row_major(table):
    first = table.expand()
    second = table.expand()
    assert first == second
    # Row-major over declaration order, last factor varying fastest:
    # exactly itertools.product over the level tuples.
    names = list(table.factors)
    expected = [
        dict(zip(names, combo))
        for combo in itertools.product(*(table.factors[n] for n in names))
    ]
    assert [dict(c.factors) for c in first] == expected


@given(run_tables())
def test_cell_ids_are_unique_and_content_addressed(table):
    cells = table.expand()
    assert len({c.cell_id for c in cells}) == len(cells)
    # Content addressing: a table listing the same factors in a different
    # declaration order yields the same ids for the same assignments.
    reversed_table = RunTable(
        name=table.name,
        workload=table.workload,
        factors=dict(reversed(list(table.factors.items()))),
        repeats=table.repeats,
    )
    by_assignment = {
        tuple(sorted(c.factors.items())): c.cell_id for c in cells
    }
    for cell in reversed_table.expand():
        key = tuple(sorted(cell.factors.items()))
        assert by_assignment[key] == cell.cell_id


# -- serialization / hashing ------------------------------------------------


@given(run_tables())
def test_table_round_trips_through_json_text(table):
    doc = json.loads(json.dumps(table.to_json()))
    restored = RunTable.from_json(doc)
    assert restored.expand() == table.expand()
    cfg = BenchConfig()
    assert restored.config_hash(cfg) == table.config_hash(cfg)


@given(run_tables(), st.integers(min_value=0, max_value=2**31))
def test_config_hash_depends_on_bench_seed(table, seed):
    cfg_a = BenchConfig(seed=seed)
    cfg_b = BenchConfig(seed=seed + 1)
    assert table.config_hash(cfg_a) != table.config_hash(cfg_b)
    assert table.config_hash(cfg_a) == table.config_hash(BenchConfig(seed=seed))


# -- predefined tables ------------------------------------------------------


def test_predefined_tables_all_expand():
    for name in table_names():
        table = get_table(name)
        cells = table.expand()
        assert cells, name
        assert len(cells) == table.n_cells, name


def test_perf_smoke_table_is_the_ci_factorial():
    table = get_table("perf-smoke")
    assert table.workload == "pipeline"
    # 2 backends x 2 worker counts x 2 chain depths x 2 bitpack kernels
    assert table.n_cells == 16
    assert table.factors["kernel"] == ("bitarray", "wordpack")
