"""Regression-gate tests: identity hard-fails, CPU-count-gated timing.

The gate's two halves have different trust models (see
:mod:`repro.harness.experiments.compare`): an ``ok=false`` cell fails the
comparison on any host, while timing regressions only fail when the
timing gate is active — ``always``, or ``auto`` with enough CPUs.
"""

from __future__ import annotations

import pytest

from repro.harness.config import BenchConfig
from repro.harness.experiments import (
    MIN_CPUS_FOR_TIMING_GATE,
    ExperimentIndexError,
    RunTable,
    append_run,
    compare_cells,
    compare_runs,
    open_index,
    run_experiment,
)


def make_cell(cell_id: str, *, throughput: float = 100.0, ok: bool = True,
              reduce_s: float = 0.05) -> dict:
    return {
        "cell_index": 0,
        "cell_id": cell_id,
        "factors": {"backend": "serial", "workers": 1},
        "metrics": {
            "compress_throughput_mbs": throughput,
            "reduce_seconds": reduce_s,
        },
        "ok": ok,
    }


def test_identical_runs_pass_under_any_gate():
    base = [make_cell("a"), make_cell("b")]
    for gate in ("auto", "always", "never"):
        result = compare_cells("pipeline", base, base, gate_timing=gate)
        assert result.ok, gate
        assert result.n_compared == 2
        assert not result.regressions


def test_identity_failure_hard_fails_even_with_gate_off():
    base = [make_cell("a")]
    cur = [make_cell("a", ok=False)]
    result = compare_cells(
        "pipeline", base, cur, gate_timing="never", cpu_count=1
    )
    assert not result.ok
    assert result.identity_failures


def test_throughput_regression_fails_when_gate_forced_on():
    base = [make_cell("a", throughput=100.0)]
    cur = [make_cell("a", throughput=50.0)]  # 50% worse
    result = compare_cells("pipeline", base, cur, gate_timing="always")
    assert result.regressions and not result.ok
    assert "compress_throughput_mbs" in result.regressions[0]


def test_seconds_regression_uses_lower_is_better():
    base = [make_cell("a", reduce_s=0.05)]
    cur = [make_cell("a", reduce_s=0.10)]  # 100% slower
    result = compare_cells("pipeline", base, cur, gate_timing="always")
    assert result.regressions and not result.ok


def test_auto_gate_follows_cpu_count():
    base = [make_cell("a", throughput=100.0)]
    cur = [make_cell("a", throughput=50.0)]
    few = compare_cells(
        "pipeline", base, cur, gate_timing="auto",
        cpu_count=MIN_CPUS_FOR_TIMING_GATE - 1,
    )
    many = compare_cells(
        "pipeline", base, cur, gate_timing="auto",
        cpu_count=MIN_CPUS_FOR_TIMING_GATE,
    )
    # The regression is recorded either way; only the verdict differs.
    assert few.regressions and few.ok and not few.timing_gate_active
    assert many.regressions and not many.ok and many.timing_gate_active


def test_regression_within_threshold_passes():
    base = [make_cell("a", throughput=100.0)]
    cur = [make_cell("a", throughput=90.0)]  # 10% worse, threshold 20%
    result = compare_cells("pipeline", base, cur, gate_timing="always")
    assert result.ok and not result.regressions


def test_improvement_is_reported_not_failed():
    base = [make_cell("a", throughput=50.0)]
    cur = [make_cell("a", throughput=200.0)]
    result = compare_cells("pipeline", base, cur, gate_timing="always")
    assert result.ok
    assert result.improvements


def test_no_overlap_fails_with_warning():
    result = compare_cells(
        "pipeline", [make_cell("a")], [make_cell("b")], gate_timing="always"
    )
    assert result.n_compared == 0
    assert not result.ok
    assert any("no baseline counterpart" in w for w in result.warnings)


def test_bad_gate_mode_rejected():
    with pytest.raises(ValueError, match="gate_timing"):
        compare_cells("pipeline", [], [], gate_timing="sometimes")


# -- through the index ------------------------------------------------------


def _indexed_pair(tmp_path, doctor=None):
    """Two stub runs in one index; ``doctor`` edits the baseline metrics."""
    table = RunTable(
        name="gate-table",
        workload="pipeline",
        factors={"backend": ("serial",), "workers": (1, 2)},
        repeats=1,
    )
    cfg = BenchConfig(scale=0.1)

    def execute(cell, table, cfg, ctx):
        return {
            "compress_throughput_mbs": 100.0,
            "reduce_seconds": 0.05,
            "ok": True,
        }

    index_path = tmp_path / "experiments.db"
    baseline = run_experiment(
        table, cfg, tmp_path / "runs", index_path=index_path, execute=execute
    )
    current = run_experiment(
        table, cfg, tmp_path / "runs", index_path=index_path, execute=execute
    )
    if doctor is not None:
        conn = open_index(index_path)
        try:
            manifest = dict(baseline.manifest)
            cells = [dict(c) for c in baseline.cells]
            for cell in cells:
                cell["metrics"] = doctor(dict(cell["metrics"]))
            append_run(conn, manifest, cells)  # idempotent overwrite
        finally:
            conn.close()
    return index_path, baseline.run_id, current.run_id


def test_compare_runs_genuine_pair_passes(tmp_path):
    index_path, base, cur = _indexed_pair(tmp_path)
    conn = open_index(index_path)
    try:
        result = compare_runs(conn, base, cur, gate_timing="always")
    finally:
        conn.close()
    assert result.ok
    assert result.n_compared == 2
    assert "PASS" in result.render()


def test_compare_runs_doctored_baseline_fails(tmp_path):
    def doctor(metrics):
        metrics["compress_throughput_mbs"] *= 10.0  # current looks 90% worse
        return metrics

    index_path, base, cur = _indexed_pair(tmp_path, doctor=doctor)
    conn = open_index(index_path)
    try:
        result = compare_runs(conn, base, cur, gate_timing="always")
        ungated = compare_runs(
            conn, base, cur, gate_timing="auto", cpu_count=1
        )
    finally:
        conn.close()
    assert not result.ok
    assert len(result.regressions) == 2
    assert "FAIL" in result.render()
    # same data, inactive gate: recorded but not failed
    assert ungated.regressions and ungated.ok


def test_compare_runs_rejects_workload_mismatch(tmp_path):
    index_path, base, cur = _indexed_pair(tmp_path)
    fusion_table = RunTable(
        name="other", workload="fusion", factors={"dataset": ("Miranda",)}
    )
    other = run_experiment(
        fusion_table, BenchConfig(), tmp_path / "runs",
        index_path=index_path,
        execute=lambda *a: {"fused_seconds": 0.01, "ok": True},
    )
    conn = open_index(index_path)
    try:
        with pytest.raises(ExperimentIndexError, match="workload"):
            compare_runs(conn, base, other.run_id)
    finally:
        conn.close()
