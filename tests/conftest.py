"""Shared fixtures for the SZOps reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import SZOps

# Hypothesis budget profiles.  CI runs the bounded "ci" profile (see
# .github/workflows/ci.yml); "thorough" is for local deep sweeps.
settings.register_profile("ci", max_examples=25, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])
settings.register_profile("dev", max_examples=60, deadline=None)
settings.register_profile("thorough", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240624)


@pytest.fixture
def codec() -> SZOps:
    return SZOps()


@pytest.fixture
def smooth_1d(rng) -> np.ndarray:
    """Random-walk signal: smooth, non-trivial deltas (float32)."""
    return np.cumsum(rng.normal(scale=5e-3, size=40_000)).astype(np.float32)


@pytest.fixture
def smooth_3d(rng) -> np.ndarray:
    """Separable wave field with mild noise (float32, 3-D)."""
    x = np.linspace(0, 3 * np.pi, 48)
    f = (
        np.sin(x)[:, None, None]
        * np.cos(0.7 * x)[None, :, None]
        * np.sin(0.4 * x + 1.0)[None, None, :]
    )
    f = f + rng.normal(scale=5e-3, size=f.shape)
    return f.astype(np.float32)


@pytest.fixture
def plateau_field(rng) -> np.ndarray:
    """Field with a constant slab -> guaranteed constant blocks."""
    f = rng.normal(size=(32, 64)).astype(np.float32)
    f = np.cumsum(f, axis=1) * 1e-2
    f[:10] = 0.25  # 10 of 32 rows constant
    return f


def max_err(a, b) -> float:
    return float(np.max(np.abs(np.asarray(a, np.float64) - np.asarray(b, np.float64))))


@pytest.fixture
def assert_within_bound():
    """Callable asserting |a - b| <= eps (+ float32 cast slack)."""

    def check(original, reconstructed, eps):
        original = np.asarray(original)
        # float64 representative rounding (half an ulp of the value) plus
        # a float32 cast ulp when the container dtype is float32.
        scale = float(np.max(np.abs(original))) + eps if original.size else eps
        slack = float(np.spacing(scale))
        if original.dtype == np.float32 and original.size:
            slack += float(np.spacing(np.float32(scale)))
        err = max_err(original, reconstructed)
        assert err <= eps + slack, f"max error {err} > eps {eps} (+slack {slack})"
        return err

    return check
