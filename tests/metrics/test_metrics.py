"""Measurement substrate tests: timing, throughput, ratio, distortion."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.metrics import (
    Timer,
    TimingBreakdown,
    aggregate_ratio,
    compression_ratio,
    gb_per_s,
    max_abs_error,
    mb_per_s,
    mean_ratio,
    nrmse,
    psnr,
    time_call,
)


class TestTiming:
    def test_timer_measures_elapsed(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.seconds > 0

    def test_time_call_returns_result_and_best(self):
        result, seconds = time_call(lambda a, b: a + b, 2, 3, repeats=3)
        assert result == 5 and seconds >= 0

    def test_time_call_validates_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_breakdown_total(self):
        bd = TimingBreakdown(decompress=1.0, operate=0.5, compress=2.0)
        assert bd.total == 3.5
        row = bd.as_row()
        assert row["total_s"] == 3.5 and row["operate_s"] == 0.5


class TestThroughput:
    def test_units(self):
        assert mb_per_s(1_000_000, 1.0) == pytest.approx(1.0)
        assert gb_per_s(2_000_000_000, 2.0) == pytest.approx(1.0)

    def test_zero_time_is_inf(self):
        assert math.isinf(mb_per_s(100, 0.0))


class TestRatio:
    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == 4.0

    def test_mean_ratio(self):
        assert mean_ratio([2.0, 4.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            mean_ratio([])

    def test_aggregate_ratio_weights_by_size(self):
        # one big poorly-compressed field dominates the aggregate
        agg = aggregate_ratio([100, 1_000_000], [10, 1_000_000])
        assert agg == pytest.approx(1000100 / 1000010)


class TestDistortion:
    def test_max_abs_error(self, rng):
        a = rng.normal(size=100)
        b = a.copy()
        b[7] += 0.5
        assert max_abs_error(a, b) == pytest.approx(0.5)

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_psnr_exact_is_inf(self, rng):
        a = rng.normal(size=50)
        assert math.isinf(psnr(a, a))

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.normal(size=10_000)
        small = a + rng.normal(scale=1e-5, size=a.shape)
        big = a + rng.normal(scale=1e-2, size=a.shape)
        assert psnr(a, small) > psnr(a, big)

    def test_nrmse(self, rng):
        a = np.linspace(0, 1, 100)
        assert nrmse(a, a) == 0.0
        assert nrmse(a, a + 0.01) == pytest.approx(0.01, rel=1e-6)
