"""ZFP lifting transform tests: near-invertibility and decorrelation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.transforms import (
    fwd_lift,
    fwd_transform_block,
    inv_lift,
    inv_transform_block,
)


class TestLift1D:
    def test_roundtrip_wiggle_bounded(self, rng):
        """zfp's lifting is reversible to within a couple of integer units."""
        a = rng.integers(-(2**30), 2**30, size=(5000, 4)).astype(np.int64)
        b = a.copy()
        fwd_lift(b)
        inv_lift(b)
        assert int(np.abs(b - a).max()) <= 4

    def test_constant_vector_maps_to_dc(self):
        a = np.full((1, 4), 1000, dtype=np.int64)
        fwd_lift(a)
        assert a[0, 0] == 1000
        assert np.array_equal(a[0, 1:], [0, 0, 0])

    def test_linear_ramp_decorrelates(self):
        a = np.array([[0, 100, 200, 300]], dtype=np.int64)
        out = a.copy()
        fwd_lift(out)
        # energy concentrates in the low-order coefficients
        assert abs(out[0, 2]) <= 2 and abs(out[0, 3]) <= 2

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            fwd_lift(np.zeros((3, 5), dtype=np.int64))
        with pytest.raises(ValueError):
            inv_lift(np.zeros((3, 5), dtype=np.int64))


class TestSeparable:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_roundtrip_wiggle_by_dimension(self, rng, d):
        a = rng.integers(-(2**28), 2**28, size=(500,) + (4,) * d).astype(np.int64)
        b = a.copy()
        fwd_transform_block(b)
        inv_transform_block(b)
        wiggle = int(np.abs(b - a).max())
        limit = {1: 4, 2: 16, 3: 64}[d]
        assert wiggle <= limit

    def test_smooth_block_concentrates_energy(self):
        x = np.linspace(0, 1, 4)
        block = (x[:, None, None] + x[None, :, None] + x[None, None, :]) * 1000
        a = block[None].astype(np.int64)
        fwd_transform_block(a)
        coeffs = np.abs(a.reshape(-1))
        # DC + the three first-order coefficients carry almost everything
        assert coeffs.sum() < 4 * coeffs.max()
