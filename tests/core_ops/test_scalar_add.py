"""Scalar addition/subtraction (fully compressed space) tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops
from repro.core.ops.scalar_add import quantized_scalar_shift


class TestScalarAdd:
    @pytest.mark.parametrize("s", [3.14, -2.7, 0.0, 1e3, -1e-5])
    def test_within_bound_of_shifted(self, codec, smooth_1d, s):
        eps = 1e-3
        c = codec.compress(smooth_1d, eps)
        x = codec.decompress(c).astype(np.float64)
        out = codec.decompress(ops.scalar_add(c, s)).astype(np.float64)
        assert np.max(np.abs(out - (x + s))) <= eps * (1 + 1e-9) + 1e-7

    def test_only_outliers_change(self, codec, smooth_1d):
        """Table V: scalar add touches neither signs nor payload."""
        c = codec.compress(smooth_1d, 1e-3)
        out = ops.scalar_add(c, 5.0)
        assert np.array_equal(out.sign_bytes, c.sign_bytes)
        assert np.array_equal(out.payload_bytes, c.payload_bytes)
        assert np.array_equal(out.widths, c.widths)
        rho, _ = quantized_scalar_shift(5.0, c.eps)
        assert np.array_equal(out.outliers, c.outliers + rho)

    def test_add_then_subtract_identity(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        back = ops.scalar_subtract(ops.scalar_add(c, 7.3), 7.3)
        assert back.to_bytes() == c.to_bytes()

    def test_inplace(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        out = ops.scalar_add(c, 1.0, inplace=True)
        assert out is c

    @given(
        s=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        eps_exp=st.integers(min_value=-5, max_value=-1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_property(self, s, eps_exp):
        eps = 10.0 ** eps_exp
        rng = np.random.default_rng(42)
        data = np.cumsum(rng.normal(size=300)) * 0.01
        codec = SZOps()
        c = codec.compress(data, eps)
        x = codec.decompress(c)
        out = codec.decompress(ops.scalar_add(c, s))
        assert np.max(np.abs(out - (x + s))) <= eps * (1 + 1e-9)

    def test_non_finite_scalar_rejected(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        with pytest.raises(ValueError):
            ops.scalar_add(c, float("nan"))


class TestScalarSubtract:
    @pytest.mark.parametrize("s", [3.14, -0.5, 12.0])
    def test_within_bound_of_shifted(self, codec, smooth_1d, s):
        eps = 1e-3
        c = codec.compress(smooth_1d, eps)
        x = codec.decompress(c).astype(np.float64)
        out = codec.decompress(ops.scalar_subtract(c, s)).astype(np.float64)
        assert np.max(np.abs(out - (x - s))) <= eps * (1 + 1e-9) + 1e-7

    def test_paper_semantics_deduct_rho(self, codec, smooth_1d):
        """Section V-A.3: subtraction deducts the quantized scalar."""
        c = codec.compress(smooth_1d, 1e-3)
        out = ops.scalar_subtract(c, 2.5)
        rho, _ = quantized_scalar_shift(2.5, c.eps)
        assert np.array_equal(out.outliers, c.outliers - rho)


class TestQuantizedShift:
    def test_paper_example(self):
        # Section V-A.2: s=0.67, eps=0.01 -> rho in {33, 34} by the formula;
        # the exact formula floor((0.67+0.01)/0.02) gives 34 and its
        # representative 0.68 is within eps of 0.67.
        rho, rep = quantized_scalar_shift(0.67, 0.01)
        assert abs(rep - 0.67) <= 0.01 + 1e-12
        assert rho == 34
