"""Error-propagation invariants on the synthetic SDRBench stand-ins.

The ISSUE-1 error-propagation satellite.  Quantization perturbs every
element by at most ``eps``, so compressed-domain statistics are provably
close to the raw-data statistics:

* ``|mean_c - mean_raw| <= eps`` — the mean of a perturbation bounded by
  eps is bounded by eps;
* ``|std_c - std_raw| <= 2*eps`` — centering is an orthogonal projection
  (operator norm 1), so the std moves by at most the RMS perturbation
  (<= eps); the factor 2 is the issue's stated envelope.

Checked on all four synthetic datasets of Table III at several bounds,
with a float32-cast half-ulp slack on top (the fields are float32).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps, ops
from repro.datasets import dataset_names, generate_fields, get_dataset

EPS_SWEEP = [1e-2, 1e-3, 1e-4]


def first_field(name: str) -> np.ndarray:
    spec = get_dataset(name)
    field_name = spec.fields[0].name
    return generate_fields(name, scale=0.25, fields=[field_name])[field_name]


@pytest.fixture(scope="module", params=dataset_names())
def dataset_case(request):
    arr = first_field(request.param)
    return request.param, arr


@pytest.mark.parametrize("eps", EPS_SWEEP)
class TestStatisticsStayBounded:
    def test_mean_within_eps(self, dataset_case, eps):
        name, arr = dataset_case
        c = SZOps().compress(arr, eps)
        raw_mean = float(np.asarray(arr, dtype=np.float64).mean())
        slack = float(np.spacing(np.abs(arr).max() + eps))
        err = abs(ops.mean(c) - raw_mean)
        assert err <= eps + slack, f"{name}: |mean_c - mean_raw| = {err} > eps {eps}"

    def test_std_within_two_eps(self, dataset_case, eps):
        name, arr = dataset_case
        c = SZOps().compress(arr, eps)
        raw_std = float(np.asarray(arr, dtype=np.float64).std())
        slack = float(np.spacing(np.abs(arr).max() + eps))
        err = abs(ops.std(c) - raw_std)
        assert err <= 2 * eps + slack, f"{name}: |std_c - std_raw| = {err} > 2*eps"

    def test_variance_consistent_with_std(self, dataset_case, eps):
        name, arr = dataset_case
        c = SZOps().compress(arr, eps)
        assert ops.variance(c) == pytest.approx(ops.std(c) ** 2, rel=1e-12)


class TestExtremaStayBounded:
    """min/max of the reconstruction are within eps of the raw extrema."""

    @pytest.mark.parametrize("eps", EPS_SWEEP)
    def test_min_max_within_eps(self, dataset_case, eps):
        name, arr = dataset_case
        c = SZOps().compress(arr, eps)
        arr64 = np.asarray(arr, dtype=np.float64)
        slack = float(np.spacing(np.abs(arr).max() + eps))
        assert abs(ops.minimum(c) - arr64.min()) <= eps + slack, name
        assert abs(ops.maximum(c) - arr64.max()) <= eps + slack, name


class TestFusedChainPropagation:
    """The fused runtime preserves the same envelopes after a chain."""

    def test_anomaly_chain_mean_bounded(self, dataset_case):
        from repro.runtime import lazy

        name, arr = dataset_case
        eps = 1e-3
        c = SZOps().compress(arr, eps)
        arr64 = np.asarray(arr, dtype=np.float64)
        raw = float((-(arr64 - arr64.mean()) * 0.5).mean())  # ~0 by construction
        got = lazy(c).scalar_subtract(float(arr64.mean())).negate().scalar_multiply(0.5).mean()
        # subtract adds <= eps scalar-quantization error, the mean itself is
        # within eps, and the 0.5 multiply halves both; keep a 2*eps envelope.
        assert abs(got - raw) <= 2 * eps
