"""Min / max / range reductions (Section III's computation-as-output examples)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops


class TestMinMax:
    def test_matches_decompressed(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        x = codec.decompress(c).astype(np.float64)
        assert ops.minimum(c) == pytest.approx(x.min(), abs=1e-6)
        assert ops.maximum(c) == pytest.approx(x.max(), abs=1e-6)
        assert ops.value_range(c) == pytest.approx(x.max() - x.min(), abs=2e-6)

    def test_within_eps_of_raw(self, codec, smooth_1d):
        eps = 1e-3
        c = codec.compress(smooth_1d, eps)
        raw = smooth_1d.astype(np.float64)
        assert abs(ops.maximum(c) - raw.max()) <= eps * (1 + 1e-6)
        assert abs(ops.minimum(c) - raw.min()) <= eps * (1 + 1e-6)

    def test_constant_blocks_contribute(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        assert c.n_constant_blocks > 0
        x = codec.decompress(c).astype(np.float64)
        assert ops.minimum(c) == pytest.approx(x.min(), abs=1e-6)
        assert ops.maximum(c) == pytest.approx(x.max(), abs=1e-6)

    def test_extreme_in_constant_block(self, codec):
        """The global max can live entirely inside a constant slab."""
        data = np.zeros(640, dtype=np.float32)
        data[:320] = 100.0  # 5 fully constant blocks carry the max
        c = codec.compress(data, 1e-3)
        assert ops.maximum(c) == pytest.approx(100.0, abs=1e-3)
        assert ops.minimum(c) == pytest.approx(0.0, abs=1e-3)

    def test_all_constant(self, codec):
        c = codec.compress(np.full(128, -7.5, dtype=np.float32), 1e-3)
        assert ops.minimum(c) == pytest.approx(-7.5, abs=1e-3)
        assert ops.value_range(c) == pytest.approx(0.0, abs=1e-9)

    @given(seed=st.integers(0, 2000), n=st.integers(1, 500))
    @settings(max_examples=30, deadline=None)
    def test_matches_decompressed_property(self, seed, n):
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=n)) * 0.05
        codec = SZOps()
        c = codec.compress(data, 1e-3)
        x = codec.decompress(c)
        assert ops.minimum(c) == pytest.approx(x.min(), abs=1e-12)
        assert ops.maximum(c) == pytest.approx(x.max(), abs=1e-12)
