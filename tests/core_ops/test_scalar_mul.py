"""Scalar multiplication (partially decompressed space) tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed


def mul_error_limit(x_hat: np.ndarray, s: float, eps: float) -> float:
    """Paper-derived bound: eps/2-ish rounding + |x_hat| * scalar quantization."""
    return eps + float(np.max(np.abs(x_hat))) * eps + 1e-9


class TestScalarMultiply:
    @pytest.mark.parametrize("s", [3.14, -1.5, 0.25, 100.0])
    def test_within_derived_bound(self, codec, smooth_1d, s):
        eps = 1e-3
        c = codec.compress(smooth_1d, eps)
        x = codec.decompress(c).astype(np.float64)
        out = codec.decompress(ops.scalar_multiply(c, s)).astype(np.float64)
        assert np.max(np.abs(out - s * x)) <= mul_error_limit(x, s, eps)

    def test_paper_example_block(self, codec):
        """Section V-A.4 worked example: q={-1,-1,-3,-3}, s=3.14, eps=0.01."""
        data = np.array([-0.025, -0.025, -0.051, -0.052], dtype=np.float64)
        c = codec.compress(data, 0.01)
        out = ops.scalar_multiply(c, 3.14)
        q_new = codec.decompress_quantized(out)
        assert np.array_equal(q_new, [-3, -3, -9, -9])

    def test_zero_scalar_gives_constant_zero(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        out = ops.scalar_multiply(c, 0.0)
        assert out.constant_fraction == 1.0
        assert np.allclose(codec.decompress(out), 0.0)

    def test_constant_blocks_stay_constant(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        const_before = c.constant_mask
        out = ops.scalar_multiply(c, 2.5)
        # every input-constant block is still constant in the output
        assert np.all(out.constant_mask[const_before])

    def test_eps_preserved(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        out = ops.scalar_multiply(c, 7.0)
        assert out.eps == c.eps
        assert out.shape == c.shape

    def test_input_not_mutated(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        before = c.to_bytes()
        ops.scalar_multiply(c, 9.0)
        assert c.to_bytes() == before

    def test_result_serializes(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        out = ops.scalar_multiply(c, -2.25)
        parsed = SZOpsCompressed.from_bytes(out.to_bytes())
        assert np.array_equal(codec.decompress(parsed), codec.decompress(out))

    def test_overflow_guarded(self, codec):
        data = np.linspace(0, 1e6, 1000, dtype=np.float64)
        c = codec.compress(data, 1e-6)
        with pytest.raises(OperationError, match="overflow"):
            ops.scalar_multiply(c, 1e12)

    @given(
        s=st.floats(min_value=-50, max_value=50, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, s, seed):
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=200)) * 0.05
        eps = 1e-3
        codec = SZOps()
        c = codec.compress(data, eps)
        x = codec.decompress(c)
        out = codec.decompress(ops.scalar_multiply(c, s))
        assert np.max(np.abs(out - s * x)) <= mul_error_limit(x, s, eps)


class TestOverflowEdges:
    """The overflow guard must raise the documented error, never wrap.

    The guard rejects requantized magnitudes at or beyond 2^62 (headroom
    below int64 max so later compressed-space adds cannot wrap either).
    These cases pin the threshold from both sides with exact powers of two:
    eps = 0.5 makes every representative value ``2*eps*q = q``.
    """

    @pytest.fixture
    def pow2_stream(self, codec):
        # single element 2^31 at eps 0.5 -> quantized exactly to q = 2^31
        c = codec.compress(np.array([float(2**31)]), 0.5)
        assert codec.decompress_quantized(c)[0] == 2**31
        return c

    def test_just_under_threshold_is_exact(self, codec, pow2_stream):
        # 2^31 * 2^30 = 2^61 < 2^62: must pass through without wrapping
        out = ops.scalar_multiply(pow2_stream, float(2**30))
        assert codec.decompress_quantized(out)[0] == 2**61

    @pytest.mark.parametrize("s", [float(2**31), -float(2**31)])
    def test_at_threshold_raises_documented_error(self, pow2_stream, s):
        # |2^31 * 2^31| = 2^62: exactly at the limit -> documented error
        with pytest.raises(
            OperationError, match="overflows the quantized integer range"
        ):
            ops.scalar_multiply(pow2_stream, s)

    def test_negative_factor_just_under_threshold(self, codec, pow2_stream):
        out = ops.scalar_multiply(pow2_stream, -float(2**30))
        assert codec.decompress_quantized(out)[0] == -(2**61)

    def test_zero_factor_never_overflows(self, codec, pow2_stream):
        out = ops.scalar_multiply(pow2_stream, 0.0)
        assert codec.decompress_quantized(out)[0] == 0

    def test_nonfinite_product_raises_not_wraps(self, codec):
        # q * s_rep overflows float64 to inf; the guard must catch the
        # non-finite value instead of wrapping it through astype(int64)
        c = codec.compress(np.array([1e15]), 1.0)
        with pytest.raises(
            OperationError, match="overflows the quantized integer range"
        ):
            ops.scalar_multiply(c, 1e300)

    def test_unquantizable_scalar_raises(self, codec, smooth_1d):
        # the scalar itself overflows the bin ratio at this eps
        c = codec.compress(smooth_1d, 1e-10)
        with pytest.raises(OperationError, match="cannot be quantized"):
            ops.scalar_multiply(c, 1e300)

    def test_inf_scalar_rejected(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        with pytest.raises(OperationError, match="cannot be quantized"):
            ops.scalar_multiply(c, float("inf"))

    def test_guard_leaves_input_untouched(self, pow2_stream):
        before = pow2_stream.to_bytes()
        with pytest.raises(OperationError):
            ops.scalar_multiply(pow2_stream, float(2**31))
        assert pow2_stream.to_bytes() == before
