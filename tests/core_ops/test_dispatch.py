"""Operation registry tests — Table II and Table V as executable assertions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps, ops
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops import OPERATIONS, apply_operation, operation_names


class TestTableII:
    """The registry must encode exactly the paper's Table II."""

    def test_seven_operations(self):
        assert operation_names() == [
            "negation",
            "scalar_add",
            "scalar_subtract",
            "scalar_multiply",
            "mean",
            "variance",
            "std",
        ]

    def test_kinds_and_result_types(self):
        expected = {
            "negation": ("operation", "compression"),
            "scalar_add": ("operation", "compression"),
            "scalar_subtract": ("operation", "compression"),
            "scalar_multiply": ("operation", "compression"),
            "mean": ("reduction", "computation"),
            "variance": ("reduction", "computation"),
            "std": ("reduction", "computation"),
        }
        for name, (kind, result) in expected.items():
            assert OPERATIONS[name].kind == kind
            assert OPERATIONS[name].result == result

    def test_spaces_match_table_v(self):
        """Table V: neg/add/sub fully compressed; mul and reductions partial."""
        assert OPERATIONS["negation"].space == "full"
        assert OPERATIONS["scalar_add"].space == "full"
        assert OPERATIONS["scalar_subtract"].space == "full"
        assert OPERATIONS["scalar_multiply"].space == "partial"
        for red in ("mean", "variance", "std"):
            assert OPERATIONS[red].space == "partial"


class TestDispatch:
    def test_apply_compression_ops(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        for name in ("negation", "scalar_add", "scalar_subtract", "scalar_multiply"):
            scalar = 2.0 if OPERATIONS[name].needs_scalar else None
            out = apply_operation(c, name, scalar)
            assert isinstance(out, SZOpsCompressed)

    def test_apply_reductions(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        for name in ("mean", "variance", "std"):
            out = apply_operation(c, name)
            assert isinstance(out, float)

    def test_unknown_operation_rejected(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        with pytest.raises(OperationError, match="unknown"):
            apply_operation(c, "matmul")

    def test_missing_scalar_rejected(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        with pytest.raises(OperationError, match="requires a scalar"):
            apply_operation(c, "scalar_add")

    def test_unexpected_scalar_rejected(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        with pytest.raises(OperationError, match="takes no scalar"):
            apply_operation(c, "mean", 3.0)


class TestFullSpaceInvariant:
    """Executable Table V: fully-compressed-space ops never read the payload."""

    @pytest.mark.parametrize("name,scalar", [("negation", None), ("scalar_add", 3.0), ("scalar_subtract", 3.0)])
    def test_payload_bytes_shared_or_equal(self, codec, smooth_1d, name, scalar):
        c = codec.compress(smooth_1d, 1e-3)
        out = apply_operation(c, name, scalar)
        assert np.array_equal(out.payload_bytes, c.payload_bytes)
