"""Negation (fully compressed space) tests."""

from __future__ import annotations

import numpy as np

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed


class TestNegation:
    def test_exact_negation(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        x = codec.decompress(c)
        assert np.array_equal(codec.decompress(ops.negate(c)), -x)

    def test_involution(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        twice = ops.negate(ops.negate(c))
        assert twice.to_bytes() == c.to_bytes()

    def test_payload_untouched(self, codec, smooth_1d):
        """Table V: negation runs with no payload decompression at all."""
        c = codec.compress(smooth_1d, 1e-3)
        n = ops.negate(c)
        assert np.array_equal(n.payload_bytes, c.payload_bytes)
        assert np.array_equal(n.widths, c.widths)

    def test_outliers_negated(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        n = ops.negate(c)
        assert np.array_equal(n.outliers, -c.outliers)

    def test_inplace(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        x = codec.decompress(c)
        out = ops.negate(c, inplace=True)
        assert out is c
        assert np.array_equal(codec.decompress(c), -x)

    def test_not_inplace_by_default(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        before = c.to_bytes()
        ops.negate(c)
        assert c.to_bytes() == before

    def test_after_serialization_roundtrip(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        parsed = SZOpsCompressed.from_bytes(c.to_bytes())
        assert np.array_equal(
            codec.decompress(ops.negate(parsed)), -codec.decompress(c)
        )

    def test_constant_blocks(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        assert c.n_constant_blocks > 0
        x = codec.decompress(c)
        assert np.array_equal(codec.decompress(ops.negate(c)), -x)

    def test_result_serializes(self, codec, smooth_1d):
        """The negated container must be a valid stream (padding bits clean)."""
        c = codec.compress(smooth_1d, 1e-3)
        n = ops.negate(c)
        parsed = SZOpsCompressed.from_bytes(n.to_bytes())
        assert np.array_equal(codec.decompress(parsed), codec.decompress(n))
