"""Future-work multivariate operations and measures (Section VII)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps, ops
from repro.core.errors import OperationError


@pytest.fixture
def pair(codec, rng):
    x = np.cumsum(rng.normal(scale=2e-2, size=5000)).astype(np.float32)
    y = np.cumsum(rng.normal(scale=2e-2, size=5000)).astype(np.float32)
    ca = codec.compress(x, 1e-4)
    cb = codec.compress(y, 1e-4)
    return ca, cb, codec.decompress(ca).astype(np.float64), codec.decompress(cb).astype(np.float64)


class TestAddSubtract:
    def test_add_exact_over_represented(self, codec, pair):
        ca, cb, xa, xb = pair
        out = codec.decompress(ops.add(ca, cb)).astype(np.float64)
        assert np.max(np.abs(out - (xa + xb))) <= 1e-6

    def test_subtract_exact_over_represented(self, codec, pair):
        ca, cb, xa, xb = pair
        out = codec.decompress(ops.subtract(ca, cb)).astype(np.float64)
        assert np.max(np.abs(out - (xa - xb))) <= 1e-6

    def test_subtract_self_is_zero(self, codec, pair):
        ca, _, _, _ = pair
        out = codec.decompress(ops.subtract(ca, ca))
        assert np.allclose(out, 0.0)

    def test_constant_pairs_skip_payload(self, codec):
        a = codec.compress(np.full(640, 1.0, dtype=np.float32), 1e-3)
        b = codec.compress(np.full(640, 2.0, dtype=np.float32), 1e-3)
        out = ops.add(a, b)
        assert out.constant_fraction == 1.0
        assert out.payload_bytes.size == 0
        assert np.allclose(codec.decompress(out), 3.0, atol=2e-3)

    def test_shape_mismatch_rejected(self, codec, rng):
        a = codec.compress(rng.normal(size=100).astype(np.float32), 1e-3)
        b = codec.compress(rng.normal(size=101).astype(np.float32), 1e-3)
        with pytest.raises(OperationError, match="shape"):
            ops.add(a, b)

    def test_eps_mismatch_rejected(self, codec, rng):
        data = rng.normal(size=100).astype(np.float32)
        a = codec.compress(data, 1e-3)
        b = codec.compress(data, 1e-4)
        with pytest.raises(OperationError, match="error-bound"):
            ops.add(a, b)

    def test_block_size_mismatch_rejected(self, rng):
        data = rng.normal(size=256).astype(np.float32)
        a = SZOps(block_size=64).compress(data, 1e-3)
        b = SZOps(block_size=128).compress(data, 1e-3)
        with pytest.raises(OperationError, match="block size"):
            ops.add(a, b)


class TestMeasures:
    def test_dot(self, pair):
        ca, cb, xa, xb = pair
        # xa/xb are float32 casts of the represented values, so allow
        # a few float32 ulps of relative slack.
        assert ops.dot(ca, cb) == pytest.approx(float(np.dot(xa, xb)), rel=5e-6)

    def test_l2_distance(self, pair):
        ca, cb, xa, xb = pair
        assert ops.l2_distance(ca, cb) == pytest.approx(
            float(np.linalg.norm(xa - xb)), rel=5e-6, abs=1e-9
        )

    def test_l2_distance_to_self_zero(self, pair):
        ca, _, _, _ = pair
        assert ops.l2_distance(ca, ca) == pytest.approx(0.0, abs=1e-9)

    def test_cosine_similarity(self, pair):
        ca, cb, xa, xb = pair
        expected = float(np.dot(xa, xb) / (np.linalg.norm(xa) * np.linalg.norm(xb)))
        assert ops.cosine_similarity(ca, cb) == pytest.approx(expected, rel=5e-6)

    def test_cosine_of_zero_rejected(self, codec):
        zero = codec.compress(np.zeros(64, dtype=np.float32), 1e-3)
        with pytest.raises(OperationError, match="zero"):
            ops.cosine_similarity(zero, zero)

    def test_measures_with_constant_blocks(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        x = codec.decompress(c).astype(np.float64).reshape(-1)
        assert ops.dot(c, c) == pytest.approx(float(np.dot(x, x)), rel=5e-6)
