"""Mean / variance / standard deviation (quantized-domain) tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops


class TestMean:
    def test_matches_decompressed_mean(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        x = codec.decompress(c).astype(np.float64)
        assert ops.mean(c) == pytest.approx(x.mean(), abs=1e-10)

    def test_paper_example(self, codec):
        """Section V-B.1: q = {-1,-1,-3,-3}, eps=0.01 -> mean -0.04."""
        data = np.array([-0.025, -0.025, -0.051, -0.052])
        c = codec.compress(data, 0.01)
        assert ops.mean(c) == pytest.approx(-0.04)

    def test_within_eps_of_raw_mean(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        assert abs(ops.mean(c) - float(smooth_1d.astype(np.float64).mean())) <= 1e-3

    def test_constant_blocks_closed_form(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        assert c.n_constant_blocks > 0
        x = codec.decompress(c).astype(np.float64)
        assert ops.mean(c) == pytest.approx(x.mean(), abs=1e-10)

    def test_all_constant(self, codec):
        data = np.full(640, -1.5, dtype=np.float32)
        c = codec.compress(data, 1e-3)
        x = codec.decompress(c).astype(np.float64)
        assert ops.mean(c) == pytest.approx(x.mean(), abs=1e-12)


class TestVariance:
    def test_matches_decompressed_variance(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        x = codec.decompress(c).astype(np.float64)
        assert ops.variance(c) == pytest.approx(x.var(), rel=1e-9, abs=1e-12)

    def test_ddof(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        x = codec.decompress(c).astype(np.float64)
        assert ops.variance(c, ddof=1) == pytest.approx(x.var(ddof=1), rel=1e-9)

    def test_invalid_ddof_rejected(self, codec):
        data = np.array([1.0, 2.0], dtype=np.float32)
        c = codec.compress(data, 1e-3)
        with pytest.raises(ValueError):
            ops.variance(c, ddof=2)

    def test_std_is_sqrt_variance(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        assert ops.std(c) == pytest.approx(np.sqrt(ops.variance(c)))

    def test_constant_array_zero_variance(self, codec):
        c = codec.compress(np.full(256, 7.0, dtype=np.float32), 1e-3)
        assert ops.variance(c) == pytest.approx(0.0, abs=1e-15)


class TestBlockMeans:
    def test_matches_per_block_means(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        x = codec.decompress(c).astype(np.float64).reshape(-1)
        bm = ops.block_means(c)
        lens = c.layout.lengths()
        starts = c.layout.starts()
        expected = np.array([x[s : s + l].mean() for s, l in zip(starts, lens)])
        assert np.allclose(bm, expected, atol=1e-10)


class TestSummaryStatistics:
    def test_matches_individual_reductions(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        stats = ops.summary_statistics(c)
        assert stats["mean"] == pytest.approx(ops.mean(c))
        assert stats["variance"] == pytest.approx(ops.variance(c))
        assert stats["std"] == pytest.approx(ops.std(c))


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        n=st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=30, deadline=None)
    def test_reductions_exact_over_represented_values(self, seed, n):
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=n)) * 0.02
        codec = SZOps()
        c = codec.compress(data, 1e-3)
        x = codec.decompress(c)
        assert ops.mean(c) == pytest.approx(x.mean(), abs=1e-9)
        assert ops.variance(c) == pytest.approx(x.var(), rel=1e-7, abs=1e-12)
