"""Property-based differential tests: every compressed-domain op vs NumPy.

The ISSUE-1 differential satellite.  For each operation of Table II (plus
minimum/maximum and the multivariate measures), hypothesis sweeps the error
bound, block size, dtype and data shape, and the compressed-domain result is
compared against the decompress → NumPy oracle:

* exact integer maps (negation, scalar add/subtract, multivariate
  add/subtract) compare **bitwise** in the quantized domain;
* rounding maps (scalar multiply) and reductions compare against the
  float64 representative ``2·eps·q`` within the paper's error analysis;
* every compression-as-output result must additionally survive a
  serialization round-trip (the recompress leg of the oracle).

Pathological shapes — all-constant fields, single elements, denormal
values — are covered both inside the strategies and as explicit cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed

EPS_SWEEP = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
BLOCK_SIZES = [8, 16, 64]
DTYPES = ["float32", "float64"]
DATA_KINDS = ["walk", "spiky", "flat", "constant"]


def make_data(seed: int, n: int, kind: str, dtype: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if kind == "walk":
        data = np.cumsum(rng.normal(size=n)) * 0.05
    elif kind == "spiky":
        d = rng.normal(size=n) * 0.01
        d[rng.random(n) < 0.02] *= 1000
        data = np.cumsum(d)
    elif kind == "flat":
        data = np.zeros(n)
        data[: n // 2] = rng.normal(size=n // 2) * 0.1
    elif kind == "constant":
        data = np.full(n, rng.normal() * 10)
    else:
        raise ValueError(kind)
    return data.astype(dtype)


CASE = dict(
    seed=st.integers(0, 2000),
    n=st.integers(1, 500),
    kind=st.sampled_from(DATA_KINDS),
    eps=st.sampled_from(EPS_SWEEP),
    block_size=st.sampled_from(BLOCK_SIZES),
    dtype=st.sampled_from(DTYPES),
)
SCALARS = st.floats(min_value=-50, max_value=50, allow_nan=False)


def compress_case(seed, n, kind, eps, block_size, dtype):
    """Compress one generated array; returns (codec, c, float64 representative)."""
    data = make_data(seed, n, kind, dtype)
    codec = SZOps(block_size=block_size)
    c = codec.compress(data, eps)
    xhat = 2.0 * eps * codec.decompress_quantized(c)
    return codec, c, xhat


def roundtrips(c: SZOpsCompressed) -> bool:
    """The recompress leg: the container survives serialization bitwise."""
    blob = c.to_bytes()
    return SZOpsCompressed.from_bytes(blob).to_bytes() == blob


class TestPointwiseOps:
    @given(**CASE)
    @settings(deadline=None)
    def test_negation_exact(self, seed, n, kind, eps, block_size, dtype):
        codec, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        out = ops.negate(c)
        np.testing.assert_array_equal(
            codec.decompress_quantized(out), -codec.decompress_quantized(c)
        )
        assert roundtrips(out)

    @given(s=SCALARS, **CASE)
    @settings(deadline=None)
    def test_scalar_add_bounded(self, s, seed, n, kind, eps, block_size, dtype):
        codec, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        out = ops.scalar_add(c, s)
        # exact in the quantized domain: a uniform shift by the quantized scalar
        rho = int(np.floor((s + eps) / (2 * eps)))
        np.testing.assert_array_equal(
            codec.decompress_quantized(out), codec.decompress_quantized(c) + rho
        )
        # and within the paper's bound of the true shifted reconstruction
        got = 2.0 * eps * codec.decompress_quantized(out)
        # slack: a few ulps at the largest magnitude in the comparison — the
        # true error can land exactly on eps when s+eps is a multiple of 2eps
        slack = 4.0 * float(np.spacing(eps + abs(s) + np.abs(got).max(initial=0.0)))
        assert np.max(np.abs(got - (xhat + s))) <= eps + slack
        assert roundtrips(out)

    @given(s=SCALARS, **CASE)
    @settings(deadline=None)
    def test_scalar_subtract_bounded(self, s, seed, n, kind, eps, block_size, dtype):
        codec, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        out = ops.scalar_subtract(c, s)
        rho = int(np.floor((s + eps) / (2 * eps)))
        np.testing.assert_array_equal(
            codec.decompress_quantized(out), codec.decompress_quantized(c) - rho
        )
        got = 2.0 * eps * codec.decompress_quantized(out)
        slack = 4.0 * float(np.spacing(eps + abs(s) + np.abs(got).max(initial=0.0)))
        assert np.max(np.abs(got - (xhat - s))) <= eps + slack
        assert roundtrips(out)

    @given(s=SCALARS, **CASE)
    @settings(deadline=None)
    def test_scalar_multiply_bounded(self, s, seed, n, kind, eps, block_size, dtype):
        codec, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        out = ops.scalar_multiply(c, s)
        got = 2.0 * eps * codec.decompress_quantized(out)
        # |result - xhat*s| <= eps (requantization rounding) + eps*|xhat|
        # (scalar quantization); the extra 0.5*eps absorbs float64 rounding
        # of the products around round-half ties.
        bound = eps * (1.5 + np.max(np.abs(xhat), initial=0.0))
        assert np.max(np.abs(got - xhat * s)) <= bound * (1 + 1e-9)
        assert out.eps == c.eps and out.shape == c.shape
        assert roundtrips(out)


class TestReductions:
    @given(**CASE)
    @settings(deadline=None)
    def test_mean_vs_numpy(self, seed, n, kind, eps, block_size, dtype):
        _, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        assert ops.mean(c) == pytest.approx(xhat.mean(), rel=1e-9, abs=1e-12)

    @given(**CASE)
    @settings(deadline=None)
    def test_variance_std_vs_numpy(self, seed, n, kind, eps, block_size, dtype):
        _, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        assert ops.variance(c) == pytest.approx(xhat.var(), rel=1e-7, abs=1e-12)
        assert ops.std(c) == pytest.approx(xhat.std(), rel=1e-7, abs=1e-9)

    @given(**CASE)
    @settings(deadline=None)
    def test_min_max_vs_numpy(self, seed, n, kind, eps, block_size, dtype):
        _, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        assert ops.minimum(c) == xhat.min()
        assert ops.maximum(c) == xhat.max()


class TestMultivariate:
    @given(sign=st.sampled_from([+1, -1]), **CASE)
    @settings(deadline=None)
    def test_add_subtract_exact_in_quantized_domain(
        self, sign, seed, n, kind, eps, block_size, dtype
    ):
        codec, ca, _ = compress_case(seed, n, kind, eps, block_size, dtype)
        cb = codec.compress(make_data(seed + 1, n, kind, dtype), ca.eps)
        out = ops.add(ca, cb) if sign > 0 else ops.subtract(ca, cb)
        qa = codec.decompress_quantized(ca)
        qb = codec.decompress_quantized(cb)
        np.testing.assert_array_equal(codec.decompress_quantized(out), qa + sign * qb)
        assert roundtrips(out)

    @given(**CASE)
    @settings(deadline=None)
    def test_dot_l2_vs_numpy(self, seed, n, kind, eps, block_size, dtype):
        codec, ca, xa = compress_case(seed, n, kind, eps, block_size, dtype)
        cb = codec.compress(make_data(seed + 1, n, kind, dtype), ca.eps)
        xb = 2.0 * ca.eps * codec.decompress_quantized(cb)
        # abs tolerance scales with the term magnitudes: catastrophic
        # cancellation in the dot product amplifies summation-order rounding.
        tol = 1e-12 + 1e-12 * float(np.abs(xa) @ np.abs(xb))
        assert ops.dot(ca, cb) == pytest.approx(
            float(np.dot(xa, xb)), rel=1e-9, abs=tol
        )
        assert ops.l2_distance(ca, cb) == pytest.approx(
            float(np.linalg.norm(xa - xb)), rel=1e-7, abs=1e-9
        )

    @given(**CASE)
    @settings(deadline=None)
    def test_cosine_vs_numpy(self, seed, n, kind, eps, block_size, dtype):
        codec, ca, xa = compress_case(seed, n, kind, eps, block_size, dtype)
        cb = codec.compress(make_data(seed + 1, n, kind, dtype), ca.eps)
        xb = 2.0 * ca.eps * codec.decompress_quantized(cb)
        denom = float(np.linalg.norm(xa) * np.linalg.norm(xb))
        if denom == 0.0:
            with pytest.raises(OperationError, match="cosine"):
                ops.cosine_similarity(ca, cb)
        else:
            assert ops.cosine_similarity(ca, cb) == pytest.approx(
                float(np.dot(xa, xb)) / denom, rel=1e-9, abs=1e-9
            )


class TestFusedChainDifferential:
    """The fused runtime obeys the same oracle as the eager ops."""

    @given(s=SCALARS, **CASE)
    @settings(deadline=None)
    def test_fused_chain_vs_eager_and_numpy(
        self, s, seed, n, kind, eps, block_size, dtype
    ):
        from repro.runtime import lazy

        codec, c, xhat = compress_case(seed, n, kind, eps, block_size, dtype)
        chain = lazy(c).negate().scalar_multiply(s).scalar_add(1.0)
        eager = ops.scalar_add(ops.scalar_multiply(ops.negate(c), s), 1.0)
        assert chain.to_bytes() == eager.to_bytes()
        got = 2.0 * eps * codec.decompress_quantized(chain.materialize())
        bound = eps * (2.5 + np.max(np.abs(xhat), initial=0.0))
        assert np.max(np.abs(got - (-xhat * s + 1.0))) <= bound * (1 + 1e-9)


class TestPathologicalInputs:
    def test_empty_array_rejected(self, codec):
        with pytest.raises(ValueError, match="empty"):
            codec.compress(np.array([], dtype=np.float64), 1e-3)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_single_element_all_ops(self, dtype):
        codec = SZOps(block_size=8)
        c = codec.compress(np.array([0.7], dtype=dtype), 1e-3)
        xhat = 2.0 * 1e-3 * codec.decompress_quantized(c)
        assert ops.mean(c) == pytest.approx(xhat[0], rel=1e-12)
        assert ops.variance(c) == 0.0
        assert ops.minimum(c) == ops.maximum(c)
        assert abs(
            2.0 * 1e-3 * codec.decompress_quantized(ops.scalar_multiply(c, 3.0))[0]
            - xhat[0] * 3.0
        ) <= 1e-3 * (1 + abs(xhat[0])) * (1 + 1e-9)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_all_constant_field(self, dtype):
        codec = SZOps(block_size=16)
        c = codec.compress(np.full(256, -2.5, dtype=dtype), 1e-4)
        # every block is constant: zero payload, closed-form reductions
        assert c.payload_bytes.size == 0
        assert ops.variance(c) == 0.0
        assert ops.minimum(c) == ops.maximum(c) == ops.mean(c)
        out = ops.scalar_multiply(c, 0.5)
        assert out.payload_bytes.size == 0  # constant blocks stay constant

    @pytest.mark.parametrize(
        "dtype,scale", [("float32", 1e-42), ("float64", 1e-310)]
    )
    def test_denormal_values_quantize_to_zero(self, dtype, scale):
        rng = np.random.default_rng(7)
        data = (rng.normal(size=128) * scale).astype(dtype)
        codec = SZOps(block_size=8)
        c = codec.compress(data, 1e-5)
        assert not np.any(codec.decompress_quantized(c))
        assert ops.mean(c) == 0.0
        assert ops.std(c) == 0.0
        out = ops.scalar_multiply(c, 123.0)
        assert not np.any(codec.decompress_quantized(out))

    def test_non_finite_input_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.compress(np.array([1.0, np.inf]), 1e-3)
