"""Lazy fusion correctness: fused chains vs eager one-at-a-time replay.

The ISSUE-1 cache-correctness satellite: fused ``(a·x + b)``-style chains
must be bit-identical to applying the operations eagerly one at a time.
Affine chains and chains ending in a multiply compare at the container-byte
level; reductions compare exactly (mean/min/max) or to float64 rounding
(variance/std — the eager path's constant-block closed form can group the
float accumulation differently when a multiply reclassifies blocks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ops
from repro.core.errors import OperationError
from repro.runtime import IntAffine, LazyStream, Requantize, lazy

# Chains expressed as apply_chain specs; every fusable op appears, alone and
# composed, with multiplies at the start, middle and end.
AFFINE_CHAINS = [
    [("negation", None)],
    [("scalar_add", 0.5)],
    [("scalar_subtract", 0.25)],
    [("negation", None), ("scalar_add", 1.5)],
    [("scalar_add", 1.2), ("scalar_subtract", 0.7), ("negation", None)],
]
MUL_CHAINS = [
    [("scalar_multiply", 0.1)],
    [("negation", None), ("scalar_multiply", 2.5)],
    [("scalar_multiply", 0.3), ("scalar_add", 1.0)],
    [("negation", None), ("scalar_multiply", 0.5), ("scalar_subtract", 0.2)],
    [("scalar_multiply", 1.5), ("scalar_multiply", -0.25)],
]
ALL_CHAINS = AFFINE_CHAINS + MUL_CHAINS


@pytest.fixture
def stream(codec, smooth_1d):
    return codec.compress(smooth_1d, 1e-3)


@pytest.fixture
def plateau_stream(codec, plateau_field):
    """A stream with constant blocks, so both block kinds are exercised."""
    return codec.compress(plateau_field, 1e-3)


def eager_replay(c, steps):
    return ops.apply_chain(c, steps, fused=False)


def fused(c, steps):
    for name, scalar in steps:
        c = c.apply(name, scalar) if isinstance(c, LazyStream) else lazy(c).apply(
            name, scalar
        )
    return c


class TestFolding:
    def test_double_negation_cancels(self, stream):
        assert lazy(stream).negate().negate().pending_ops == 0

    def test_add_then_subtract_cancels(self, stream):
        chain = lazy(stream).scalar_add(0.75).scalar_subtract(0.75)
        assert chain.pending_ops == 0

    def test_affine_run_folds_to_one_step(self, stream):
        chain = lazy(stream).negate().scalar_add(1.0).scalar_subtract(0.5).negate()
        assert chain.pending_ops == 1
        (step,) = chain.steps
        assert isinstance(step, IntAffine)

    def test_requantize_is_a_barrier(self, stream):
        chain = lazy(stream).negate().scalar_multiply(2.0).negate()
        assert chain.pending_ops == 3
        kinds = [type(s) for s in chain.steps]
        assert kinds == [IntAffine, Requantize, IntAffine]

    def test_chains_are_immutable_and_forkable(self, stream):
        base = lazy(stream).negate()
        left = base.scalar_add(1.0)
        right = base.scalar_multiply(2.0)
        assert base.pending_ops == 1
        assert left.pending_ops == 1  # folded
        assert right.pending_ops == 2
        assert left.base is right.base is stream

    def test_lazy_is_idempotent(self, stream):
        chain = lazy(stream).negate()
        assert lazy(chain) is chain

    def test_wrapping_a_lazystream_keeps_steps(self, stream):
        chain = lazy(stream).negate().scalar_multiply(2.0)
        rewrapped = LazyStream(chain)
        assert rewrapped.base is stream
        assert rewrapped.steps == chain.steps


class TestBitIdentity:
    """Fused chains reproduce the eager containers byte for byte."""

    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_container_bytes_smooth(self, stream, steps):
        assert fused(stream, steps).to_bytes() == eager_replay(stream, steps).to_bytes()

    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_container_bytes_constant_blocks(self, plateau_stream, steps):
        got = fused(plateau_stream, steps).to_bytes()
        assert got == eager_replay(plateau_stream, steps).to_bytes()

    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_decompress_matches_eager(self, codec, stream, steps):
        got = fused(stream, steps).decompress()
        expect = codec.decompress(eager_replay(stream, steps))
        assert np.array_equal(got, expect)

    def test_3d_chain(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-3)
        steps = [("negation", None), ("scalar_multiply", 0.1), ("scalar_add", 2.0)]
        out = fused(c, steps).materialize()
        assert out.shape == c.shape
        assert out.to_bytes() == eager_replay(c, steps).to_bytes()

    def test_empty_chain_materializes_a_copy(self, stream):
        out = lazy(stream).materialize()
        assert out is not stream
        assert out.to_bytes() == stream.to_bytes()

    def test_base_is_never_mutated(self, stream):
        before = stream.to_bytes()
        chain = lazy(stream).negate().scalar_multiply(0.5).scalar_add(1.0)
        chain.materialize()
        chain.mean()
        assert stream.to_bytes() == before


class TestReductions:
    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_mean_bit_identical(self, stream, steps):
        expect = ops.mean(eager_replay(stream, steps))
        assert fused(stream, steps).mean() == expect

    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_min_max_bit_identical(self, plateau_stream, steps):
        out = eager_replay(plateau_stream, steps)
        chain = fused(plateau_stream, steps)
        assert chain.minimum() == ops.minimum(out)
        assert chain.maximum() == ops.maximum(out)

    @pytest.mark.parametrize("steps", ALL_CHAINS, ids=repr)
    def test_variance_std_match_to_rounding(self, stream, steps):
        out = eager_replay(stream, steps)
        chain = fused(stream, steps)
        assert chain.variance() == pytest.approx(ops.variance(out), rel=1e-11)
        assert chain.std() == pytest.approx(ops.std(out), rel=1e-11)

    def test_summary_statistics_consistent(self, stream):
        chain = lazy(stream).negate().scalar_multiply(0.1)
        stats = chain.summary_statistics()
        assert stats["mean"] == chain.mean()
        assert stats["variance"] == pytest.approx(chain.variance(), rel=1e-12)

    def test_reduction_without_steps_equals_eager_op(self, stream):
        assert lazy(stream).mean() == ops.mean(stream)
        assert lazy(stream).variance() == ops.variance(stream)
        assert lazy(stream).std() == ops.std(stream)

    def test_quantized_matches_full_decode(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-3)
        q = lazy(c).quantized()
        assert q.dtype == np.int64
        np.testing.assert_array_equal(q, codec.decompress_quantized(c))
        # and a transformed view matches the decode of the materialization
        chain = lazy(c).negate().scalar_multiply(0.3)
        np.testing.assert_array_equal(
            chain.quantized(), codec.decompress_quantized(chain.materialize())
        )


class TestErrors:
    def test_unfusable_name_rejected(self, stream):
        with pytest.raises(OperationError, match="not fusable"):
            lazy(stream).apply("mean")

    def test_scalar_quantization_overflow_at_call(self, stream):
        with pytest.raises(OperationError, match="cannot be quantized"):
            lazy(stream).scalar_multiply(float("inf"))

    def test_multiply_overflow_surfaces_at_forcing(self, stream):
        chain = lazy(stream).scalar_multiply(1e18)  # building is fine
        with pytest.raises(OperationError, match="overflows"):
            chain.materialize()
        with pytest.raises(OperationError, match="overflows"):
            chain.mean()

    def test_variance_ddof_guard(self, stream):
        with pytest.raises(ValueError, match="ddof"):
            lazy(stream).variance(ddof=stream.n_elements)


class TestApplyChain:
    def test_fused_equals_unfused_reduction(self, stream):
        steps = ["negation", "scalar_multiply=0.1", "mean"]
        assert ops.apply_chain(stream, steps, fused=True) == ops.apply_chain(
            stream, steps, fused=False
        )

    def test_fused_equals_unfused_container(self, stream):
        steps = ["negation", "scalar_add=1.5"]
        fused_out = ops.apply_chain(stream, steps, fused=True)
        eager_out = ops.apply_chain(stream, steps, fused=False)
        assert fused_out.to_bytes() == eager_out.to_bytes()

    def test_cli_syntax_and_tuples_mix(self, stream):
        got = ops.apply_chain(stream, ["scalar_multiply=0.5", ("mean", None)])
        assert got == ops.mean(ops.scalar_multiply(stream, 0.5))

    def test_minimum_maximum_terminal(self, stream):
        assert ops.apply_chain(stream, ["negation", "minimum"]) == ops.minimum(
            ops.negate(stream)
        )
        assert ops.apply_chain(stream, ["negation", "maximum"]) == ops.maximum(
            ops.negate(stream)
        )

    def test_normalize_rejects_bad_specs(self):
        with pytest.raises(OperationError, match="requires a scalar"):
            ops.normalize_chain(["scalar_add"])
        with pytest.raises(OperationError, match="takes no scalar"):
            ops.normalize_chain(["negation=3"])
        with pytest.raises(OperationError, match="takes no scalar"):
            ops.normalize_chain(["mean=3"])
        with pytest.raises(OperationError, match="unknown operation"):
            ops.normalize_chain(["transpose"])
        with pytest.raises(OperationError, match="bad scalar"):
            ops.normalize_chain(["scalar_add=abc"])
        with pytest.raises(OperationError, match="final step"):
            ops.normalize_chain(["mean", "negation"])
        with pytest.raises(OperationError, match="chain steps"):
            ops.normalize_chain([42])
