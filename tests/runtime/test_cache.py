"""Decoded-block cache: hit/miss behavior, invalidation, bounds, safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ops
from repro.core.ops._partial import decode_stored_blocks, stored_quantized
from repro.runtime import (
    DecodedBlockCache,
    active_cache,
    cache_disabled,
    use_cache,
)


@pytest.fixture
def cache():
    """A fresh cache scoped to the test (isolates from the process default)."""
    cache = DecodedBlockCache(max_entries=8, max_bytes=64 << 20)
    with use_cache(cache):
        yield cache


@pytest.fixture
def stream(codec, smooth_1d):
    return codec.compress(smooth_1d, 1e-3)


class TestCacheBasics:
    def test_second_decode_hits(self, cache, stream):
        a = stored_quantized(stream)
        b = stored_quantized(stream)
        assert a is b
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cached_equals_uncached(self, cache, stream):
        cached = stored_quantized(stream)
        fresh = decode_stored_blocks(stream)
        assert np.array_equal(cached.q, fresh.q)
        assert np.array_equal(cached.lens, fresh.lens)
        assert np.array_equal(cached.stored_mask, fresh.stored_mask)
        assert np.array_equal(cached.const_outliers, fresh.const_outliers)
        assert np.array_equal(cached.const_lens, fresh.const_lens)

    def test_equal_bytes_share_entry(self, cache, stream, codec, smooth_1d):
        """Two containers with identical content share one cache entry."""
        twin = codec.compress(smooth_1d, 1e-3)
        a = stored_quantized(stream)
        b = stored_quantized(twin)
        assert a is b

    def test_reductions_on_same_stream_decode_once(self, cache, stream):
        ops.mean(stream)
        ops.variance(stream)
        ops.std(stream)
        ops.minimum(stream)
        assert cache.stats.misses == 1
        assert cache.stats.hits >= 3

    def test_cached_arrays_read_only(self, cache, stream):
        blocks = stored_quantized(stream)
        with pytest.raises(ValueError):
            blocks.q[0] = 99

    def test_disabled_scope_decodes_fresh(self, cache, stream):
        stored_quantized(stream)
        with cache_disabled():
            assert active_cache() is None
            fresh = stored_quantized(stream)
        assert fresh.q.flags.writeable  # not a frozen cache entry
        assert cache.stats.lookups == 1


class TestInvalidation:
    def test_inplace_mutation_misses(self, cache, stream):
        before = stored_quantized(stream)
        ops.scalar_add(stream, 5.0, inplace=True)  # mutates the outlier plane
        after = stored_quantized(stream)
        assert after is not before
        assert cache.stats.misses == 2
        # and the mutated stream's decode reflects the shift
        rho = int(np.floor((5.0 + stream.eps) / (2 * stream.eps)))
        assert np.array_equal(after.q, before.q + rho)

    def test_fingerprint_changes_on_each_plane(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-3)
        base = c.content_fingerprint()
        m = c.copy()
        m.outliers[0] += 1
        assert m.content_fingerprint() != base
        m = c.copy()
        m.widths[-1] ^= 1
        assert m.content_fingerprint() != base
        m = c.copy()
        if m.sign_bytes.size:
            m.sign_bytes[0] ^= 0xFF
            assert m.content_fingerprint() != base
        m = c.copy()
        if m.payload_bytes.size:
            m.payload_bytes[0] ^= 0xFF
            assert m.content_fingerprint() != base
        m = c.copy()
        m.eps *= 2
        assert m.content_fingerprint() != base

    def test_copy_shares_fingerprint(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        assert c.copy().content_fingerprint() == c.content_fingerprint()


class TestBounds:
    def test_entry_count_lru(self, codec, rng):
        cache = DecodedBlockCache(max_entries=2)
        with use_cache(cache):
            streams = [
                codec.compress(np.cumsum(rng.normal(size=256)) * 0.1, 1e-3)
                for _ in range(3)
            ]
            for s in streams:
                stored_quantized(s)
            assert len(cache) == 2
            assert cache.stats.evictions == 1
            # LRU: the first stream was evicted, the last two are present
            assert streams[0] not in cache
            assert streams[1] in cache and streams[2] in cache

    def test_byte_budget_respected(self, codec, rng):
        data = np.cumsum(rng.normal(size=4096)) * 0.1
        c = codec.compress(data, 1e-3)
        blocks = decode_stored_blocks(c)
        cache = DecodedBlockCache(max_entries=64, max_bytes=blocks.q.nbytes // 2)
        with use_cache(cache):
            out = stored_quantized(c)  # larger than the whole budget
            assert len(cache) == 0
            assert np.array_equal(out.q, blocks.q)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            DecodedBlockCache(max_entries=0)
        with pytest.raises(ValueError):
            DecodedBlockCache(max_bytes=0)

    def test_clear(self, cache, stream):
        stored_quantized(stream)
        assert len(cache) == 1 and cache.nbytes > 0
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


class TestOpsThroughCache:
    """Operations must give identical results with and without the cache."""

    @pytest.mark.parametrize("name", ["mean", "variance", "std"])
    def test_reductions_identical(self, cache, stream, name):
        with cache_disabled():
            expect = ops.apply_operation(stream, name)
        got = ops.apply_operation(stream, name)  # cold, fills cache
        again = ops.apply_operation(stream, name)  # hit
        assert got == expect == again

    def test_scalar_multiply_identical(self, cache, stream):
        with cache_disabled():
            expect = ops.scalar_multiply(stream, 2.5).to_bytes()
        assert ops.scalar_multiply(stream, 2.5).to_bytes() == expect
        assert ops.scalar_multiply(stream, 2.5).to_bytes() == expect  # via hit

    def test_multivariate_identical(self, cache, codec, smooth_1d):
        a = codec.compress(smooth_1d, 1e-3)
        b = codec.compress(smooth_1d[::-1].copy(), 1e-3)
        with cache_disabled():
            expect = ops.add(a, b).to_bytes()
            expect_dot = ops.dot(a, b)
        assert ops.add(a, b).to_bytes() == expect
        assert ops.dot(a, b) == expect_dot
