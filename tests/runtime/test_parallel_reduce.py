"""Chunked parallel reductions agree with their serial counterparts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ops
from repro.parallel.executor import ChunkedExecutor
from repro.runtime import (
    lazy,
    parallel_maximum,
    parallel_mean,
    parallel_minimum,
    parallel_std,
    parallel_summary_statistics,
    parallel_variance,
)


@pytest.fixture
def stream(codec, smooth_1d):
    return codec.compress(smooth_1d, 1e-3)


@pytest.fixture
def plateau_stream(codec, plateau_field):
    return codec.compress(plateau_field, 1e-3)


@pytest.mark.parametrize("threads", [1, 2, 5])
class TestAgainstSerial:
    def test_mean_exact(self, stream, threads):
        assert parallel_mean(stream, threads) == ops.mean(stream)

    def test_min_max_exact(self, plateau_stream, threads):
        assert parallel_minimum(plateau_stream, threads) == ops.minimum(plateau_stream)
        assert parallel_maximum(plateau_stream, threads) == ops.maximum(plateau_stream)

    def test_variance_std_to_rounding(self, stream, threads):
        assert parallel_variance(stream, threads) == pytest.approx(
            ops.variance(stream), rel=1e-12
        )
        assert parallel_std(stream, threads) == pytest.approx(
            ops.std(stream), rel=1e-12
        )

    def test_summary_statistics(self, plateau_stream, threads):
        serial = ops.summary_statistics(plateau_stream)
        par = parallel_summary_statistics(plateau_stream, threads)
        assert par["mean"] == serial["mean"]
        assert par["variance"] == pytest.approx(serial["variance"], rel=1e-12)
        assert par["std"] == pytest.approx(serial["std"], rel=1e-12)


class TestExecutorHandling:
    def test_accepts_shared_executor(self, stream):
        with ChunkedExecutor(n_threads=3) as ex:
            assert parallel_mean(stream, ex) == ops.mean(stream)
            assert parallel_variance(stream, ex) == pytest.approx(
                ops.variance(stream), rel=1e-12
            )

    def test_rejects_non_executor(self, stream):
        with pytest.raises(TypeError, match="executor"):
            parallel_mean(stream, "4")

    def test_ddof_guard(self, stream):
        with pytest.raises(ValueError, match="ddof"):
            parallel_variance(stream, 2, ddof=stream.n_elements)

    def test_lazy_reductions_route_through_executor(self, stream):
        chain = lazy(stream).negate().scalar_multiply(0.1)
        serial_mean = chain.mean()
        serial_var = chain.variance()
        with ChunkedExecutor(n_threads=4) as ex:
            assert chain.mean(executor=ex) == serial_mean
            assert chain.variance(executor=ex) == pytest.approx(
                serial_var, rel=1e-12
            )
        assert chain.mean(executor=2) == serial_mean

    def test_apply_chain_executor_kwarg(self, stream):
        steps = ["negation", "scalar_multiply=0.1", "mean"]
        assert ops.apply_chain(stream, steps, executor=2) == ops.apply_chain(
            stream, steps
        )


class TestConstantOnlyStream:
    def test_all_constant_field(self, codec):
        c = codec.compress(np.full(1024, 3.25, dtype=np.float32), 1e-3)
        assert parallel_mean(c, 2) == ops.mean(c)
        assert parallel_variance(c, 2) == ops.variance(c)
        assert parallel_minimum(c, 2) == ops.minimum(c)
        assert parallel_maximum(c, 2) == ops.maximum(c)
