"""Integration tests across the full stack.

The central correctness claim of the paper is that operating on the
compressed stream is equivalent (within quantization effects) to the
traditional decompress-operate-recompress workflow.  These tests exercise
that equivalence on realistic synthetic fields for every operation, through
serialization, and through chained operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed
from repro.core.ops.dispatch import OPERATIONS, operation_names
from repro.datasets import generate_fields
from repro.workflow import numpy_reference_op


@pytest.fixture(scope="module")
def field():
    return generate_fields("Miranda", scale=0.4, fields=["density"])["density"]


@pytest.fixture(scope="module")
def compressed(field):
    codec = SZOps()
    return codec, codec.compress(field, 1e-4)


class TestOperationEquivalence:
    @pytest.mark.parametrize("op", operation_names())
    def test_compressed_matches_reference(self, compressed, op):
        codec, c = compressed
        eps = c.eps
        scalar = 3.14 if OPERATIONS[op].needs_scalar else None
        x_hat = codec.decompress(c).astype(np.float64)
        reference = numpy_reference_op(x_hat, op, scalar)
        result = ops.apply_operation(c.copy(), op, scalar)
        if OPERATIONS[op].result == "computation":
            assert result == pytest.approx(reference, rel=1e-6, abs=1e-10)
        else:
            out = codec.decompress(result).astype(np.float64)
            if op == "scalar_multiply":
                limit = eps + np.abs(x_hat).max() * eps + 1e-9
            elif op == "negation":
                limit = 1e-12
            else:
                limit = eps + 1e-9
            assert np.max(np.abs(out - reference)) <= limit

    @pytest.mark.parametrize("op", ["negation", "scalar_add", "scalar_multiply"])
    def test_ops_compose_through_serialization(self, compressed, op):
        codec, c = compressed
        scalar = 2.0 if OPERATIONS[op].needs_scalar else None
        direct = ops.apply_operation(c.copy(), op, scalar)
        via_bytes = ops.apply_operation(
            SZOpsCompressed.from_bytes(c.to_bytes()), op, scalar
        )
        assert np.array_equal(codec.decompress(direct), codec.decompress(via_bytes))

    def test_chained_operations(self, compressed):
        """(-(2.5 * x + 1)) via compressed kernels vs NumPy."""
        codec, c = compressed
        x_hat = codec.decompress(c).astype(np.float64)
        chained = ops.negate(ops.scalar_add(ops.scalar_multiply(c, 2.5), 1.0))
        out = codec.decompress(chained).astype(np.float64)
        expected = -(2.5 * x_hat + 1.0)
        # multiplication contributes eps*(1+max|x|), addition another eps
        limit = 2 * c.eps + np.abs(x_hat).max() * c.eps + 1e-9
        assert np.max(np.abs(out - expected)) <= limit

    def test_reduction_after_scalar_ops(self, compressed):
        codec, c = compressed
        shifted = ops.scalar_add(c, 10.0)
        mu = ops.mean(shifted)
        assert mu == pytest.approx(
            float(codec.decompress(shifted).astype(np.float64).mean()), abs=1e-9
        )


class TestCrossDataset:
    @pytest.mark.parametrize("ds", ["Hurricane", "CESM-ATM", "SCALE-LETKF"])
    def test_roundtrip_and_mean_per_dataset(self, ds, assert_within_bound):
        codec = SZOps()
        fields = generate_fields(ds, scale=0.3)
        name, arr = next(iter(fields.items()))
        c = codec.compress(arr, 1e-4)
        assert_within_bound(arr, codec.decompress(c), 1e-4)
        assert ops.mean(c) == pytest.approx(
            float(codec.decompress(c).astype(np.float64).mean()), abs=1e-8
        )

    def test_sparse_dataset_constant_heavy(self):
        codec = SZOps()
        qc = generate_fields("SCALE-LETKF", scale=0.5, fields=["QC"])["QC"]
        c = codec.compress(qc, 1e-4)
        assert c.constant_fraction > 0.3
        # reductions exploit those blocks and still agree with the data
        x = codec.decompress(c).astype(np.float64)
        assert ops.variance(c) == pytest.approx(x.var(), rel=1e-6)


class TestMemoryBehaviour:
    def test_ops_do_not_inflate_streams(self, compressed):
        """Compression-as-output ops yield streams of comparable size."""
        codec, c = compressed
        for op, scalar in [("negation", None), ("scalar_add", 5.0)]:
            out = ops.apply_operation(c.copy(), op, scalar)
            # scalar_add can widen the serialized outlier plane (int16 ->
            # int32) when the shift pushes quantized firsts past 2**15.
            assert out.compressed_nbytes == pytest.approx(c.compressed_nbytes, rel=0.06)

    def test_multiply_growth_bounded(self, compressed):
        codec, c = compressed
        out = ops.scalar_multiply(c, 1000.0)
        # x1000 adds ~10 bits per element upper bound
        assert out.compressed_nbytes < c.compressed_nbytes * 4
