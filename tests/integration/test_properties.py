"""Cross-stack property tests (hypothesis) on the paper's invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, ops


def make_data(seed: int, n: int, kind: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if kind == "walk":
        return np.cumsum(rng.normal(size=n)) * 0.05
    if kind == "spiky":
        d = rng.normal(size=n) * 0.01
        d[rng.random(n) < 0.01] *= 1000
        return np.cumsum(d)
    if kind == "flat":
        d = np.zeros(n)
        d[: n // 2] = rng.normal(size=n // 2) * 0.1
        return d
    raise ValueError(kind)


DATA_KINDS = ["walk", "spiky", "flat"]


class TestCompressionInvariants:
    @given(
        seed=st.integers(0, 3000),
        n=st.integers(1, 600),
        kind=st.sampled_from(DATA_KINDS),
        eps_exp=st.integers(-5, -1),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_bound(self, seed, n, kind, eps_exp):
        data = make_data(seed, n, kind)
        eps = 10.0 ** eps_exp
        codec = SZOps()
        recon = codec.decompress(codec.compress(data, eps))
        slack = float(np.spacing(np.abs(data).max() + eps))
        assert np.max(np.abs(recon - data)) <= eps + slack

    @given(seed=st.integers(0, 3000), n=st.integers(1, 600), kind=st.sampled_from(DATA_KINDS))
    @settings(max_examples=30, deadline=None)
    def test_serialization_identity(self, seed, n, kind):
        from repro.core.format import SZOpsCompressed

        data = make_data(seed, n, kind)
        codec = SZOps()
        c = codec.compress(data, 1e-3)
        assert SZOpsCompressed.from_bytes(c.to_bytes()).to_bytes() == c.to_bytes()


class TestOperationInvariants:
    @given(
        seed=st.integers(0, 2000),
        n=st.integers(1, 400),
        kind=st.sampled_from(DATA_KINDS),
        s=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_add_negate_composition(self, seed, n, kind, s):
        """-(x + s) computed fully in compressed space stays bounded."""
        data = make_data(seed, n, kind)
        eps = 1e-3
        codec = SZOps()
        c = codec.compress(data, eps)
        x = codec.decompress(c)
        out = codec.decompress(ops.negate(ops.scalar_add(c, s)))
        assert np.max(np.abs(out - (-(x + s)))) <= eps * (1 + 1e-9)

    @given(seed=st.integers(0, 2000), n=st.integers(2, 400), kind=st.sampled_from(DATA_KINDS))
    @settings(max_examples=40, deadline=None)
    def test_reductions_consistent(self, seed, n, kind):
        """mean/var/std agree with the decompressed array exactly."""
        data = make_data(seed, n, kind)
        codec = SZOps()
        c = codec.compress(data, 1e-3)
        x = codec.decompress(c)
        assert ops.mean(c) == pytest.approx(x.mean(), abs=1e-9)
        assert ops.variance(c) == pytest.approx(x.var(), rel=1e-7, abs=1e-12)
        assert ops.std(c) == pytest.approx(x.std(), rel=1e-7, abs=1e-9)

    @given(seed=st.integers(0, 2000), kind=st.sampled_from(DATA_KINDS))
    @settings(max_examples=25, deadline=None)
    def test_multivariate_add_commutes(self, seed, kind):
        data_a = make_data(seed, 300, kind)
        data_b = make_data(seed + 1, 300, kind)
        codec = SZOps()
        ca = codec.compress(data_a, 1e-3)
        cb = codec.compress(data_b, 1e-3)
        ab = codec.decompress(ops.add(ca, cb))
        ba = codec.decompress(ops.add(cb, ca))
        assert np.array_equal(ab, ba)


class TestBaselineInvariants:
    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 400),
        kind=st.sampled_from(DATA_KINDS),
        codec_name=st.sampled_from(["SZp", "SZ2", "SZ3", "SZx", "ZFP"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_baselines_bounded(self, seed, n, kind, codec_name):
        from repro.baselines import make_codec

        data = make_data(seed, n, kind)
        eps = 1e-3
        codec = make_codec(codec_name)
        recon = codec.decompress(codec.compress(data, eps))
        slack = float(np.spacing(np.abs(data).max() + eps))
        assert np.max(np.abs(recon - data)) <= eps + slack
