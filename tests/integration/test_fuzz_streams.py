"""Failure-injection tests: corrupted streams must fail *controlledly*.

A downstream system feeding damaged or truncated SZOps streams into the
decoder must get a :class:`repro.core.errors.SZOpsError`-family exception
(all of which are ``ValueError`` subclasses) or — for payload-only damage —
a decoded array that still honours the container geometry.  It must never
see an uncontrolled ``IndexError`` / ``ZeroDivisionError`` / segfault-style
failure from deep inside the kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed

ACCEPTABLE = (ValueError, OverflowError, MemoryError)


@pytest.fixture(scope="module")
def stream_bytes():
    rng = np.random.default_rng(99)
    data = (np.cumsum(rng.normal(size=5000)) * 0.02).astype(np.float32)
    codec = SZOps()
    return codec, bytearray(codec.compress(data, 1e-3).to_bytes())


def try_full_pipeline(codec, buf: bytes):
    """Parse + decompress + one op; return None or raise."""
    c = SZOpsCompressed.from_bytes(buf)
    out = codec.decompress(c)
    assert out.shape == c.shape
    ops.mean(c)


class TestTruncation:
    @pytest.mark.parametrize("frac", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_truncated_streams_rejected(self, stream_bytes, frac):
        codec, buf = stream_bytes
        cut = bytes(buf[: int(len(buf) * frac)])
        with pytest.raises(ACCEPTABLE):
            try_full_pipeline(codec, cut)

    def test_empty_stream_rejected(self, stream_bytes):
        codec, _ = stream_bytes
        with pytest.raises(ACCEPTABLE):
            try_full_pipeline(codec, b"")


class TestByteFlips:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_single_byte_flip(self, stream_bytes, seed):
        """Flip one byte anywhere; expect clean failure or valid decode."""
        codec, buf = stream_bytes
        rng = np.random.default_rng(seed)
        mutated = bytearray(buf)
        pos = int(rng.integers(0, len(mutated)))
        mutated[pos] ^= int(rng.integers(1, 256))
        try:
            try_full_pipeline(codec, bytes(mutated))
        except ACCEPTABLE:
            pass  # controlled rejection is fine

    @pytest.mark.parametrize("seed", range(10))
    def test_random_multi_byte_corruption(self, stream_bytes, seed):
        codec, buf = stream_bytes
        rng = np.random.default_rng(1000 + seed)
        mutated = bytearray(buf)
        for _ in range(16):
            mutated[int(rng.integers(0, len(mutated)))] = int(rng.integers(0, 256))
        try:
            try_full_pipeline(codec, bytes(mutated))
        except ACCEPTABLE:
            pass

    def test_payload_only_damage_keeps_geometry(self, stream_bytes):
        """Damage confined to the payload decodes to the right shape."""
        codec, buf = stream_bytes
        mutated = bytearray(buf)
        mutated[-1] ^= 0xFF  # last payload byte
        c = SZOpsCompressed.from_bytes(bytes(mutated))
        out = codec.decompress(c)
        assert out.shape == c.shape


class TestHeaderSanity:
    def test_implausible_shape_rejected(self, stream_bytes):
        codec, buf = stream_bytes
        # shape dim is a u64 right after magic+version+dtype-str+ndim
        c = SZOpsCompressed.from_bytes(bytes(buf))
        giant = bytearray(buf)
        # find the 8-byte little-endian encoding of the true length and blow it up
        import struct

        needle = struct.pack("<Q", c.n_elements)
        idx = bytes(giant).find(needle)
        assert idx > 0
        giant[idx : idx + 8] = struct.pack("<Q", 2**63 - 1)
        with pytest.raises(ACCEPTABLE):
            try_full_pipeline(codec, bytes(giant))
