"""Unit tests for the execution-backend interface, factory, and shm arena."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.backends import (
    ArrayDescriptor,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ShmArena,
    ThreadBackend,
    attach_arrays,
    available_backends,
    get_backend,
)
from repro.parallel.kernels import reduce_sum_chunk
from repro.parallel.partition import even_ranges


def double_range(lo: int, hi: int) -> int:
    # Module level so the process backend can pickle it.
    return 2 * (hi - lo)


def square(x: int) -> int:
    return x * x


class TestFactory:
    def test_available_names(self):
        assert available_backends() == ("serial", "threads", "processes")

    @pytest.mark.parametrize("name", ["serial", "threads", "processes"])
    def test_constructs_by_name(self, name):
        with get_backend(name, 2) as be:
            assert isinstance(be, ExecutionBackend)
            assert be.name == name
            assert be.n_workers == 2

    def test_instance_passthrough(self):
        be = SerialBackend(3)
        assert get_backend(be) is be

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("gpu")

    @pytest.mark.parametrize("cls", [SerialBackend, ThreadBackend, ProcessBackend])
    def test_rejects_nonpositive_workers(self, cls):
        with pytest.raises(ValueError, match="n_workers"):
            cls(0)


class TestRunKernel:
    @pytest.mark.parametrize("name", ["serial", "threads"])
    def test_results_in_chunk_order(self, name):
        q = np.arange(100, dtype=np.int64)
        chunks = [{"lo": lo, "hi": hi} for lo, hi in even_ranges(q.size, 4)]
        with get_backend(name, 4) as be:
            run = be.run_kernel(reduce_sum_chunk, {"q": q}, chunks)
        assert run.results == [float(q[c["lo"] : c["hi"]].sum()) for c in chunks]
        assert run.outputs == {}

    def test_out_specs_allocated_and_returned(self):
        def fill(arrays, chunk):
            arrays["out"][chunk["lo"] : chunk["hi"]] = chunk["lo"]
            return chunk["lo"]

        with get_backend("threads", 2) as be:
            run = be.run_kernel(
                fill,
                {},
                [{"lo": 0, "hi": 4}, {"lo": 4, "hi": 8}],
                out_specs={"out": ((8,), np.int64)},
            )
        assert run.outputs["out"].tolist() == [0, 0, 0, 0, 4, 4, 4, 4]

    def test_map_ranges_and_items(self):
        for name in ("serial", "threads", "processes"):
            with get_backend(name, 2) as be:
                assert sum(be.map_ranges(double_range, 11)) == 22
                assert be.map_items(square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_partitions_like_parallel(self):
        # n_workers shapes the chunking even inline — the property that
        # makes float partial sums comparable across substrates.
        with get_backend("serial", 4) as be:
            calls = be.map_ranges(lambda lo, hi: (lo, hi), 103)
        assert calls == even_ranges(103, 4)


class TestShmArena:
    def test_descriptor_nbytes(self):
        d = ArrayDescriptor("seg", 0, (3, 4), "<f8")
        assert d.nbytes == 96

    def test_roundtrip_views(self):
        a = np.arange(10, dtype=np.int32)
        b = np.linspace(0, 1, 7)
        with ShmArena({"a": a, "b": b}) as arena:
            np.testing.assert_array_equal(arena.view("a"), a)
            np.testing.assert_array_equal(arena.view("b"), b)
            # Same-process attach through descriptors sees the same bytes.
            views = attach_arrays(arena.descriptors)
            np.testing.assert_array_equal(views["a"], a)
            views["a"][0] = 99
            assert arena.view("a")[0] == 99

    def test_out_specs_zero_initialized(self):
        with ShmArena({}, out_specs={"out": ((5,), np.float64)}) as arena:
            assert arena.view("out").tolist() == [0.0] * 5

    def test_fetch_survives_destroy(self):
        arena = ShmArena({"a": np.ones(4)})
        copy = arena.fetch("a")
        arena.destroy()
        assert copy.tolist() == [1.0] * 4
        with pytest.raises(ValueError, match="destroyed"):
            arena.view("a")

    def test_destroy_idempotent(self):
        arena = ShmArena({"a": np.ones(2)})
        arena.destroy()
        arena.destroy()

    def test_output_name_collision(self):
        with pytest.raises(ValueError, match="collides"):
            ShmArena({"x": np.ones(2)}, out_specs={"x": ((2,), np.float64)})


class TestLifecycle:
    def test_thread_close_idempotent(self):
        be = ThreadBackend(2)
        be.map_ranges(lambda lo, hi: hi, 10)
        be.close()
        be.close()

    def test_process_pool_is_warm(self):
        import os

        with get_backend("processes", 1) as be:
            pids = be.map_items(_worker_pid, [0, 1, 2])
        assert len(set(pids)) == 1
        assert pids[0] != os.getpid()


def _worker_pid(_: int) -> int:
    import os

    return os.getpid()
