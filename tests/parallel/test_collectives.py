"""Compressed collective reduction tests (the paper's MPI use case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.parallel import (
    compressed_mean_allreduce,
    compressed_stats_allreduce,
    local_quantized_moments,
    run_spmd,
    traditional_stats_allreduce,
)


@pytest.fixture
def rank_data(rng):
    return [
        (np.cumsum(rng.normal(size=5000)) * 0.01 + r).astype(np.float32)
        for r in range(4)
    ]


class TestLocalMoments:
    def test_moments_match_decompressed(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-4)
        x = codec.decompress(c).astype(np.float64)
        s, s2, n = local_quantized_moments(c)
        assert n == x.size
        assert s == pytest.approx(float(x.sum()), rel=1e-6)
        assert s2 == pytest.approx(float(np.dot(x, x)), rel=1e-6)

    def test_constant_blocks_closed_form(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        x = codec.decompress(c).astype(np.float64).reshape(-1)
        s, s2, n = local_quantized_moments(c)
        assert s == pytest.approx(float(x.sum()), rel=1e-6, abs=1e-9)
        assert s2 == pytest.approx(float(np.dot(x, x)), rel=1e-6)


class TestAllreduce:
    def test_compressed_mean_matches_global(self, rank_data):
        codec = SZOps()
        blobs = [codec.compress(d, 1e-4) for d in rank_data]
        global_mean = float(
            np.mean(np.concatenate([codec.decompress(b).astype(np.float64) for b in blobs]))
        )

        def prog(comm):
            return compressed_mean_allreduce(comm, blobs[comm.rank])

        results = run_spmd(4, prog)
        assert all(r == pytest.approx(global_mean, rel=1e-9) for r in results)

    def test_compressed_matches_traditional(self, rank_data):
        codec = SZOps()
        blobs = [codec.compress(d, 1e-4) for d in rank_data]

        def compressed(comm):
            return compressed_stats_allreduce(comm, blobs[comm.rank])

        def traditional(comm):
            return traditional_stats_allreduce(comm, codec, blobs[comm.rank])

        c_stats = run_spmd(4, compressed)[0]
        t_stats = run_spmd(4, traditional)[0]
        assert c_stats["count"] == t_stats["count"]
        assert c_stats["mean"] == pytest.approx(t_stats["mean"], rel=1e-6)
        assert c_stats["variance"] == pytest.approx(t_stats["variance"], rel=1e-4)
        assert c_stats["std"] == pytest.approx(t_stats["std"], rel=1e-4)

    def test_mixed_error_bounds_across_ranks(self, rank_data):
        """Moments are in value units, so ranks may use different bounds."""
        codec = SZOps()
        epss = [1e-3, 1e-4, 1e-5, 1e-4]
        blobs = [codec.compress(d, e) for d, e in zip(rank_data, epss)]
        raw_mean = float(
            np.mean(np.concatenate([codec.decompress(b).astype(np.float64) for b in blobs]))
        )

        def prog(comm):
            return compressed_mean_allreduce(comm, blobs[comm.rank])

        assert run_spmd(4, prog)[0] == pytest.approx(raw_mean, rel=1e-9)
