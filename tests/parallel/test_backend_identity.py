"""Cross-backend bit-identity: the contract every substrate must honor.

Serial, thread, and process execution share one chunking and one kernel
set, so compressed streams must be *byte-identical* and reductions
*float-identical* across backends — not merely close.  These tests pin
that down on the awkward geometries: ragged final blocks, all-constant
streams, and worker counts that do not divide the block count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compressor import SZOps
from repro.harness.runner import compress_fields
from repro.parallel.backends import available_backends, get_backend
from repro.runtime.reduce import (
    parallel_mean,
    parallel_std,
    parallel_summary_statistics,
    parallel_variance,
)

EPS = 1e-4

BACKENDS = available_backends()
WORKER_COUNTS = (1, 2, 3, 4)


def _fields(rng) -> dict[str, np.ndarray]:
    smooth = np.cumsum(rng.normal(scale=5e-3, size=6_000)).astype(np.float32)
    ragged = smooth[:5_987].copy()  # final block is partial (5987 % 64 != 0)
    plateau = np.full(4_096, 0.25, dtype=np.float32)  # every block constant
    mixed = smooth.copy()
    mixed[1_000:3_000] = -1.5  # constant run inside a varying field
    return {"smooth": smooth, "ragged": ragged, "constant": plateau, "mixed": mixed}


@pytest.fixture(scope="module")
def fields() -> dict[str, np.ndarray]:
    return _fields(np.random.default_rng(20240624))


@pytest.fixture(scope="module")
def reference(fields) -> dict[str, bytes]:
    codec = SZOps(block_size=64, n_threads=1, backend="serial")
    return {name: codec.compress(arr, EPS).to_bytes() for name, arr in fields.items()}


class TestStreamIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_streams_byte_identical(self, fields, reference, backend, workers):
        with SZOps(block_size=64, n_threads=workers, backend=backend) as codec:
            for name, arr in fields.items():
                assert codec.compress(arr, EPS).to_bytes() == reference[name], (
                    f"{backend}@{workers} diverged on {name}"
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_decode_matches_serial(self, fields, backend):
        serial = SZOps(block_size=64, n_threads=1, backend="serial")
        with SZOps(block_size=64, n_threads=3, backend=backend) as codec:
            for arr in fields.values():
                c = serial.compress(arr, EPS)
                np.testing.assert_array_equal(
                    codec.decompress(c), serial.decompress(c)
                )

    def test_section_bytes_identical(self, fields, reference):
        # Not just the container: the individual sign/payload sections must
        # land at identical offsets (the concatenation-by-construction
        # property of block-aligned chunks).
        from repro.core.format import SZOpsCompressed

        with SZOps(block_size=64, n_threads=4, backend="processes") as codec:
            c = codec.compress(fields["ragged"], EPS)
        ref = SZOpsCompressed.from_bytes(reference["ragged"])
        np.testing.assert_array_equal(c.sign_bytes, ref.sign_bytes)
        np.testing.assert_array_equal(c.payload_bytes, ref.payload_bytes)
        np.testing.assert_array_equal(c.widths, ref.widths)


class TestKernelBackendIdentity:
    """Every (bitpack kernel x backend) cell must emit the reference bytes.

    This is the unconditional half of the CI perf gate: kernels are
    interchangeable only because this matrix pins byte equality on the
    awkward geometries, across every execution substrate.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", ("auto", "bitarray", "wordpack", "numba"))
    def test_streams_byte_identical_per_kernel(
        self, fields, reference, backend, kernel
    ):
        from repro.core.config import SZOpsConfig

        cfg = SZOpsConfig(
            block_size=64, n_threads=2, backend=backend, bitpack_kernel=kernel
        )
        with SZOps(config=cfg) as codec:
            for name, arr in fields.items():
                c = codec.compress(arr, EPS)
                assert c.to_bytes() == reference[name], (
                    f"{kernel}x{backend} diverged on {name}"
                )
                np.testing.assert_array_equal(
                    codec.decompress(c),
                    SZOps(block_size=64).decompress(c),
                )


class TestReductionIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_reductions_float_identical(self, fields, workers):
        codec = SZOps(block_size=64)
        for arr in fields.values():
            c = codec.compress(arr, EPS)
            seen = []
            for backend in BACKENDS:
                with get_backend(backend, workers) as be:
                    seen.append(
                        (
                            parallel_mean(c, be),
                            parallel_variance(c, be),
                            parallel_std(c, be),
                            tuple(sorted(parallel_summary_statistics(c, be).items())),
                        )
                    )
            assert seen[0] == seen[1] == seen[2], f"workers={workers}"

    def test_matches_eager_ops(self, fields):
        from repro.core import ops

        codec = SZOps(block_size=64)
        c = codec.compress(fields["smooth"], EPS)
        with get_backend("processes", 2) as be:
            assert parallel_mean(c, be) == ops.mean(c)


class TestMultiFieldInSitu:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compress_fields_identical(self, fields, reference, backend):
        got = compress_fields(fields, EPS, backend, n_workers=2, block_size=64)
        assert {n: c.to_bytes() for n, c in got.items()} == reference
