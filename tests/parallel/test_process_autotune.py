"""Chunk-batch autotuning in the process backend.

The planner's contract: first call per kernel ships chunks singly (so the
EWMA can observe real per-chunk cost), later calls batch cheap chunks to
amortize the measured dispatch overhead, and expensive chunks keep their
one-chunk-per-future dispatch.  Results must come back flattened in chunk
order regardless of batching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.backends.process import (
    OVERHEAD_AMORTIZATION,
    ProcessBackend,
)
from repro.parallel.kernels import reduce_sum_chunk


@pytest.fixture
def backend() -> ProcessBackend:
    # Planner-only tests: no pool is ever started, so no cleanup needed.
    return ProcessBackend(n_workers=2)


class TestBatchPlanner:
    def test_first_call_ships_singles(self, backend):
        chunks = [{"i": i} for i in range(10)]
        batches = backend._plan_batches("k", chunks, overhead=1e-3)
        assert batches == [[c] for c in chunks]

    def test_few_chunks_never_batch(self, backend):
        backend._note_chunk_time("k", 1, 1e-6)
        chunks = [{"i": 0}, {"i": 1}]
        assert backend._plan_batches("k", chunks, overhead=1.0) == [
            [chunks[0]],
            [chunks[1]],
        ]

    def test_cheap_chunks_batch_up_to_worker_cap(self, backend):
        backend._note_chunk_time("k", 1, 1e-5)  # 10 us chunks
        chunks = [{"i": i} for i in range(10)]
        batches = backend._plan_batches("k", chunks, overhead=1e-3)
        # target = 8 ms of work per future => hundreds of chunks, capped at
        # ceil(10 / 2) = 5 so both workers stay busy.
        assert [len(b) for b in batches] == [5, 5]
        assert [c for b in batches for c in b] == chunks  # order preserved

    def test_expensive_chunks_stay_single(self, backend):
        backend._note_chunk_time("k", 1, 10.0)
        chunks = [{"i": i} for i in range(10)]
        batches = backend._plan_batches("k", chunks, overhead=1e-3)
        assert all(len(b) == 1 for b in batches)

    def test_target_tracks_amortization_constant(self, backend):
        overhead = 1e-3
        avg = overhead  # chunk runtime == dispatch overhead
        backend._note_chunk_time("k", 1, avg)
        chunks = [{"i": i} for i in range(1000)]
        batches = backend._plan_batches("k", chunks, overhead)
        assert len(batches[0]) == int(OVERHEAD_AMORTIZATION)

    def test_estimates_are_per_kernel(self, backend):
        backend._note_chunk_time("cheap", 1, 1e-6)
        chunks = [{"i": i} for i in range(8)]
        assert all(
            len(b) == 1
            for b in backend._plan_batches("other", chunks, overhead=1e-3)
        )


class TestEwma:
    def test_first_sample_taken_verbatim(self, backend):
        backend._note_chunk_time("k", 2, 2.0)
        assert backend._chunk_ewma_s["k"] == pytest.approx(1.0)

    def test_update_blends_toward_new_sample(self, backend):
        backend._note_chunk_time("k", 1, 1.0)
        backend._note_chunk_time("k", 1, 3.0)
        # alpha = 0.4: 0.4 * 3 + 0.6 * 1
        assert backend._chunk_ewma_s["k"] == pytest.approx(1.8)

    def test_zero_chunks_ignored(self, backend):
        backend._note_chunk_time("k", 0, 1.0)
        assert "k" not in backend._chunk_ewma_s

    def test_discard_pool_forces_overhead_reprobe(self, backend):
        backend._dispatch_overhead_s = 0.5
        backend._discard_pool(kill=False)
        assert backend._dispatch_overhead_s is None


class TestBatchedExecution:
    def test_results_flatten_in_chunk_order_across_warm_calls(self):
        q = np.arange(120, dtype=np.int64)
        chunks = [{"lo": i, "hi": i + 10} for i in range(0, 120, 10)]
        expected = [float(q[c["lo"] : c["hi"]].sum()) for c in chunks]
        with ProcessBackend(n_workers=2) as be:
            # Call 1: singles (no estimate yet) seeds overhead + EWMA.
            first = be.run_kernel(reduce_sum_chunk, {"q": q}, chunks).results
            assert be._dispatch_overhead_s is not None
            assert "reduce_sum_chunk" in be._chunk_ewma_s
            # Call 2: may batch; results must still flatten in order.
            second = be.run_kernel(reduce_sum_chunk, {"q": q}, chunks).results
        assert first == expected
        assert second == expected
