"""Chunked thread-pool executor tests."""

from __future__ import annotations

import threading

import pytest

from repro.parallel import ChunkedExecutor, parallel_map


class TestMapRanges:
    def test_single_thread_inline(self):
        ex = ChunkedExecutor(1)
        out = ex.map_ranges(lambda lo, hi: (lo, hi), 10)
        assert out == [(0, 10)]
        assert ex._pool is None  # never spun up a pool

    def test_results_in_range_order(self):
        with ChunkedExecutor(4) as ex:
            out = ex.map_ranges(lambda lo, hi: lo, 100)
        assert out == sorted(out)

    def test_covers_all_items(self):
        with ChunkedExecutor(3) as ex:
            out = ex.map_ranges(lambda lo, hi: hi - lo, 17)
        assert sum(out) == 17

    def test_exception_propagates(self):
        def boom(lo, hi):
            raise RuntimeError("kernel failure")

        with ChunkedExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="kernel failure"):
                ex.map_ranges(boom, 10)


class TestMapItems:
    def test_order_preserved(self):
        with ChunkedExecutor(4) as ex:
            out = ex.map_items(lambda x: x * x, list(range(20)))
        assert out == [x * x for x in range(20)]

    def test_actually_parallel(self):
        seen = set()
        lock = threading.Lock()

        def record(x):
            with lock:
                seen.add(threading.get_ident())
            return x

        with ChunkedExecutor(4) as ex:
            ex.map_items(record, list(range(64)))
        # at least one worker thread besides the caller is plausible; we
        # only require the call to have gone through the pool machinery
        assert len(seen) >= 1

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            ChunkedExecutor(0)


def test_parallel_map_helper():
    assert parallel_map(lambda x: x + 1, [1, 2, 3], n_threads=2) == [2, 3, 4]
