"""Fault injection for the process backend: dead and hung workers.

The contract under test: a worker that dies (or hangs) mid-chunk must
surface a :class:`BackendWorkerError` naming the chunk range — never a
bare ``BrokenProcessPool`` and never a deadlock — the shared-memory
segment must not leak into ``/dev/shm``, and the pool must self-heal so
the next call succeeds on a fresh pool.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel.backends import BackendWorkerError, ProcessBackend

SHM_DIR = Path("/dev/shm")


def _shm_entries() -> set[str]:
    if not SHM_DIR.exists():
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith("psm_")}


def suicide_kernel(arrays, chunk):
    """Kill the worker hard on the second chunk; SIGKILL skips cleanup."""
    if chunk["lo"] >= 8:
        os.kill(os.getpid(), signal.SIGKILL)
    return int(arrays["q"][chunk["lo"] : chunk["hi"]].sum())


def sleep_kernel(arrays, chunk):
    time.sleep(chunk["seconds"])
    return chunk["lo"]


def sum_kernel(arrays, chunk):
    return int(arrays["q"][chunk["lo"] : chunk["hi"]].sum())


@pytest.fixture
def backend():
    be = ProcessBackend(2, timeout=30.0)
    yield be
    be.close()


class TestDeadWorker:
    def test_raises_backend_worker_error_with_chunk_range(self, backend):
        q = np.arange(16, dtype=np.int64)
        chunks = [{"lo": lo, "hi": lo + 4} for lo in range(0, 16, 4)]
        before = _shm_entries()
        with pytest.raises(BackendWorkerError) as exc_info:
            backend.run_kernel(suicide_kernel, {"q": q}, chunks)
        err = exc_info.value
        assert "chunk [" in str(err), "error must name the chunk range"
        assert err.chunk is not None and "lo" in err.chunk
        # The arena is destroyed in the error path: nothing new in /dev/shm.
        assert _shm_entries() <= before, "leaked shared-memory segment"

    def test_pool_self_heals(self, backend):
        q = np.arange(16, dtype=np.int64)
        chunks = [{"lo": lo, "hi": lo + 4} for lo in range(0, 16, 4)]
        with pytest.raises(BackendWorkerError):
            backend.run_kernel(suicide_kernel, {"q": q}, chunks)
        # Same backend object, fresh pool underneath: next call succeeds.
        run = backend.run_kernel(sum_kernel, {"q": q}, chunks)
        assert run.results == [6, 22, 38, 54]


class TestHungWorker:
    def test_timeout_surfaces_not_deadlocks(self):
        be = ProcessBackend(1, timeout=0.5)
        try:
            before = _shm_entries()
            t0 = time.monotonic()
            with pytest.raises(BackendWorkerError, match="exceeded"):
                be.run_kernel(
                    sleep_kernel, {}, [{"lo": 0, "hi": 1, "seconds": 60.0}]
                )
            assert time.monotonic() - t0 < 30.0, "timeout did not bound the wait"
            assert _shm_entries() <= before
        finally:
            be.close()

    def test_recovers_after_timeout(self):
        be = ProcessBackend(1, timeout=0.5)
        try:
            with pytest.raises(BackendWorkerError):
                be.run_kernel(
                    sleep_kernel, {}, [{"lo": 0, "hi": 1, "seconds": 60.0}]
                )
            q = np.arange(8, dtype=np.int64)
            run = be.run_kernel(sum_kernel, {"q": q}, [{"lo": 0, "hi": 8}])
            assert run.results == [28]
        finally:
            be.close()
