"""Partitioning helper tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import block_aligned_ranges, even_ranges


class TestEvenRanges:
    def test_covers_everything_in_order(self):
        ranges = even_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0

    def test_more_parts_than_items(self):
        ranges = even_ranges(2, 5)
        assert len(ranges) == 2

    def test_zero_items(self):
        assert even_ranges(0, 3) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            even_ranges(-1, 2)
        with pytest.raises(ValueError):
            even_ranges(5, 0)

    @given(n=st.integers(0, 1000), parts=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, parts):
        ranges = even_ranges(n, parts)
        covered = sum(hi - lo for lo, hi in ranges)
        assert covered == n
        assert all(hi > lo for lo, hi in ranges)
        sizes = [hi - lo for lo, hi in ranges]
        if sizes:
            assert max(sizes) - min(sizes) <= 1


class TestBlockAligned:
    def test_ranges_align_to_blocks(self):
        ranges = block_aligned_ranges(1000, 64, 3)
        for lo, hi in ranges[:-1]:
            assert lo % 64 == 0 and hi % 64 == 0
        assert ranges[-1][1] == 1000

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            block_aligned_ranges(100, 0, 2)
