"""Simulated-MPI communicator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import SimComm, run_spmd


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm: SimComm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1)
                return None
            return comm.recv(source=0)

        results = run_spmd(2, prog)
        assert results[1] == {"x": 1}

    def test_tags_separate_channels(self):
        def prog(comm: SimComm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_spmd(2, prog)[1] == ("a", "b")

    def test_invalid_rank_rejected(self):
        def prog(comm: SimComm):
            if comm.rank == 0:
                comm.send(1, dest=5)
            return None

        with pytest.raises(ValueError):
            run_spmd(2, prog)


class TestCollectives:
    def test_bcast(self):
        def prog(comm: SimComm):
            data = [1, 2, 3] if comm.rank == 0 else None
            return comm.bcast(data)

        assert all(r == [1, 2, 3] for r in run_spmd(4, prog))

    def test_gather(self):
        def prog(comm: SimComm):
            return comm.gather(comm.rank * 10)

        results = run_spmd(3, prog)
        assert results[0] == [0, 10, 20]
        assert results[1] is None and results[2] is None

    def test_allgather(self):
        def prog(comm: SimComm):
            return comm.allgather(comm.rank)

        assert all(r == [0, 1, 2, 3] for r in run_spmd(4, prog))

    def test_allreduce_sum(self):
        def prog(comm: SimComm):
            return comm.allreduce(comm.rank + 1, lambda a, b: a + b)

        assert all(r == 10 for r in run_spmd(4, prog))

    def test_allreduce_numpy_arrays(self):
        def prog(comm: SimComm):
            local = np.full(5, comm.rank, dtype=np.int64)
            return comm.allreduce(local, lambda a, b: a + b)

        results = run_spmd(3, prog)
        assert all(np.array_equal(r, np.full(5, 3)) for r in results)

    def test_barrier(self):
        order = []

        def prog(comm: SimComm):
            order.append(("pre", comm.rank))
            comm.barrier()
            order.append(("post", comm.rank))
            return None

        run_spmd(3, prog)
        pres = [i for i, (phase, _) in enumerate(order) if phase == "pre"]
        posts = [i for i, (phase, _) in enumerate(order) if phase == "post"]
        assert max(pres) < min(posts)


class TestErrors:
    def test_rank_exception_propagates(self):
        def prog(comm: SimComm):
            if comm.rank == 1:
                raise ValueError("rank 1 died")
            comm.barrier()
            return None

        with pytest.raises(ValueError, match="rank 1 died"):
            run_spmd(2, prog)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)
