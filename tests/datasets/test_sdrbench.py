"""SDRBench catalog tests: geometry and the calibrated orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.datasets import dataset_names, generate_fields, get_dataset


class TestCatalog:
    def test_four_datasets_in_paper_order(self):
        assert dataset_names() == ["Hurricane", "CESM-ATM", "SCALE-LETKF", "Miranda"]

    def test_field_counts_match_table_iii(self):
        expected = {"Hurricane": 7, "CESM-ATM": 5, "SCALE-LETKF": 12, "Miranda": 7}
        for name, count in expected.items():
            assert get_dataset(name).n_fields == count

    def test_paper_shapes_match_table_iii(self):
        assert get_dataset("Hurricane").paper_shape == (100, 500, 500)
        assert get_dataset("CESM-ATM").paper_shape == (1800, 3600)
        assert get_dataset("SCALE-LETKF").paper_shape == (98, 1200, 1200)
        assert get_dataset("Miranda").paper_shape == (256, 384, 384)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("NYX")

    def test_shape_scaling(self):
        spec = get_dataset("Miranda")
        half = spec.shape_at(0.5)
        assert all(h == max(8, round(d * 0.5)) for h, d in zip(half, spec.default_shape))


class TestGeneration:
    def test_field_subset(self):
        fields = generate_fields("Hurricane", scale=0.3, fields=["U", "PRECIP"])
        assert set(fields) == {"U", "PRECIP"}

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError, match="no fields named"):
            generate_fields("Hurricane", scale=0.3, fields=["QRAIN"])

    def test_deterministic_given_seed(self):
        a = generate_fields("CESM-ATM", scale=0.25, seed=5, fields=["PHIS"])["PHIS"]
        b = generate_fields("CESM-ATM", scale=0.25, seed=5, fields=["PHIS"])["PHIS"]
        assert np.array_equal(a, b)

    def test_shape_override(self):
        fields = generate_fields("Miranda", shape=(8, 16, 16), fields=["density"])
        assert fields["density"].shape == (8, 16, 16)


@pytest.mark.slow
class TestCalibratedOrderings:
    """Coarse checks of the calibration targets (small scale for speed)."""

    @pytest.fixture(scope="class")
    def ratios(self):
        codec = SZOps()
        out = {}
        for ds in dataset_names():
            fields = generate_fields(ds, scale=0.6)
            out[ds] = float(
                np.mean([codec.compress(a, 1e-4).compression_ratio for a in fields.values()])
            )
        return out

    def test_table7_dataset_ordering(self, ratios):
        """SCALE >> Miranda > Hurricane ~ CESM (Table VII's SZOps column)."""
        assert ratios["SCALE-LETKF"] > ratios["Miranda"] > ratios["Hurricane"]
        assert ratios["SCALE-LETKF"] > 2 * ratios["Miranda"]

    def test_ratios_in_paper_ballpark(self, ratios):
        """Within a factor ~1.6 of the paper's SZOps column at reduced scale."""
        paper = {"Hurricane": 2.78, "CESM-ATM": 2.68, "SCALE-LETKF": 17.02, "Miranda": 6.19}
        for ds, expected in paper.items():
            assert expected / 1.7 <= ratios[ds] <= expected * 1.7, (ds, ratios[ds])
