"""Raw binary field I/O tests (SDRBench convention)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_fields, get_dataset, load_field, save_field
from repro.datasets.io import SDRBENCH_DIR_ENV, _strided_resample, try_load_real_field


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        field = rng.normal(size=(10, 20)).astype(np.float32)
        path = tmp_path / "sub" / "field.f32"
        save_field(path, field)
        out = load_field(path, (10, 20))
        assert np.array_equal(out, field)

    def test_wrong_size_rejected(self, tmp_path, rng):
        path = tmp_path / "f.f32"
        save_field(path, rng.normal(size=100).astype(np.float32))
        with pytest.raises(ValueError, match="expected"):
            load_field(path, (11, 10))

    def test_little_endian_on_disk(self, tmp_path):
        path = tmp_path / "f.f32"
        save_field(path, np.array([1.0], dtype=np.float32))
        assert path.read_bytes() == np.float32(1.0).tobytes()


class TestStridedResample:
    def test_exact_division(self, rng):
        arr = rng.normal(size=(8, 12))
        out = _strided_resample(arr, (4, 6))
        assert out.shape == (4, 6)
        assert np.array_equal(out, arr[::2, ::2])

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValueError, match="smaller"):
            _strided_resample(np.zeros((4, 4)), (8, 8))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            _strided_resample(np.zeros((4, 4)), (4, 4, 4))


class TestRealDataFallback:
    def test_returns_none_without_env(self, monkeypatch):
        monkeypatch.delenv(SDRBENCH_DIR_ENV, raising=False)
        spec = get_dataset("Hurricane")
        assert try_load_real_field(spec, "U", (10, 50, 50)) is None

    def test_loads_real_file_when_present(self, tmp_path, monkeypatch, rng):
        spec = get_dataset("Hurricane")
        full = rng.normal(size=spec.paper_shape).astype(np.float32)
        save_field(tmp_path / "Hurricane" / "U.f32", full)
        monkeypatch.setenv(SDRBENCH_DIR_ENV, str(tmp_path))
        target = (20, 100, 100)
        out = try_load_real_field(spec, "U", target)
        assert out is not None and out.shape == target
        # generate_fields picks the real data up too
        via_gen = generate_fields("Hurricane", fields=["U"])["U"]
        assert np.array_equal(via_gen, out)

    def test_missing_file_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SDRBENCH_DIR_ENV, str(tmp_path))
        fields = generate_fields("Miranda", scale=0.3, fields=["density"])
        assert fields["density"].shape == get_dataset("Miranda").shape_at(0.3)
