"""Synthetic field generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FieldSpec, gaussian_random_field, synthesize_field


class TestGaussianRandomField:
    def test_shape_and_normalization(self, rng):
        f = gaussian_random_field((16, 20, 24), 4.0, rng)
        assert f.shape == (16, 20, 24)
        assert abs(f.mean()) < 1e-10
        assert np.abs(f).max() == pytest.approx(1.0)

    def test_smoothness_increases_with_beta(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        rough = gaussian_random_field((64, 64), 1.0, rng1)
        smooth = gaussian_random_field((64, 64), 6.0, rng2)

        def grad_energy(f):
            return float(np.mean(np.diff(f, axis=-1) ** 2)) / float(np.mean(f**2))

        assert grad_energy(smooth) < grad_energy(rough)

    def test_2d_and_1d(self, rng):
        assert gaussian_random_field((100,), 3.0, rng).shape == (100,)
        assert gaussian_random_field((10, 12), 3.0, rng).shape == (10, 12)


class TestSynthesizeField:
    def test_deterministic(self):
        spec = FieldSpec("t", beta=4.0, amplitude=2.0, noise=1e-4)
        a = synthesize_field(spec, (8, 32, 32), seed=7)
        b = synthesize_field(spec, (8, 32, 32), seed=7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        spec = FieldSpec("t", beta=4.0)
        a = synthesize_field(spec, (8, 32, 32), seed=1)
        b = synthesize_field(spec, (8, 32, 32), seed=2)
        assert not np.array_equal(a, b)

    def test_float32_output(self):
        out = synthesize_field(FieldSpec("t"), (64,), seed=0)
        assert out.dtype == np.float32

    def test_amplitude_and_offset(self):
        spec = FieldSpec("t", beta=4.0, amplitude=3.0, offset=100.0)
        f = synthesize_field(spec, (32, 32), seed=0).astype(np.float64)
        assert abs(f.mean() - 100.0) < 3.0
        assert np.abs(f - 100.0).max() <= 3.0 * 1.001

    def test_plateau_slab_is_constant(self):
        spec = FieldSpec("t", beta=4.0, amplitude=1.0, plateau=0.25, noise=1e-3)
        f = synthesize_field(spec, (16, 32, 32), seed=0)
        slab = f[:4]
        assert np.all(slab == slab.reshape(-1)[0])

    def test_sparse_mostly_zero_nonnegative(self):
        spec = FieldSpec("q", beta=5.0, amplitude=1e-3, sparse=True, plateau=0.9)
        f = synthesize_field(spec, (8, 64, 64), seed=0)
        assert float((f == 0).mean()) > 0.8
        assert f.min() >= 0.0

    def test_envelope_creates_heavy_tails(self):
        flat = FieldSpec("a", beta=4.0, envelope=0.0)
        mod = FieldSpec("a", beta=4.0, envelope=1.5)
        fa = synthesize_field(flat, (64, 64), seed=3).astype(np.float64)
        fm = synthesize_field(mod, (64, 64), seed=3).astype(np.float64)

        def kurtosis(f):
            d = np.diff(f.reshape(-1))
            d = d - d.mean()
            return float(np.mean(d**4) / np.mean(d**2) ** 2)

        assert kurtosis(fm) > kurtosis(fa)

    def test_noise_not_applied_to_plateau(self):
        spec = FieldSpec("t", beta=4.0, plateau=0.5, noise=0.1, offset=5.0)
        f = synthesize_field(spec, (10, 16), seed=0)
        assert np.all(f[:5] == 5.0)
