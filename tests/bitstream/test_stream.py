"""Tests for the byte-stream writer/reader framing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitstream import ByteReader, ByteWriter, StreamFormatError


class TestRoundtrip:
    def test_scalars(self):
        w = ByteWriter()
        w.write_u8(7)
        w.write_u32(123456)
        w.write_u64(2**40)
        w.write_i64(-5)
        w.write_f64(3.5)
        w.write_str("hello δ")
        r = ByteReader(w.getvalue())
        assert r.read_u8() == 7
        assert r.read_u32() == 123456
        assert r.read_u64() == 2**40
        assert r.read_i64() == -5
        assert r.read_f64() == 3.5
        assert r.read_str() == "hello δ"
        r.expect_end()

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(10, dtype=np.int64),
            np.arange(5, dtype=np.uint8),
            np.linspace(0, 1, 7, dtype=np.float32),
            np.zeros(0, dtype=np.int16),
        ],
    )
    def test_arrays(self, arr):
        w = ByteWriter()
        w.write_array(arr)
        r = ByteReader(w.getvalue())
        out = r.read_array()
        assert out.dtype == arr.dtype
        assert np.array_equal(out, arr)
        r.expect_end()

    def test_raw_bytes_and_ndarray_sections(self):
        w = ByteWriter()
        w.write_bytes(b"abc")
        w.write_bytes(np.array([1, 2, 3], dtype=np.uint8))
        buf = w.getvalue()
        assert buf == b"abc\x01\x02\x03"
        r = ByteReader(np.frombuffer(buf, dtype=np.uint8))
        assert r.read_bytes(6) == buf

    def test_tell_tracks_position(self):
        w = ByteWriter()
        assert w.tell() == 0
        w.write_u32(1)
        assert w.tell() == 4
        r = ByteReader(w.getvalue())
        assert r.tell() == 0
        r.read_u32()
        assert r.tell() == 4
        assert r.remaining() == 0


class TestErrors:
    def test_truncated_read(self):
        r = ByteReader(b"\x01")
        with pytest.raises(StreamFormatError, match="truncated"):
            r.read_u32()

    def test_trailing_bytes_detected(self):
        r = ByteReader(b"\x01\x02")
        r.read_u8()
        with pytest.raises(StreamFormatError, match="trailing"):
            r.expect_end()
