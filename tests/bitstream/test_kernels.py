"""Property and unit tests for the pluggable bitpack kernel registry.

The contract under test is the one :class:`repro.bitstream.BitpackKernel`
documents: every registered variant is **byte-identical** to the
``bitarray`` reference for all widths in [0, 64], all sizes (including
empty), all in-range values (including the all-ones ``2**w - 1`` lanes),
and ragged tails that leave padding bits in the final byte.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import (
    AUTO_KERNEL,
    SMALL_INPUT_CUTOFF,
    BitarrayKernel,
    BitpackKernel,
    WordpackKernel,
    available_kernels,
    get_kernel,
    numba_available,
    pack_uints,
    register_kernel,
    resolve_kernel,
    unpack_uints,
)
from repro.bitstream import kernels as kernels_mod

REFERENCE = get_kernel("bitarray")
VARIANTS = [get_kernel(name) for name in available_kernels() if name != "bitarray"]

#: Widths that hit every wordpack dispatch arm: the unpackbits path (1),
#: tree-merge merges (2..7), byte-multiple lanes (8/16/24/32/40/48/56/64),
#: single-cycle lanes (3/5/9/11/12/13), phase gathers (17/33/57), and the
#: reference fallback (58..63).
DISPATCH_WIDTHS = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 24, 31, 32, 33,
    40, 48, 56, 57, 58, 59, 63, 64,
]


def _random_lanes(rng: np.random.Generator, n: int, width: int) -> np.ndarray:
    if width == 0:
        return np.zeros(n, dtype=np.uint64)
    vals = rng.integers(0, 1 << min(width, 63), size=n, dtype=np.uint64)
    if width == 64:
        vals |= rng.integers(0, 2, size=n, dtype=np.uint64) << np.uint64(63)
    return vals


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda k: k.name)
@pytest.mark.parametrize("width", DISPATCH_WIDTHS)
@pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 257, 1000])
class TestKernelIdentity:
    """Exhaustive dispatch-arm sweep: every variant vs the reference."""

    def test_pack_byte_identical_and_roundtrips(self, variant, width, n, rng):
        vals = _random_lanes(rng, n, width)
        ref = REFERENCE.pack_uints(vals, width)
        got = variant.pack_uints(vals, width)
        assert got.dtype == np.uint8
        assert got.tobytes() == ref.tobytes()
        assert np.array_equal(variant.unpack_uints(got, n, width), vals)

    def test_unpack_matches_reference(self, variant, width, n, rng):
        vals = _random_lanes(rng, n, width)
        buf = REFERENCE.pack_uints(vals, width)
        assert np.array_equal(
            variant.unpack_uints(buf, n, width),
            REFERENCE.unpack_uints(buf, n, width),
        )

    def test_max_value_lanes(self, variant, width, n):
        """All-ones lanes: every payload bit set, padding bits still zero."""
        if width == 0:
            vals = np.zeros(n, dtype=np.uint64)
        else:
            vals = np.full(n, (1 << width) - 1 if width < 64 else 2**64 - 1,
                           dtype=np.uint64)
        ref = REFERENCE.pack_uints(vals, width)
        got = variant.pack_uints(vals, width)
        assert got.tobytes() == ref.tobytes()
        assert np.array_equal(variant.unpack_uints(got, n, width), vals)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda k: k.name)
class TestKernelBitInterface:
    def test_bits_of_matches_reference(self, variant, rng):
        for width in (1, 3, 8, 11, 16, 33):
            vals = _random_lanes(rng, 77, width)
            assert np.array_equal(
                variant.bits_of(vals, width), REFERENCE.bits_of(vals, width)
            )

    def test_uints_from_bits_matches_reference(self, variant, rng):
        for width in (1, 3, 8, 11, 16, 33):
            vals = _random_lanes(rng, 77, width)
            bits = REFERENCE.bits_of(vals, width)
            assert np.array_equal(variant.uints_from_bits(bits, width), vals)

    def test_uints_from_bits_length_mismatch(self, variant):
        with pytest.raises(ValueError, match="multiple"):
            variant.uints_from_bits(np.zeros(7, dtype=np.uint8), 3)

    def test_bit_offset_paths(self, variant, rng):
        """Byte-aligned and sub-byte offsets both match the reference."""
        vals = _random_lanes(rng, 65, 11)
        payload = REFERENCE.pack_uints(vals, 11)
        for lead_bits in (8, 24, 3, 13):  # aligned and unaligned leads
            bits = np.concatenate(
                [np.zeros(lead_bits, dtype=np.uint8), np.unpackbits(payload)]
            )
            buf = np.packbits(bits)
            assert np.array_equal(
                variant.unpack_uints(buf, 65, 11, bit_offset=lead_bits),
                vals,
            ), f"bit_offset={lead_bits}"

    def test_error_messages_match_reference(self, variant):
        with pytest.raises(ValueError, match=r"width must be in \[0, 64\]"):
            variant.pack_uints(np.zeros(4, dtype=np.uint64), 65)
        with pytest.raises(ValueError, match="width 0"):
            variant.pack_uints(np.ones(4, dtype=np.uint64), 0)
        with pytest.raises(ValueError, match="does not fit"):
            variant.pack_uints(np.full(4, 8, dtype=np.uint64), 3)
        with pytest.raises(ValueError, match="exceed"):
            variant.unpack_uints(np.zeros(1, dtype=np.uint8), 9, 1)

    def test_accepts_bytes_and_memoryview(self, variant, rng):
        vals = _random_lanes(rng, 40, 9)
        payload = REFERENCE.pack_uints(vals, 9).tobytes()
        assert np.array_equal(variant.unpack_uints(payload, 40, 9), vals)
        assert np.array_equal(
            variant.unpack_uints(memoryview(payload), 40, 9), vals
        )


class TestKernelProperties:
    """Hypothesis sweep over (width, size, values) for every variant."""

    @given(width=st.integers(min_value=0, max_value=64), data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_cross_kernel_byte_identity_and_roundtrip(self, width, data):
        n = data.draw(st.integers(min_value=0, max_value=90))
        if width == 0:
            vals = np.zeros(n, dtype=np.uint64)
        else:
            vals = np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=(1 << width) - 1),
                        min_size=n,
                        max_size=n,
                    )
                ),
                dtype=np.uint64,
            )
        ref = REFERENCE.pack_uints(vals, width)
        for variant in VARIANTS:
            got = variant.pack_uints(vals, width)
            assert got.tobytes() == ref.tobytes(), (variant.name, width, n)
            assert np.array_equal(
                variant.unpack_uints(got, n, width), vals
            ), (variant.name, width, n)

    @given(
        width=st.integers(min_value=1, max_value=64),
        n=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_max_value_lanes_property(self, width, n):
        """The all-ones edge for every width, not just the sampled ones."""
        top = (1 << width) - 1 if width < 64 else 2**64 - 1
        vals = np.full(n, top, dtype=np.uint64)
        ref = REFERENCE.pack_uints(vals, width)
        for variant in VARIANTS:
            got = variant.pack_uints(vals, width)
            assert got.tobytes() == ref.tobytes(), (variant.name, width, n)
            assert np.array_equal(variant.unpack_uints(got, n, width), vals)

    @given(
        width=st.integers(min_value=0, max_value=32),
        n=st.integers(min_value=0, max_value=90),
    )
    @settings(max_examples=80, deadline=None)
    def test_uint32_input_matches_uint64_input(self, width, n):
        """Narrow (uint32) inputs — the compressor's native magnitude
        representation when block widths fit 32 bits — must produce the
        exact bytes of the equivalent uint64 input on every kernel."""
        rng = np.random.default_rng(width * 997 + n)
        vals64 = _random_lanes(rng, n, width)
        vals32 = vals64.astype(np.uint32)
        ref = REFERENCE.pack_uints(vals64, width)
        for kernel in [REFERENCE, *VARIANTS]:
            got = kernel.pack_uints(vals32, width)
            assert got.tobytes() == ref.tobytes(), (kernel.name, width, n)
            assert np.array_equal(
                kernel.unpack_uints(got, n, width), vals64
            ), (kernel.name, width, n)

    @given(
        width=st.integers(min_value=1, max_value=57),
        n=st.integers(min_value=1, max_value=70),
        junk=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_ragged_tail_ignores_trailing_junk(self, width, n, junk):
        """Unpack must not read meaning into bytes past the payload."""
        rng = np.random.default_rng(width * 1000 + n)
        vals = _random_lanes(rng, n, width)
        buf = REFERENCE.pack_uints(vals, width)
        extended = np.concatenate(
            [buf, np.full(3, junk, dtype=np.uint8)]
        )
        for variant in VARIANTS:
            assert np.array_equal(
                variant.unpack_uints(extended, n, width), vals
            ), (variant.name, width, n)


class TestRegistry:
    def test_reference_and_wordpack_always_registered(self):
        names = available_kernels()
        assert "bitarray" in names and "wordpack" in names

    def test_numba_registered_iff_importable(self):
        assert ("numba" in available_kernels()) == numba_available()

    def test_get_kernel_unknown_name(self):
        with pytest.raises(KeyError, match="unknown bitpack kernel"):
            get_kernel("nope")

    def test_resolve_passthrough_instance(self):
        kern = WordpackKernel()
        assert resolve_kernel(kern) is kern

    def test_resolve_auto_small_input_uses_reference(self):
        kern = resolve_kernel(AUTO_KERNEL, size=SMALL_INPUT_CUTOFF - 1)
        assert kern.name == "bitarray"

    def test_resolve_auto_wide_nonbyte_width_uses_reference(self):
        assert resolve_kernel(AUTO_KERNEL, width=59).name == "bitarray"
        assert resolve_kernel(AUTO_KERNEL, width=64).name != "bitarray"

    def test_resolve_auto_large_input_uses_fast_variant(self):
        kern = resolve_kernel(AUTO_KERNEL, size=10_000)
        assert kern.name in ("wordpack", "numba")

    def test_resolve_numba_falls_back_without_numba(self):
        kern = resolve_kernel("numba")
        if numba_available():
            assert kern.name == "numba"
        else:
            assert kern.name == "wordpack"

    def test_register_rejects_anonymous_kernel(self):
        class Anon(BitarrayKernel):
            name = ""

        with pytest.raises(ValueError, match="non-empty name"):
            register_kernel(Anon())

    def test_register_custom_kernel_resolves(self):
        class Custom(BitarrayKernel):
            name = "custom-test"

        try:
            register_kernel(Custom())
            assert resolve_kernel("custom-test").name == "custom-test"
            assert "custom-test" in available_kernels()
        finally:
            kernels_mod._REGISTRY.pop("custom-test", None)

    def test_module_level_helpers_stay_reference(self):
        """The plain bitpack functions are untouched by the registry."""
        vals = np.array([1, 2, 3], dtype=np.uint64)
        buf = pack_uints(vals, 4)
        assert np.array_equal(unpack_uints(buf, 3, 4), vals)


class TestWordpackInternals:
    """Pin the dispatch arms the docstring promises."""

    def test_width_58_to_63_falls_back_to_reference(self, rng):
        kern = WordpackKernel()
        for width in (58, 59, 61, 63):
            vals = _random_lanes(rng, 33, width)
            assert (
                kern.pack_uints(vals, width).tobytes()
                == REFERENCE.pack_uints(vals, width).tobytes()
            )

    def test_empty_and_width_zero(self):
        kern = WordpackKernel()
        assert kern.pack_uints(np.zeros(0, dtype=np.uint64), 13).size == 0
        assert kern.pack_uints(np.zeros(5, dtype=np.uint64), 0).size == 0
        assert kern.unpack_uints(b"", 0, 13).size == 0
        assert np.array_equal(
            kern.unpack_uints(b"", 5, 0), np.zeros(5, dtype=np.uint64)
        )

    def test_noncontiguous_input(self, rng):
        kern = WordpackKernel()
        base = _random_lanes(rng, 200, 11)
        view = base[::2]
        assert (
            kern.pack_uints(view, 11).tobytes()
            == REFERENCE.pack_uints(np.ascontiguousarray(view), 11).tobytes()
        )

    def test_uint32_input_at_wide_widths(self, rng):
        """uint32 values packed at widths above 32 (including the 58..63
        reference-fallback arm) widen once and stay byte-identical."""
        kern = WordpackKernel()
        vals32 = rng.integers(0, 1 << 31, size=97, dtype=np.uint32)
        for width in (33, 40, 57, 59, 64):
            ref = REFERENCE.pack_uints(vals32.astype(np.uint64), width)
            assert kern.pack_uints(vals32, width).tobytes() == ref.tobytes()

    def test_uint32_input_rejects_overwide_values(self):
        kern = WordpackKernel()
        with pytest.raises(ValueError, match="does not fit"):
            kern.pack_uints(np.array([9], dtype=np.uint32), 3)
