"""Unit and property tests for the bit-packing primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import (
    bit_width,
    bits_of,
    exclusive_cumsum,
    max_bit_width,
    pack_bits,
    pack_uints,
    ragged_arange,
    uints_from_bits,
    unpack_bits,
    unpack_uints,
)


class TestBitWidth:
    def test_zero_has_width_zero(self):
        assert bit_width(np.array([0]))[0] == 0

    def test_powers_of_two(self):
        values = np.array([1, 2, 3, 4, 7, 8, 255, 256, 2**31, 2**63 - 1], dtype=np.uint64)
        expected = np.array([1, 2, 2, 3, 3, 4, 8, 9, 32, 63], dtype=np.uint8)
        assert np.array_equal(bit_width(values), expected)

    def test_matches_python_bit_length(self, rng):
        values = rng.integers(0, 2**62, size=500).astype(np.uint64)
        expected = np.array([int(v).bit_length() for v in values], dtype=np.uint8)
        assert np.array_equal(bit_width(values), expected)

    def test_uint64_max(self):
        assert bit_width(np.array([2**64 - 1], dtype=np.uint64))[0] == 64

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            bit_width(np.array([-1], dtype=np.int64))

    def test_empty(self):
        assert bit_width(np.array([], dtype=np.uint64)).size == 0

    def test_scalar_fast_path_matches_bit_length(self):
        """Size-1 inputs take the int.bit_length fast path; same answers."""
        for v in (0, 1, 2, 3, 7, 8, 255, 256, 2**31, 2**63 - 1, 2**64 - 1):
            got = bit_width(np.array([v], dtype=np.uint64))
            assert got.shape == (1,) and got.dtype == np.uint8
            assert int(got[0]) == int(v).bit_length()

    def test_scalar_fast_path_preserves_shape(self):
        got = bit_width(np.array([[7]], dtype=np.uint64))
        assert got.shape == (1, 1) and int(got[0, 0]) == 3

    def test_scalar_fast_path_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            bit_width(np.array([-3], dtype=np.int64))

    def test_max_bit_width(self):
        assert max_bit_width(np.array([0, 3, 17], dtype=np.uint64)) == 5
        assert max_bit_width(np.array([], dtype=np.uint64)) == 0
        with pytest.raises(ValueError):
            max_bit_width(np.array([-2]))


class TestBitsRoundtrip:
    @pytest.mark.parametrize("width", [1, 2, 5, 7, 8, 9, 13, 16, 24, 31, 32, 33, 48, 63, 64])
    def test_roundtrip_random(self, rng, width):
        high = (1 << width) - 1
        vals = rng.integers(0, high, size=257, endpoint=True, dtype=np.uint64)
        bits = bits_of(vals, width)
        assert bits.shape == (257 * width,)
        assert np.array_equal(uints_from_bits(bits, width), vals)

    def test_msb_first_layout(self):
        # 0b101 at width 3 -> bits [1, 0, 1]
        assert np.array_equal(bits_of(np.array([0b101], dtype=np.uint64), 3), [1, 0, 1])

    def test_width_zero_all_zero_ok(self):
        assert bits_of(np.array([0, 0], dtype=np.uint64), 0).size == 0

    def test_width_zero_nonzero_rejected(self):
        with pytest.raises(ValueError, match="width 0"):
            bits_of(np.array([1], dtype=np.uint64), 0)

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            bits_of(np.array([8], dtype=np.uint64), 3)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            bits_of(np.array([1], dtype=np.uint64), 65)

    def test_uints_from_bits_length_mismatch(self):
        with pytest.raises(ValueError, match="multiple"):
            uints_from_bits(np.zeros(7, dtype=np.uint8), 3)

    @given(
        width=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, width, data):
        n = data.draw(st.integers(min_value=0, max_value=40))
        vals = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=(1 << width) - 1),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=np.uint64,
        )
        assert np.array_equal(uints_from_bits(bits_of(vals, width), width), vals)


class TestPackUnpack:
    def test_pack_bits_pads_tail(self):
        packed = pack_bits(np.array([1, 0, 1], dtype=np.uint8))
        assert packed.tobytes() == b"\xa0"

    def test_unpack_bits_offset(self):
        buf = np.array([0b10100000, 0b01000000], dtype=np.uint8)
        assert np.array_equal(unpack_bits(buf, 3, bit_offset=0), [1, 0, 1])
        assert np.array_equal(unpack_bits(buf, 2, bit_offset=8), [0, 1])

    def test_unpack_bits_overflow_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            unpack_bits(np.zeros(1, dtype=np.uint8), 9)

    def test_pack_unpack_uints(self, rng):
        vals = rng.integers(0, 2**11, size=100, dtype=np.uint64)
        buf = pack_uints(vals, 11)
        assert np.array_equal(unpack_uints(buf, 100, 11), vals)

    def test_unpack_uints_width_zero(self):
        assert np.array_equal(unpack_uints(b"", 5, 0), np.zeros(5, dtype=np.uint64))

    def test_unpack_bits_accepts_bytes(self):
        assert np.array_equal(unpack_bits(b"\x80", 1), [1])

    def test_unpack_bits_bytes_input_is_writable(self):
        """np.frombuffer views of bytes are read-only; callers scatter into
        the result, so unpack_bits must hand back a writable array."""
        out = unpack_bits(b"\xa0", 3)
        assert out.flags.writeable
        out[0] = 0  # must not raise

    def test_unpack_bits_memoryview_input_is_writable(self):
        out = unpack_bits(memoryview(b"\xa0\x40"), 10)
        assert out.flags.writeable
        out[:] = 0

    def test_unpack_bits_array_input_stays_view_cheap(self):
        buf = np.array([0b10100000], dtype=np.uint8)
        out = unpack_bits(buf, 3)
        assert out.flags.writeable
        assert np.array_equal(out, [1, 0, 1])


class TestIndexHelpers:
    def test_exclusive_cumsum(self):
        assert np.array_equal(exclusive_cumsum(np.array([3, 1, 4])), [0, 3, 4])

    def test_exclusive_cumsum_empty(self):
        assert exclusive_cumsum(np.array([], dtype=np.int64)).size == 0

    def test_ragged_arange_basic(self):
        assert np.array_equal(ragged_arange(np.array([2, 0, 3])), [0, 1, 0, 1, 2])

    def test_ragged_arange_with_starts(self):
        out = ragged_arange(np.array([2, 3]), starts=np.array([10, 100]))
        assert np.array_equal(out, [10, 11, 100, 101, 102])

    def test_ragged_arange_empty(self):
        assert ragged_arange(np.array([], dtype=np.int64)).size == 0

    def test_ragged_arange_all_zero(self):
        assert ragged_arange(np.array([0, 0])).size == 0

    def test_ragged_arange_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ragged_arange(np.array([1, -1]))

    def test_ragged_arange_starts_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            ragged_arange(np.array([1, 2]), starts=np.array([0]))

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_ragged_arange_matches_naive(self, lens):
        lens_arr = np.array(lens, dtype=np.int64)
        expected = np.concatenate(
            [np.arange(n, dtype=np.int64) for n in lens] or [np.zeros(0, np.int64)]
        )
        assert np.array_equal(ragged_arange(lens_arr), expected)
