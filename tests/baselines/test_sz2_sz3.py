"""SZ2-/SZ3-class codec tests: escapes, predictors, ratio relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.baselines import SZ2, SZ3
from repro.baselines.sz2 import zigzag_decode, zigzag_encode


class TestZigzag:
    def test_known_mapping(self):
        v = np.array([0, -1, 1, -2, 2, -2**40], dtype=np.int64)
        z = zigzag_encode(v)
        assert np.array_equal(z[:5], [0, 1, 2, 3, 4])
        assert np.array_equal(zigzag_decode(z), v)

    def test_roundtrip_extremes(self):
        v = np.array([2**62, -(2**62), 0], dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(v)), v)


class TestEscapes:
    def test_large_jumps_use_literals(self, rng, assert_within_bound):
        """Deltas beyond the Huffman capacity fall back to the literal plane."""
        data = np.cumsum(rng.normal(size=5000)).astype(np.float64) * 0.01
        data[::500] += 1e5  # giant spikes -> escape symbols
        for codec in (SZ2(capacity=1024), SZ3(capacity=1024)):
            blob = codec.compress(data, 1e-4)
            assert_within_bound(data, codec.decompress(blob), 1e-4)

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            SZ2(capacity=1000)
        with pytest.raises(ValueError):
            SZ3(capacity=3)


class TestSZ3Predictor:
    @pytest.mark.parametrize("interp", ["linear", "cubic"])
    def test_both_interpolations_roundtrip(self, rng, assert_within_bound, interp):
        data = np.cumsum(rng.normal(size=3001)).astype(np.float32) * 0.05
        codec = SZ3(interpolation=interp)
        blob = codec.compress(data, 1e-3)
        assert_within_bound(data, codec.decompress(blob), 1e-3)

    def test_interpolation_flag_in_stream(self, rng):
        """A linear-mode stream decodes correctly through a cubic-mode codec."""
        data = np.cumsum(rng.normal(size=2000)).astype(np.float32) * 0.05
        blob = SZ3(interpolation="linear").compress(data, 1e-3)
        out = SZ3(interpolation="cubic").decompress(blob)
        assert np.max(np.abs(out - data.astype(np.float64))) <= 1e-3 + 1e-6

    def test_invalid_interpolation_rejected(self):
        with pytest.raises(ValueError):
            SZ3(interpolation="quartic")

    def test_sz3_beats_sz2_on_curved_data(self):
        """Interpolation beats Lorenzo where the signal has curvature:
        order-1 Lorenzo leaves linearly growing residuals on a quadratic,
        while the spline predictor cancels them (Table VII's SZ3 wins)."""
        x = np.linspace(0, 1, 100_000)
        data = (x * x * 500.0).astype(np.float32)
        r2 = SZ2().compress(data, 1e-4).compression_ratio
        r3 = SZ3().compress(data, 1e-4).compression_ratio
        assert r3 > r2


class TestRatioRelations:
    def test_entropy_coding_beats_fixed_length(self, rng):
        """SZ2's Huffman+DEFLATE should beat SZOps on heavy-tailed deltas."""
        n = 60_000
        envelope = np.exp(1.5 * np.sin(np.linspace(0, 6 * np.pi, n)))
        data = (np.cumsum(rng.normal(size=n)) * 0.01 * envelope).astype(np.float32)
        r_sz2 = SZ2().compress(data, 1e-4).compression_ratio
        r_szops = SZOps().compress(data, 1e-4).compression_ratio
        assert r_sz2 > r_szops
