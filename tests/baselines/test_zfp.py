"""ZFP-class codec tests: transform blocks, precision bump, dimensionality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ZFP
from repro.baselines.zfp import _from_blocks, _sequency_order, _to_blocks


class TestBlocking:
    @pytest.mark.parametrize("shape", [(17,), (9, 13), (5, 6, 7), (8, 8, 8)])
    def test_to_from_blocks_roundtrip(self, rng, shape):
        arr = rng.normal(size=shape)
        blocks, pshape = _to_blocks(arr)
        assert blocks.shape[1:] == (4,) * arr.ndim
        out = _from_blocks(blocks, pshape, shape)
        assert np.array_equal(out, arr)

    def test_sequency_order_is_permutation(self):
        for d in (1, 2, 3):
            order = _sequency_order(d)
            assert sorted(order.tolist()) == list(range(4**d))
            # DC coefficient first
            assert order[0] == 0


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [(4096,), (64, 65), (16, 24, 24), (5, 6, 7, 8)])
    def test_bound_per_dimension(self, rng, assert_within_bound, shape):
        arr = (np.cumsum(rng.normal(size=shape), axis=-1) * 0.05).astype(np.float32)
        codec = ZFP()
        blob = codec.compress(arr, 1e-3)
        out = codec.decompress(blob)
        assert out.shape == arr.shape
        assert_within_bound(arr, out, 1e-3)

    def test_precision_bump_hard_case(self, rng, assert_within_bound):
        """Random (worst-case wiggle) data still meets the bound."""
        arr = rng.normal(size=(16, 16, 16)).astype(np.float64)
        blob = ZFP().compress(arr, 1e-5)
        assert_within_bound(arr, ZFP().decompress(blob), 1e-5)

    def test_smooth_data_compresses_well(self):
        x = np.linspace(0, 4 * np.pi, 64)
        arr = (np.sin(x)[:, None] * np.cos(x)[None, :]).astype(np.float32)
        blob = ZFP().compress(arr, 1e-3)
        assert blob.compression_ratio > 3.0

    def test_all_zero(self):
        arr = np.zeros((8, 8, 8), dtype=np.float32)
        blob = ZFP().compress(arr, 1e-3)
        assert np.allclose(ZFP().decompress(blob), 0.0, atol=1e-3)

    def test_too_tight_bound_rejected(self):
        arr = np.linspace(0, 1e6, 4096).astype(np.float64)
        with pytest.raises(ValueError, match="too tight"):
            ZFP().compress(arr, 1e-12)

    def test_chunk_blocks_validation(self):
        with pytest.raises(ValueError):
            ZFP(chunk_blocks=0)

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        eps_exp=st.integers(min_value=-5, max_value=-1),
        d=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_property(self, seed, eps_exp, d):
        rng = np.random.default_rng(seed)
        eps = 10.0 ** eps_exp
        shape = {1: (97,), 2: (13, 14), 3: (6, 7, 9)}[d]
        arr = np.cumsum(rng.normal(size=shape), axis=-1) * 0.1
        blob = ZFP().compress(arr, eps)
        out = ZFP().decompress(blob)
        assert np.max(np.abs(out - arr)) <= eps
