"""SZx-class codec tests: constant blocks and mantissa truncation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SZx


class TestConstantBlocks:
    def test_flat_regions_become_constant(self, rng):
        data = rng.normal(size=4096).astype(np.float32) * 0.1
        data[:2048] = 5.0
        loose = SZx().compress(data, 1e-2)
        tight = SZx().compress(data, 1e-8)
        assert loose.compressed_nbytes < tight.compressed_nbytes

    def test_entirely_constant(self):
        data = np.full(1024, -3.75, dtype=np.float32)
        blob = SZx().compress(data, 1e-3)
        # one float per block plus headers: far below 10% of the original
        assert blob.compressed_nbytes < data.nbytes // 10
        assert np.max(np.abs(SZx().decompress(blob) - data)) <= 1e-3

    def test_half_range_rule(self):
        # block radius exactly at eps must still satisfy the bound
        data = np.zeros(256, dtype=np.float32)
        data[:128] = 0.02
        blob = SZx(block_size=256).compress(data, 1e-2)
        out = SZx().decompress(blob)
        assert np.max(np.abs(out - data)) <= 1e-2 + 1e-9


class TestTruncation:
    @pytest.mark.parametrize("eps", [1e-1, 1e-3, 1e-6])
    def test_bound_across_magnitudes(self, rng, assert_within_bound, eps):
        # values spanning several orders of magnitude exercise per-block k
        data = (rng.normal(size=8192) * np.logspace(-3, 3, 8192)).astype(np.float32)
        blob = SZx().compress(data, eps)
        assert_within_bound(data, SZx().decompress(blob), eps)

    def test_looser_bound_truncates_more(self, rng):
        data = rng.normal(size=8192).astype(np.float32)
        loose = SZx().compress(data, 1e-1).compressed_nbytes
        tight = SZx().compress(data, 1e-6).compressed_nbytes
        assert loose < tight

    def test_float64_precision_mode(self, rng, assert_within_bound):
        data = rng.normal(size=2048) * 1e6
        blob = SZx().compress(data, 1e-4)  # auto -> float64 spec
        assert_within_bound(data, SZx().decompress(blob), 1e-4)

    def test_explicit_precision(self, rng, assert_within_bound):
        data = rng.normal(size=2048).astype(np.float32)
        blob = SZx(precision="float32").compress(data, 1e-3)
        assert_within_bound(data, SZx().decompress(blob), 1e-3)

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            SZx(precision="float16")

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        eps_exp=st.integers(min_value=-6, max_value=-1),
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_property(self, seed, eps_exp):
        rng = np.random.default_rng(seed)
        eps = 10.0 ** eps_exp
        data = (rng.normal(size=400) * rng.choice([1e-3, 1.0, 1e3])).astype(np.float32)
        blob = SZx().compress(data, eps)
        out = SZx().decompress(blob)
        assert np.max(np.abs(out - data.astype(np.float64))) <= eps
