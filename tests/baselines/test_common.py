"""Cross-codec contract tests: every baseline honours the same interface.

Each codec must (a) round-trip within the error bound, (b) produce a real
serialized byte payload, (c) reject invalid inputs, (d) handle 1-/2-/3-D
arrays, ragged sizes, float32 and float64, constant data, and relative
bounds.  Parametrized over all five baselines so a new codec inherits the
whole contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GenericCompressed, baseline_names, make_codec


def field(rng, shape, scale=1.0):
    arr = rng.normal(size=shape)
    arr = np.cumsum(arr, axis=-1) * 0.02 * scale
    return arr.astype(np.float32)


@pytest.fixture(params=baseline_names())
def any_codec(request):
    return make_codec(request.param)


class TestContract:
    @pytest.mark.parametrize("eps", [1e-2, 1e-4])
    def test_bound_1d(self, any_codec, rng, assert_within_bound, eps):
        data = field(rng, 4096)
        blob = any_codec.compress(data, eps)
        assert_within_bound(data, any_codec.decompress(blob), eps)

    def test_bound_3d(self, any_codec, rng, assert_within_bound):
        data = field(rng, (16, 24, 24))
        blob = any_codec.compress(data, 1e-3)
        out = any_codec.decompress(blob)
        assert out.shape == data.shape and out.dtype == data.dtype
        assert_within_bound(data, out, 1e-3)

    def test_bound_2d_float64(self, any_codec, rng, assert_within_bound):
        data = field(rng, (40, 50)).astype(np.float64)
        blob = any_codec.compress(data, 1e-6)
        assert_within_bound(data, any_codec.decompress(blob), 1e-6)

    def test_ragged_size(self, any_codec, rng, assert_within_bound):
        data = field(rng, 1003)
        blob = any_codec.compress(data, 1e-3)
        assert_within_bound(data, any_codec.decompress(blob), 1e-3)

    def test_constant_data(self, any_codec):
        data = np.full(512, 3.25, dtype=np.float32)
        blob = any_codec.compress(data, 1e-3)
        out = any_codec.decompress(blob)
        assert np.max(np.abs(out - 3.25)) <= 1e-3

    def test_relative_bound(self, any_codec, rng):
        data = field(rng, 2048, scale=100.0)
        blob = any_codec.compress(data, 1e-3, mode="rel")
        expected_eps = 1e-3 * float(data.max() - data.min())
        assert blob.eps == pytest.approx(expected_eps)

    def test_payload_is_bytes(self, any_codec, rng):
        blob = any_codec.compress(field(rng, 1024), 1e-3)
        assert isinstance(blob, GenericCompressed)
        assert isinstance(blob.payload, bytes) and len(blob.payload) > 0
        assert blob.compression_ratio > 0

    def test_wrong_codec_blob_rejected(self, any_codec, rng):
        blob = any_codec.compress(field(rng, 256), 1e-3)
        other = [n for n in baseline_names() if n != any_codec.name][0]
        with pytest.raises(ValueError, match="produced by"):
            make_codec(other).decompress(blob)

    def test_integer_input_rejected(self, any_codec):
        with pytest.raises(TypeError):
            any_codec.compress(np.arange(16), 1e-3)

    def test_empty_input_rejected(self, any_codec):
        with pytest.raises(ValueError):
            any_codec.compress(np.zeros(0, dtype=np.float32), 1e-3)

    def test_nonpositive_bound_rejected(self, any_codec, rng):
        with pytest.raises(Exception):
            any_codec.compress(field(rng, 64), 0.0)


class TestRegistry:
    def test_names_in_paper_order(self):
        assert baseline_names() == ["SZp", "SZ2", "SZ3", "SZx", "ZFP"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown codec"):
            make_codec("LZ4")

    def test_kwargs_forwarded(self):
        codec = make_codec("SZp", block_size=128)
        assert codec.block_size == 128
