"""SZp-specific tests: format flags and the ratio relation to SZOps."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.baselines import SZp
from repro.core.errors import FormatError


@pytest.fixture
def data(rng):
    return (np.cumsum(rng.normal(size=20_000)) * 0.02).astype(np.float32)


class TestFormatFlags:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(store_block_lengths=False),
            dict(full_sign_bitmap=False),
            dict(word_align_payload=False),
            dict(
                store_block_lengths=False,
                full_sign_bitmap=False,
                word_align_payload=False,
            ),
        ],
    )
    def test_every_variant_roundtrips(self, data, assert_within_bound, kwargs):
        codec = SZp(**kwargs)
        blob = codec.compress(data, 1e-3)
        assert_within_bound(data, codec.decompress(blob), 1e-3)

    def test_length_plane_inflates_stream(self, data):
        """The per-block byte-length plane strictly inflates the stream
        (Section VI-B3's headline overhead)."""
        full = SZp().compress(data, 1e-4).compressed_nbytes
        reduced = SZp(store_block_lengths=False).compress(data, 1e-4).compressed_nbytes
        assert reduced < full

    def test_sign_bitmap_inflates_with_constant_blocks(self, rng):
        """The full sign bitmap only costs bytes where constant blocks
        exist (constant blocks carry no signs in the SZOps layout)."""
        data = (np.cumsum(rng.normal(size=20_000)) * 0.02).astype(np.float32)
        data[:8000] = 1.0  # constant region -> constant blocks
        full = SZp().compress(data, 1e-4).compressed_nbytes
        reduced = SZp(full_sign_bitmap=False).compress(data, 1e-4).compressed_nbytes
        assert reduced < full

    def test_word_alignment_free_at_block64(self, data):
        """At 64-element blocks every payload is already 32-bit aligned, so
        the word-alignment flag cannot change the size — a structural fact
        worth pinning down (the ablation bench reports it)."""
        a = SZp().compress(data, 1e-4).compressed_nbytes
        b = SZp(word_align_payload=False).compress(data, 1e-4).compressed_nbytes
        assert a == b

    def test_stripped_format_close_to_szops(self, data):
        """All overheads off -> within a few % of the SZOps container size."""
        stripped = SZp(
            store_block_lengths=False,
            full_sign_bitmap=False,
            word_align_payload=False,
        ).compress(data, 1e-4)
        szops = SZOps().compress(data, 1e-4)
        assert stripped.compressed_nbytes == pytest.approx(
            szops.compressed_nbytes, rel=0.05
        )

    def test_szops_ratio_beats_szp(self, data):
        """The headline Table VII relation on a representative field."""
        szp_ratio = SZp().compress(data, 1e-4).compression_ratio
        szops_ratio = SZOps().compress(data, 1e-4).compression_ratio
        assert szops_ratio > szp_ratio


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            SZp(block_size=12)

    def test_outlier_overflow_detected(self):
        # values so large relative to eps that quantized firsts exceed int32
        data = np.full(128, 1e9, dtype=np.float64)
        with pytest.raises(FormatError, match="int32"):
            SZp().compress(data, 1e-5)

    def test_matches_szops_reconstruction(self, data):
        """Same pipeline math: SZp and SZOps decode to identical values."""
        a = SZp().decompress(SZp().compress(data, 1e-3))
        codec = SZOps()
        b = codec.decompress(codec.compress(data, 1e-3))
        assert np.array_equal(a, b)
