"""DEFLATE backend tests."""

from __future__ import annotations

import numpy as np

from repro.encoding import deflate, inflate


def test_roundtrip_bytes():
    data = b"the quick brown fox " * 100
    assert inflate(deflate(data)) == data


def test_roundtrip_random(rng):
    data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
    assert inflate(deflate(data)) == data


def test_compresses_redundant_data():
    data = b"\x00" * 100_000
    assert len(deflate(data)) < 1000


def test_levels_tradeoff():
    data = bytes(range(256)) * 200
    fast = deflate(data, level=1)
    best = deflate(data, level=9)
    assert inflate(fast) == data and inflate(best) == data
    assert len(best) <= len(fast)


def test_empty():
    assert inflate(deflate(b"")) == b""
