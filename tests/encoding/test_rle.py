"""Zero-run-length coding tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import rle_decode_zeros, rle_encode_zeros


class TestRoundtrip:
    def test_mixed_stream(self):
        v = np.array([0, 0, 0, 5, -2, 0, 7, 0, 0])
        tokens, runs = rle_encode_zeros(v)
        assert np.array_equal(tokens, [0, 5, -2, 0, 7, 0])
        assert np.array_equal(runs, [3, 1, 2])
        assert np.array_equal(rle_decode_zeros(tokens, runs), v)

    def test_no_zeros(self):
        v = np.array([1, 2, 3])
        tokens, runs = rle_encode_zeros(v)
        assert runs.size == 0
        assert np.array_equal(rle_decode_zeros(tokens, runs), v)

    def test_all_zeros(self):
        v = np.zeros(100, dtype=np.int64)
        tokens, runs = rle_encode_zeros(v)
        assert tokens.size == 1 and runs[0] == 100
        assert np.array_equal(rle_decode_zeros(tokens, runs), v)

    def test_empty(self):
        tokens, runs = rle_encode_zeros(np.zeros(0, dtype=np.int64))
        assert tokens.size == 0 and runs.size == 0

    def test_shrinks_sparse_streams(self, rng):
        v = rng.integers(-3, 4, size=10_000)
        v[rng.random(10_000) < 0.9] = 0
        tokens, runs = rle_encode_zeros(v)
        assert tokens.size + runs.size < v.size // 2

    @given(st.lists(st.integers(min_value=-5, max_value=5), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        v = np.array(values, dtype=np.int64)
        tokens, runs = rle_encode_zeros(v)
        assert np.array_equal(rle_decode_zeros(tokens, runs), v)


class TestErrors:
    def test_run_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="run"):
            rle_decode_zeros(np.array([0, 1]), np.array([2, 3]))
