"""Canonical Huffman codec tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import (
    MAX_CODE_LENGTH,
    HuffmanCodebook,
    huffman_decode,
    huffman_encode,
)


def roundtrip(symbols: np.ndarray, alphabet: int) -> np.ndarray:
    freqs = np.bincount(symbols, minlength=alphabet)
    book = HuffmanCodebook.from_frequencies(freqs)
    payload, _ = huffman_encode(symbols, book)
    return huffman_decode(payload, symbols.size, book)


class TestRoundtrip:
    def test_geometric_symbols(self, rng):
        syms = np.clip(rng.geometric(0.4, size=20_000) - 1, 0, 31)
        assert np.array_equal(roundtrip(syms, 32), syms)

    def test_uniform_symbols(self, rng):
        syms = rng.integers(0, 200, size=5000)
        assert np.array_equal(roundtrip(syms, 256), syms)

    def test_single_symbol_alphabet(self):
        syms = np.full(100, 7, dtype=np.int64)
        assert np.array_equal(roundtrip(syms, 16), syms)

    def test_two_symbols(self):
        syms = np.array([0, 1, 0, 0, 1] * 10, dtype=np.int64)
        assert np.array_equal(roundtrip(syms, 2), syms)

    def test_empty_stream(self):
        book = HuffmanCodebook.from_frequencies(np.array([1, 1]))
        payload, bits = huffman_encode(np.zeros(0, dtype=np.int64), book)
        assert bits == 0
        assert huffman_decode(payload, 0, book).size == 0

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=500),
        alphabet=st.sampled_from([2, 5, 64, 1024]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, n, alphabet):
        rng = np.random.default_rng(seed)
        syms = np.clip(rng.geometric(0.1, size=n) - 1, 0, alphabet - 1)
        assert np.array_equal(roundtrip(syms, alphabet), syms)


class TestCompressionQuality:
    def test_beats_fixed_length_on_skewed_data(self, rng):
        syms = np.clip(rng.geometric(0.6, size=50_000) - 1, 0, 255)
        freqs = np.bincount(syms, minlength=256)
        book = HuffmanCodebook.from_frequencies(freqs)
        _, bits = huffman_encode(syms, book)
        assert bits / syms.size < 3.0  # vs 8 bits fixed

    def test_code_lengths_bounded(self, rng):
        # Extremely skewed frequencies would need >16-bit codes without
        # length limiting.
        freqs = np.array([2**i for i in range(40, 0, -1)], dtype=np.int64)
        book = HuffmanCodebook.from_frequencies(freqs)
        used = book.lengths[book.lengths > 0]
        assert used.max() <= MAX_CODE_LENGTH


class TestCanonical:
    def test_codebook_rebuilds_from_lengths(self, rng):
        syms = rng.integers(0, 64, size=3000)
        freqs = np.bincount(syms, minlength=64)
        book = HuffmanCodebook.from_frequencies(freqs)
        rebuilt = HuffmanCodebook.from_lengths(
            np.frombuffer(book.serialized_lengths(), dtype=np.uint8)
        )
        assert np.array_equal(rebuilt.codes, book.codes)
        assert np.array_equal(rebuilt.lengths, book.lengths)

    def test_prefix_free(self, rng):
        syms = rng.integers(0, 30, size=1000)
        book = HuffmanCodebook.from_frequencies(np.bincount(syms, minlength=30))
        used = np.flatnonzero(book.lengths > 0)
        codes = [
            format(int(book.codes[s]), f"0{int(book.lengths[s])}b") for s in used
        ]
        for i, a in enumerate(codes):
            for j, b in enumerate(codes):
                if i != j:
                    assert not b.startswith(a)


class TestErrors:
    def test_symbol_without_code_rejected(self):
        book = HuffmanCodebook.from_frequencies(np.array([5, 0, 5]))
        with pytest.raises(ValueError, match="no code"):
            huffman_encode(np.array([1]), book)

    def test_truncated_stream_rejected(self, rng):
        syms = rng.integers(0, 16, size=1000)
        book = HuffmanCodebook.from_frequencies(np.bincount(syms, minlength=16))
        payload, _ = huffman_encode(syms, book)
        with pytest.raises(ValueError):
            huffman_decode(payload[: len(payload) // 4], 1000, book)
