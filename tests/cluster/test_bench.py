"""The cluster bench must report clean identity under concurrent load."""

from __future__ import annotations

from repro.cluster import run_cluster_bench


def test_small_bench_cell_is_clean():
    metrics = run_cluster_bench(
        n_nodes=3,
        replicas=2,
        n_clients=3,
        requests_per_client=8,
        n_arrays=2,
        chunks=4,
        n_elements=6_000,
    )
    assert metrics["errors"] == []
    assert metrics["identity_failures"] == 0
    assert metrics["completed_requests"] == metrics["total_requests"] == 24
    assert metrics["throughput_rps"] > 0
    assert metrics["ok"] is True
    # Replicated writes actually spread over the fleet.
    writes = metrics["router_keyed_counters"]["shard_writes"]
    assert sum(writes.values()) >= 2 * 4 * 2  # chunks x replicas x arrays


def test_single_node_cell_degenerates_cleanly():
    metrics = run_cluster_bench(
        n_nodes=1,
        replicas=2,  # capped to the fleet size
        n_clients=2,
        requests_per_client=5,
        n_arrays=1,
        chunks=3,
        n_elements=4_000,
    )
    assert metrics["ok"] is True
    assert metrics["identity_failures"] == 0
