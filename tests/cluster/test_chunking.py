"""Decode-free container split/merge: byte identity and alignment rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.cluster import (
    chunk_key,
    merge_containers,
    parse_chunk_key,
    split_container,
)
from repro.runtime.lazy import LazyStream


def _compress(n: int, block_size: int = 64, eps: float = 1e-3):
    rng = np.random.default_rng(n)
    data = np.cumsum(rng.normal(scale=5e-3, size=n)).astype(np.float32)
    return data, SZOps(block_size=block_size).compress(data, eps)


class TestChunkKeys:
    def test_roundtrip(self):
        key = chunk_key("hurricane-U", 42)
        assert key == "hurricane-U/#00042"
        assert parse_chunk_key(key) == ("hurricane-U", 42)

    def test_plain_names_do_not_parse(self):
        assert parse_chunk_key("hurricane-U") is None
        assert parse_chunk_key("U/#x1") is None

    def test_rejects_separator_in_name(self):
        with pytest.raises(ValueError):
            chunk_key("a/#b", 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            chunk_key("a", -1)


class TestSplitMerge:
    @pytest.mark.parametrize("n", [64, 63, 1000, 20_000])
    @pytest.mark.parametrize("n_parts", [1, 3, 8])
    def test_merge_restores_exact_bytes(self, n, n_parts):
        _data, c = _compress(n)
        parts = split_container(c, n_parts)
        merged = merge_containers(parts, shape=c.shape)
        assert merged.to_bytes() == c.to_bytes()

    def test_parts_decompress_to_element_slices(self):
        data, c = _compress(20_000)
        parts = split_container(c, 5)
        decoded = np.concatenate([LazyStream(p).decompress() for p in parts])
        reference = LazyStream(c).decompress().reshape(-1)
        np.testing.assert_array_equal(decoded, reference)
        assert np.max(np.abs(decoded - data)) <= 1e-3

    def test_split_rejects_unaligned_block_size(self):
        # The compressor itself refuses such configs; forge one to pin
        # the splitter's own guard for containers built by other tools.
        from dataclasses import replace

        _data, c = _compress(500)
        forged = replace(c, block_size=20)
        with pytest.raises(ValueError, match="block_size"):
            split_container(forged, 3)

    def test_merge_rejects_mixed_eps(self):
        _d, a = _compress(640)
        rng = np.random.default_rng(1)
        b = SZOps(block_size=64).compress(
            rng.normal(size=640).astype(np.float32), 1e-2
        )
        with pytest.raises(ValueError, match="eps"):
            merge_containers([a, b])

    def test_merge_rejects_unaligned_middle_chunk(self):
        _d, c = _compress(1000)
        ragged, aligned = split_container(c, 2)[1], split_container(c, 2)[0]
        with pytest.raises(ValueError, match="block-aligned"):
            merge_containers([ragged, aligned])

    def test_merge_rejects_wrong_shape(self):
        _d, c = _compress(640)
        parts = split_container(c, 2)
        with pytest.raises(ValueError, match="elements"):
            merge_containers(parts, shape=(641,))


class TestQuantizedMoments:
    def test_per_chunk_moments_combine_exactly(self):
        from repro.cluster import combine_moments
        from repro.service.protocol import Moments

        _data, c = _compress(20_000)
        s, s2, lo, hi, n = LazyStream(c).quantized_moments()
        parts = split_container(c, 7)
        partials = []
        for p in parts:
            ps, ps2, plo, phi, pn = LazyStream(p).quantized_moments()
            partials.append(Moments(ps, ps2, plo, phi, pn, p.eps))
        m = combine_moments(partials)
        assert (m.sum_q, m.sumsq_q, m.min_q, m.max_q, m.count) == (
            s, s2, lo, hi, n,
        )
