"""Fault drills against real subprocess nodes (SIGKILL, not cooperative).

The write-safety acceptance criterion lives here: with replication >= 2,
SIGKILLing any single node mid-workload loses zero acknowledged writes
and fails zero in-flight idempotent requests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import SZOps
from repro.cluster import ClusterClient, HeartbeatMonitor, ShardMap
from repro.runtime.lazy import LazyStream

EPS = 1e-3


def _compress(seed: int, n: int = 12_000):
    rng = np.random.default_rng(seed)
    data = np.cumsum(rng.normal(scale=5e-3, size=n)).astype(np.float32)
    return SZOps(block_size=64).compress(data, EPS)


@pytest.fixture
def subprocess_cluster(subprocess_node_factory):
    infos = [subprocess_node_factory(f"node-{i}") for i in range(3)]
    shard_map = ShardMap(tuple(infos), replicas=2, vnodes=32)
    router = ClusterClient(shard_map, timeout_s=10.0)
    router.install_map()
    yield router, infos, subprocess_node_factory.kill
    router.close()


class TestKillDuringWorkload:
    def test_no_acked_write_lost_and_reduces_fail_over(self, subprocess_cluster):
        router, infos, kill = subprocess_cluster
        containers = {f"A{i}": _compress(100 + i) for i in range(3)}
        expectations = {
            name: {
                "mean": float(LazyStream(c).mean()),
                "minimum": float(LazyStream(c).minimum()),
                "maximum": float(LazyStream(c).maximum()),
            }
            for name, c in containers.items()
        }
        acked: list[str] = []
        for name, c in containers.items():
            router.put(name, c, chunks=5)
            acked.append(name)

        with HeartbeatMonitor(
            router, interval_s=0.1, fail_after=3, probe_timeout_s=1.0
        ):
            # SIGKILL one node mid-workload...
            kill(infos[1])
            t_kill = time.monotonic()
            # ...and keep issuing idempotent requests throughout.  Reads
            # fail over to surviving replicas; none may raise.
            deadline = time.monotonic() + 15.0
            detected_at = None
            rounds = 0
            while time.monotonic() < deadline:
                for name, want in expectations.items():
                    for reduction, expected in want.items():
                        assert router.reduce(name, reduction) == expected, (
                            f"{name} {reduction} diverged after kill"
                        )
                rounds += 1
                if detected_at is None and len(router.map.nodes) == 2:
                    detected_at = time.monotonic() - t_kill
                if detected_at is not None and rounds >= 3:
                    break
            assert detected_at is not None, "failure never detected"
            assert detected_at < 10.0, f"failover took {detected_at:.1f}s"

        # Zero acknowledged writes lost: every array still reassembles
        # byte-identically from the survivors.
        for name in acked:
            assert (
                router.get_container(name).to_bytes()
                == containers[name].to_bytes()
            )

    def test_writes_after_failover_succeed(self, subprocess_cluster):
        router, infos, kill = subprocess_cluster
        router.put("before", _compress(7), chunks=4)
        kill(infos[0])
        with HeartbeatMonitor(
            router, interval_s=0.1, fail_after=2, probe_timeout_s=1.0
        ):
            deadline = time.monotonic() + 15.0
            while len(router.map.nodes) == 3 and time.monotonic() < deadline:
                time.sleep(0.05)
        assert len(router.map.nodes) == 2
        # New writes land on the rebalanced map and read back exactly.
        c = _compress(8)
        router.put("after", c, chunks=4)
        assert router.get_container("after").to_bytes() == c.to_bytes()
        assert router.get_container("before").to_bytes() == _compress(7).to_bytes()

    def test_inline_write_failover_without_monitor(self, subprocess_cluster):
        """The write path itself rebalances when an owner dies mid-PUT."""
        router, infos, kill = subprocess_cluster
        kill(infos[2])
        c = _compress(9)
        router.put("U", c, chunks=6)  # hits the dead owner, retries once
        assert len(router.map.nodes) == 2
        assert router.epoch == 2
        assert router.get_container("U").to_bytes() == c.to_bytes()
