"""Heartbeat monitor: failure detection, rebalance, epoch healing."""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterClient, HeartbeatMonitor


def _wait_until(predicate, timeout_s=10.0, step_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step_s)
    return False


class TestDetection:
    def test_dead_node_removed_within_deadline(self, cluster_factory, compressed):
        router, handles = cluster_factory(n_nodes=3, replicas=2)
        router.put("U", compressed, chunks=4)
        with HeartbeatMonitor(
            router, interval_s=0.1, fail_after=3, probe_timeout_s=0.5
        ) as monitor:
            victim = handles[1]
            victim_id = victim.server.node_id
            victim.stop()
            assert _wait_until(
                lambda: all(
                    n.node_id != victim_id for n in router.map.nodes
                )
            ), "monitor never removed the dead node"
            assert router.epoch == 2
            status = monitor.status()
            assert status[victim_id]["alive"] is False
            assert status[victim_id]["in_map"] is False
        # Data survives: every chunk still readable from surviving replicas.
        back = router.get_container("U")
        assert back.to_bytes() == compressed.to_bytes()

    def test_healthy_cluster_stays_at_epoch_one(self, cluster_factory):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        with HeartbeatMonitor(router, interval_s=0.05) as monitor:
            time.sleep(0.5)
            assert router.epoch == 1
            status = monitor.status()
            assert len(status) == 3
            assert all(s["alive"] for s in status.values())
            assert all(s["probes"] >= 1 for s in status.values())

    def test_single_miss_does_not_kill(self, cluster_factory):
        router, handles = cluster_factory(n_nodes=2, replicas=2)
        monitor = HeartbeatMonitor(router, interval_s=0.05, fail_after=50)
        with monitor:
            handles[1].stop()
            time.sleep(0.4)  # several misses, below the threshold
            assert len(router.map.nodes) == 2  # not declared dead yet
            state = monitor.status()[handles[1].server.node_id]
            assert state["consecutive_misses"] >= 1


class TestHealing:
    def test_epoch_behind_node_gets_map_pushed(self, cluster_factory):
        router, handles = cluster_factory(n_nodes=3, replicas=2)
        # Simulate a node that missed the last rebalance push: wind its
        # installed map back to the boot epoch while the router advances.
        handles[2].stop()
        router.remove_node(handles[2].server.node_id)
        assert router.epoch == 2
        behind = handles[0].server
        assert behind.epoch == 2  # got the push from remove_node
        from repro.cluster import ShardMap

        stale_map = ShardMap(
            router.map.nodes, replicas=router.map.replicas, epoch=1
        )
        behind.shard_map = stale_map
        assert behind.epoch == 1
        with HeartbeatMonitor(router, interval_s=0.05):
            assert _wait_until(lambda: behind.epoch == 2), (
                "monitor never re-pushed the current map to the lagging node"
            )

    def test_monitor_never_re_adds_nodes(self, cluster_factory):
        """Recovered nodes stay out of the map until an operator acts."""
        router, handles = cluster_factory(n_nodes=3, replicas=2)
        victim_id = handles[0].server.node_id
        router.remove_node(victim_id)  # node still alive, map says gone
        with HeartbeatMonitor(router, interval_s=0.05):
            time.sleep(0.4)
            assert all(n.node_id != victim_id for n in router.map.nodes)


class TestLastNode:
    def test_last_node_death_does_not_crash_monitor(self, cluster_factory):
        router, handles = cluster_factory(n_nodes=1, replicas=1)
        with HeartbeatMonitor(
            router, interval_s=0.05, fail_after=2, probe_timeout_s=0.3
        ) as monitor:
            handles[0].stop()
            time.sleep(0.6)
            # The monitor kept running (ClusterError swallowed) and the
            # map still holds the unremovable last node.
            assert len(router.map.nodes) == 1
            assert monitor.status()["node-0"]["alive"] is False
