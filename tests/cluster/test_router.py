"""Router behaviour: placement, distributed reductions, epoch fencing.

The headline acceptance test lives here: a distributed REDUCE over a
3-node cluster is **bit-identical** to the single-node reduction for
every bundled dataset (mean/minimum/maximum), and variance is
bit-identical across cluster sizes (placement invariance) and within
float64 rounding of the single-node two-pass value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.cluster import (
    CLUSTER_REDUCTIONS,
    ClusterError,
    combine_moments,
    finish_reduction,
)
from repro.datasets import dataset_names, generate_fields
from repro.runtime.lazy import LazyStream
from repro.service.protocol import Moments

EPS = 1e-3


class TestPlacement:
    def test_put_get_unchunked(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        assert router.put("U", compressed) == 1
        back = router.get_container("U")
        assert back.to_bytes() == compressed.to_bytes()

    def test_put_get_chunked_byte_identical(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        n = router.put("U", compressed, chunks=8)
        assert n == 8
        assert router.manifest("U").n_chunks == 8
        back = router.get_container("U")
        assert back.to_bytes() == compressed.to_bytes()

    def test_put_rejects_chunk_namespace(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=1, replicas=1)
        with pytest.raises(ClusterError, match="chunk-key"):
            router.put("U/#00001", compressed)

    def test_writes_land_on_all_replicas(self, cluster_factory, compressed):
        router, handles = cluster_factory(n_nodes=3, replicas=2)
        router.put("U", compressed, chunks=6)
        writes = router.telemetry.snapshot()["keyed_counters"]["shard_writes"]
        assert sum(writes.values()) == 6 * 2  # every chunk on two owners

    def test_op_chunked_matches_eager(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        router.put("U", compressed, chunks=5)
        result = router.op("U", [("negation", None), ("scalar_add", 0.25)])
        expected = (
            LazyStream(compressed)
            .apply("negation")
            .apply("scalar_add", 0.25)
            .decompress()
        )
        np.testing.assert_array_equal(
            LazyStream(result).decompress().reshape(-1), expected.reshape(-1)
        )

    def test_op_with_result_name_stores_chunked(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        router.put("U", compressed, chunks=5)
        n = router.op("U", [("scalar_multiply", 2.0)], result_name="V")
        assert n == 5
        got = LazyStream(router.get_container("V")).decompress().reshape(-1)
        want = LazyStream(compressed).apply("scalar_multiply", 2.0).decompress()
        np.testing.assert_array_equal(got, want.reshape(-1))


class TestDistributedReduceIdentity:
    @pytest.mark.parametrize("dataset", dataset_names())
    def test_bit_identical_to_single_node_all_datasets(
        self, cluster_factory, dataset
    ):
        """The acceptance criterion, for every bundled dataset."""
        fields = generate_fields(dataset, scale=0.25)
        name, field = next(iter(fields.items()))
        c = SZOps(block_size=64).compress(field.reshape(-1), EPS)
        single = LazyStream(c)
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        router.put(name, c, chunks=6)
        for reduction in ("mean", "minimum", "maximum"):
            got = router.reduce(name, reduction)
            want = float(getattr(single, reduction)())
            assert got == want, f"{dataset}/{name} {reduction}: {got} != {want}"
        assert router.reduce(name, "variance") == pytest.approx(
            float(single.variance()), rel=1e-9
        )

    def test_variance_placement_invariant(self, cluster_factory, compressed):
        """variance/std are bit-identical across cluster sizes."""
        values = {}
        for n_nodes, chunks in ((1, 1), (1, 4), (3, 6), (3, 11)):
            router, _handles = cluster_factory(n_nodes=n_nodes, replicas=1)
            router.put("U", compressed, chunks=chunks)
            values[(n_nodes, chunks)] = (
                router.reduce("U", "variance"),
                router.reduce("U", "std"),
            )
        assert len(set(values.values())) == 1

    def test_reduce_with_chain_prefix(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=3, replicas=2)
        router.put("U", compressed, chunks=6)
        got = router.reduce("U", "mean", chain=[("scalar_add", 0.5)])
        want = float(LazyStream(compressed).apply("scalar_add", 0.5).mean())
        assert got == want

    def test_unknown_reduction_rejected(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=1, replicas=1)
        router.put("U", compressed)
        with pytest.raises(ClusterError, match="unknown reduction"):
            router.reduce("U", "median")
        assert set(CLUSTER_REDUCTIONS) == {
            "mean", "variance", "std", "minimum", "maximum",
        }


class TestMomentAlgebra:
    def test_combine_rejects_mixed_eps(self):
        a = Moments(1.0, 1.0, 0, 1, 2, 1e-3)
        b = Moments(1.0, 1.0, 0, 1, 2, 1e-2)
        with pytest.raises(ClusterError, match="eps"):
            combine_moments([a, b])

    def test_combine_rejects_empty(self):
        with pytest.raises(ClusterError):
            combine_moments([])

    def test_finish_rejects_empty_array(self):
        with pytest.raises(ClusterError, match="empty"):
            finish_reduction("mean", Moments(0.0, 0.0, 0, 0, 0, 1e-3))

    def test_tree_combine_is_order_exact(self):
        rng = np.random.default_rng(3)
        qs = rng.integers(-1000, 1000, size=500)
        partials = [
            Moments(float(q), float(q) ** 2, int(q), int(q), 1, 1e-3) for q in qs
        ]
        m = combine_moments(partials)
        assert m.sum_q == float(qs.sum())
        assert m.sumsq_q == float((qs.astype(np.int64) ** 2).sum())
        assert m.count == 500
        assert m.min_q == int(qs.min()) and m.max_q == int(qs.max())


class TestEpochFencing:
    def test_stale_router_reconciles_and_succeeds(
        self, cluster_factory, compressed
    ):
        """A router holding an old map retries once with the node's map."""
        from repro.cluster import ClusterClient

        router, handles = cluster_factory(n_nodes=3, replicas=2)
        stale = ClusterClient(router.map)  # snapshot of epoch 1
        try:
            router.put("U", compressed, chunks=4)
            # Advance the cluster's epoch behind the stale router's back.
            handles[-1].stop()
            router.remove_node(handles[-1].server.node_id)
            assert router.epoch == 2
            # The stale router hits the fence, adopts the pushed map, and
            # its retry succeeds against the surviving owners.
            value = stale._with_epoch_retry(
                lambda: stale._read_from_owners(
                    "U/#00000",
                    lambda c, e: c.get("U/#00000", epoch=e),
                )
            )
            assert value  # the chunk's bytes came back
            assert stale.epoch == 2
            assert stale.telemetry.counter("epoch_retries") >= 1
        finally:
            stale.close()

    def test_nodes_reject_mismatched_epoch(self, cluster_factory, compressed):
        from repro.service.client import ServiceClient, StaleEpoch

        router, handles = cluster_factory(n_nodes=1, replicas=1)
        router.put("U", compressed)
        with ServiceClient(handles[0].host, handles[0].port) as raw:
            with pytest.raises(StaleEpoch) as excinfo:
                raw.get("U", epoch=999)
            assert excinfo.value.map_json  # carries the node's map
            # Epoch 0 (plain single-node clients) bypasses the fence.
            assert raw.get("U") == compressed.to_bytes()

    def test_remove_last_node_refused(self, cluster_factory, compressed):
        router, _handles = cluster_factory(n_nodes=1, replicas=1)
        with pytest.raises(ClusterError, match="last node"):
            router.remove_node("node-0")
