"""Protocol v2: cluster opcodes, epoch field, and version negotiation.

The negotiation contract, pinned in both directions:

* A request that a v1 server could parse (legacy opcode, epoch 0) MUST
  go out as a version-1 frame, byte-compatible with the pre-cluster
  wire format.
* A reply that a v1 client could parse MUST be stamped version 1; only
  ``MOMENTS`` bodies and ``RETRY`` statuses may claim version 2.
* A live v2 server answers hand-crafted v1 frames instead of closing
  the connection.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import protocol
from repro.service.protocol import (
    LEGACY_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    BodyKind,
    FrameError,
    GetRequest,
    HealthRequest,
    Moments,
    Opcode,
    PingRequest,
    PReduceRequest,
    PutRequest,
    Reply,
    ShardMapRequest,
    Status,
    Step,
)


class TestClusterRequestRoundtrips:
    @pytest.mark.parametrize(
        "req",
        [
            ShardMapRequest(""),
            ShardMapRequest('{"epoch": 3}'),
            PingRequest(),
            PReduceRequest("U"),
            PReduceRequest("U", (Step("negation", None), Step("scalar_add", 0.5)), 2),
        ],
    )
    def test_roundtrip(self, req):
        for epoch in (0, 1, 77):
            back, deadline, back_epoch = protocol.decode_request(
                protocol.encode_request(req, deadline_ms=9, epoch=epoch)
            )
            assert back == req
            assert deadline == 9
            assert back_epoch == epoch

    def test_cluster_opcodes_always_v2(self):
        for req in (ShardMapRequest(), PingRequest(), PReduceRequest("U")):
            payload = protocol.encode_request(req)
            assert payload[0] == PROTOCOL_VERSION

    def test_legacy_opcode_with_epoch_promotes_to_v2(self):
        payload = protocol.encode_request(GetRequest("U"), epoch=5)
        assert payload[0] == PROTOCOL_VERSION
        _req, _dl, epoch = protocol.decode_request(payload)
        assert epoch == 5

    def test_legacy_opcode_without_epoch_stays_v1(self):
        payload = protocol.encode_request(PutRequest("U", b"x"))
        assert payload[0] == LEGACY_PROTOCOL_VERSION
        _req, _dl, epoch = protocol.decode_request(payload)
        assert epoch == 0

    def test_v1_frame_with_cluster_opcode_rejected(self):
        payload = struct.pack("<BBI", 1, int(Opcode.PING), 0)
        with pytest.raises(FrameError, match="version"):
            protocol.decode_request(payload)


class TestMoments:
    def test_roundtrip(self):
        m = Moments(1.5e12, 2.25e15, -4000, 4096, 20_000, 1e-3)
        assert Moments.from_bytes(m.to_bytes()) == m

    def test_moments_reply_roundtrip_is_v2(self):
        m = Moments(10.0, 100.0, -3, 7, 64, 1e-3)
        payload = protocol.encode_reply(
            Reply(status=Status.OK, kind=BodyKind.MOMENTS, moments=m)
        )
        assert payload[0] == PROTOCOL_VERSION
        assert protocol.decode_reply(payload).moments == m

    def test_v1_frame_cannot_carry_moments(self):
        m = Moments(10.0, 100.0, -3, 7, 64, 1e-3)
        payload = bytearray(
            protocol.encode_reply(
                Reply(status=Status.OK, kind=BodyKind.MOMENTS, moments=m)
            )
        )
        payload[0] = LEGACY_PROTOCOL_VERSION
        with pytest.raises(FrameError, match="version"):
            protocol.decode_reply(bytes(payload))


class TestRetryReplies:
    def test_retry_carries_map_and_is_v2(self):
        reply = Reply(
            status=Status.RETRY,
            kind=BodyKind.MESSAGE,
            message="epoch fence: caller at 3, node at 4",
            json_text='{"epoch": 4}',
        )
        payload = protocol.encode_reply(reply)
        assert payload[0] == PROTOCOL_VERSION
        back = protocol.decode_reply(payload)
        assert back.status is Status.RETRY
        assert back.message.startswith("epoch fence")
        assert back.json_text == '{"epoch": 4}'


class TestReplyDowngrade:
    """Replies expressible in v1 MUST be stamped v1 (old clients parse them)."""

    @pytest.mark.parametrize(
        "reply",
        [
            Reply(status=Status.OK, kind=BodyKind.BLOB, version=3, blob=b"abc"),
            Reply(status=Status.OK, kind=BodyKind.STORED, version=3),
            Reply(status=Status.OK, kind=BodyKind.VALUE, value=2.5),
            Reply(status=Status.OK, kind=BodyKind.JSON, json_text="{}"),
            Reply(status=Status.ERROR, kind=BodyKind.MESSAGE, message="nope"),
            Reply(status=Status.BUSY, kind=BodyKind.MESSAGE, message="shed"),
        ],
    )
    def test_v1_expressible_replies_stamped_v1(self, reply):
        payload = protocol.encode_reply(reply)
        assert payload[0] == LEGACY_PROTOCOL_VERSION
        back = protocol.decode_reply(payload)
        assert back.status == reply.status


class TestLiveServerCompat:
    """A v2 server answers hand-crafted v1 frames instead of desyncing."""

    def test_v1_health_frame_answered(self, cluster_factory, plain_client_factory):
        _router, handles = cluster_factory(n_nodes=1, replicas=1)
        info_client = plain_client_factory(
            _node_info_of(handles[0])
        )
        frame = struct.pack("<BBI", 1, int(Opcode.HEALTH), 0)
        info_client.send_raw(protocol.pack_frame(frame))
        reply = info_client.recv_reply()
        assert reply.status is Status.OK
        assert '"node_id"' in reply.json_text

    def test_v1_stats_then_v2_ping_on_same_connection(
        self, cluster_factory, plain_client_factory
    ):
        _router, handles = cluster_factory(n_nodes=1, replicas=1)
        client = plain_client_factory(_node_info_of(handles[0]))
        frame = struct.pack("<BBI", 1, int(Opcode.STATS), 0)
        client.send_raw(protocol.pack_frame(frame))
        assert client.recv_reply().status is Status.OK
        # Same connection keeps working at v2 afterwards: no desync.
        assert client.ping()["epoch"] >= 1


def _node_info_of(handle):
    from repro.cluster import NodeInfo

    return NodeInfo(handle.server.node_id, handle.host, handle.port)


@settings(max_examples=200, deadline=None)
@given(payload=st.binary(min_size=0, max_size=64))
def test_garbage_never_crashes_decoders(payload):
    for decoder in (protocol.decode_request, protocol.decode_reply):
        try:
            decoder(payload)
        except FrameError:
            pass
