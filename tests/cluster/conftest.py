"""Fixtures for the cluster suite: streams, live node fleets, routers.

Two fleet flavours:

* ``cluster_factory`` — in-process nodes (:class:`ThreadedServer` around
  a :class:`ClusterNode`), full TCP path, cheap enough for every test.
* ``subprocess_node_factory`` — real OS processes bootable/killable with
  signals, for the fault-injection drills (SIGKILL survives nothing
  in-process).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import SZOps
from repro.cluster import (
    ClusterClient,
    ClusterNode,
    NodeConfig,
    NodeInfo,
    ShardMap,
)
from repro.core.format import SZOpsCompressed
from repro.service import ServiceClient, ThreadedServer


@pytest.fixture(scope="module")
def rng_module() -> np.random.Generator:
    return np.random.default_rng(20240624)


@pytest.fixture(scope="module")
def compressed(rng_module) -> SZOpsCompressed:
    """One modest compressed array shared by a module's tests."""
    arr = np.cumsum(rng_module.normal(scale=5e-3, size=20_000)).astype(np.float32)
    return SZOps(block_size=64).compress(arr, 1e-3)


@pytest.fixture
def cluster_factory():
    """Boot in-process node fleets; everything stops at test end."""
    handles: list[ThreadedServer] = []
    routers: list[ClusterClient] = []

    def start(
        n_nodes: int = 3, replicas: int = 2, vnodes: int = 32, **overrides
    ) -> tuple[ClusterClient, list[ThreadedServer]]:
        batch: list[ThreadedServer] = []
        for i in range(n_nodes):
            node = ClusterNode(NodeConfig(node_id=f"node-{i}", **overrides))
            handle = ThreadedServer(server=node).start()
            handles.append(handle)
            batch.append(handle)
        shard_map = ShardMap(
            tuple(
                NodeInfo(f"node-{i}", h.host, h.port)
                for i, h in enumerate(batch)
            ),
            replicas=replicas,
            vnodes=vnodes,
        )
        router = ClusterClient(shard_map)
        routers.append(router)
        router.install_map()
        return router, batch

    yield start
    for router in routers:
        router.close()
    for handle in handles:
        handle.stop()


@pytest.fixture
def subprocess_node_factory(tmp_path):
    """Boot cluster nodes as real subprocesses (SIGKILL-able)."""
    procs: list[subprocess.Popen] = []

    def start(node_id: str, timeout_s: float = 20.0) -> NodeInfo:
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster", "node",
                "--host", "127.0.0.1", "--port", "0", "--node-id", node_id,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        procs.append(proc)
        assert proc.stdout is not None
        deadline = time.monotonic() + timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline().strip()
            if line:
                break
        assert line.startswith("listening on "), f"node startup said {line!r}"
        port = int(line.rsplit(":", 1)[1])
        proc.node_info = NodeInfo(node_id, "127.0.0.1", port)  # type: ignore[attr-defined]
        return proc.node_info  # type: ignore[attr-defined]

    def kill(info: NodeInfo) -> None:
        for proc in procs:
            if getattr(proc, "node_info", None) == info and proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)

    start.kill = kill  # type: ignore[attr-defined]
    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


@pytest.fixture
def plain_client_factory():
    """Direct (router-less) ServiceClients, closed at test end."""
    clients: list[ServiceClient] = []

    def connect(info: NodeInfo, **kwargs) -> ServiceClient:
        client = ServiceClient(info.host, info.port, **kwargs)
        clients.append(client)
        return client

    yield connect
    for client in clients:
        try:
            client.close()
        except OSError:
            pass
