"""Shard-map invariants: determinism, replicas, epochs, rebalancing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NodeInfo, ShardMap, hash_point


def _nodes(n: int) -> tuple[NodeInfo, ...]:
    return tuple(NodeInfo(f"node-{i}", "127.0.0.1", 7000 + i) for i in range(n))


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShardMap(())

    def test_rejects_duplicate_ids(self):
        dup = (NodeInfo("a", "h", 1), NodeInfo("a", "h", 2))
        with pytest.raises(ValueError):
            ShardMap(dup)

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ValueError):
            ShardMap(_nodes(2), replicas=0)
        with pytest.raises(ValueError):
            ShardMap(_nodes(2), vnodes=0)

    def test_effective_replicas_capped_by_fleet(self):
        assert ShardMap(_nodes(1), replicas=3).effective_replicas == 1
        assert ShardMap(_nodes(5), replicas=3).effective_replicas == 3


class TestPlacement:
    def test_hash_point_is_deterministic(self):
        assert hash_point("U/#00001") == hash_point("U/#00001")
        assert hash_point("U/#00001") != hash_point("U/#00002")

    def test_owners_deterministic_across_instances(self):
        a = ShardMap(_nodes(5), replicas=3)
        b = ShardMap(_nodes(5), replicas=3)
        for key in ("U", "V/#00007", "hurricane-P"):
            assert [n.node_id for n in a.owners(key)] == [
                n.node_id for n in b.owners(key)
            ]

    def test_owners_are_distinct_and_sized(self):
        m = ShardMap(_nodes(5), replicas=3)
        for key in (f"k{i}" for i in range(50)):
            owners = m.owners(key)
            ids = [n.node_id for n in owners]
            assert len(ids) == 3
            assert len(set(ids)) == 3
            assert m.primary(key) == owners[0]

    def test_distribution_roughly_balanced(self):
        m = ShardMap(_nodes(4), replicas=1, vnodes=128)
        counts: dict[str, int] = {}
        for i in range(2000):
            counts[m.primary(f"key-{i}").node_id] = (
                counts.get(m.primary(f"key-{i}").node_id, 0) + 1
            )
        assert len(counts) == 4
        assert min(counts.values()) > 2000 / 4 / 3  # no starved node


class TestEpochsAndJson:
    def test_json_roundtrip_preserves_placement(self):
        m = ShardMap(_nodes(4), replicas=2, vnodes=16, epoch=7)
        back = ShardMap.from_json(m.to_json())
        assert back == m
        assert back.epoch == 7
        for i in range(30):
            key = f"k{i}"
            assert [n.node_id for n in back.owners(key)] == [
                n.node_id for n in m.owners(key)
            ]

    def test_without_node_bumps_epoch(self):
        m = ShardMap(_nodes(3), replicas=2, epoch=4)
        smaller = m.without_node("node-1")
        assert smaller.epoch == 5
        assert [n.node_id for n in smaller.nodes] == ["node-0", "node-2"]

    def test_with_node_bumps_epoch(self):
        m = ShardMap(_nodes(2), replicas=2, epoch=4)
        bigger = m.with_node(NodeInfo("node-9", "127.0.0.1", 7999))
        assert bigger.epoch == 5
        assert any(n.node_id == "node-9" for n in bigger.nodes)


@settings(max_examples=50, deadline=None)
@given(
    n_nodes=st.integers(min_value=2, max_value=6),
    victim=st.integers(min_value=0, max_value=5),
    keys=st.lists(
        st.text(
            alphabet="abcdefghijklmnop0123456789-", min_size=1, max_size=12
        ),
        min_size=1,
        max_size=30,
        unique=True,
    ),
)
def test_rebalance_keeps_a_surviving_owner(n_nodes, victim, keys):
    """With replicas >= 2, losing one node never orphans a key.

    For every key, the new primary after ``without_node`` must be one of
    the key's *old* owners whenever the old owner set had a survivor —
    this is the ring-successor property that makes read failover find
    replicated data without any migration.
    """
    m = ShardMap(_nodes(n_nodes), replicas=2, vnodes=32)
    victim_id = f"node-{victim % n_nodes}"
    smaller = m.without_node(victim_id)
    for key in keys:
        old_ids = [n.node_id for n in m.owners(key)]
        new_ids = [n.node_id for n in smaller.owners(key)]
        assert victim_id not in new_ids
        survivors = [i for i in old_ids if i != victim_id]
        if survivors:
            assert set(survivors) <= set(new_ids) | {victim_id} or any(
                s in new_ids for s in survivors
            )
            # The data-bearing guarantee: at least one old owner survives
            # into the new owner set, so a replicated key stays readable.
            assert any(s in new_ids for s in survivors)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.text(alphabet="abcdefgh123", min_size=1, max_size=8),
        min_size=5,
        max_size=40,
        unique=True,
    )
)
def test_rebalance_moves_only_victim_keys(keys):
    """Keys not owned by the removed node keep their exact owner list."""
    m = ShardMap(_nodes(5), replicas=2, vnodes=32)
    smaller = m.without_node("node-2")
    for key in keys:
        old_ids = [n.node_id for n in m.owners(key)]
        if "node-2" not in old_ids:
            assert [n.node_id for n in smaller.owners(key)] == old_ids
