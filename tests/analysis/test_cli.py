"""CLI surface of the analysis passes: ``lint`` and ``verify-stream``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_lint_clean_tree_exits_zero(capsys) -> None:
    rc = main(["lint"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: no findings" in out


def test_lint_fixture_exits_nonzero_with_rule_ids(capsys) -> None:
    rc = main(["lint", str(FIXTURES / "rules" / "szl001_pos.py"), "--format=json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["errors"] > 0
    assert {f["rule"] for f in doc["findings"]} == {"SZL001"}
    sample = doc["findings"][0]
    assert {"rule", "path", "line", "severity", "message"} <= sample.keys()


def test_lint_select_filters_rules(capsys) -> None:
    rc = main(
        ["lint", str(FIXTURES / "rules" / "szl001_pos.py"), "--select", "SZL002"]
    )
    assert rc == 0


def test_lint_json_on_clean_tree(capsys) -> None:
    rc = main(["lint", "--format=json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["findings"] == []
    assert doc["errors"] == 0


def test_verify_stream_rejects_each_fixture(capsys) -> None:
    for fixture in sorted(FIXTURES.glob("*.bin")):
        rc = main(
            [
                "verify-stream",
                str(fixture),
                "--n-elements",
                "4096",
                "--format=json",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1, f"{fixture.name} unexpectedly accepted"
        assert doc["errors"] > 0


def test_verify_stream_accepts_fresh_stream(tmp_path, capsys) -> None:
    import numpy as np

    from repro import SZOps

    rng = np.random.default_rng(11)
    data = np.cumsum(rng.standard_normal(4096)).astype(np.float32)
    target = tmp_path / "fresh.szops"
    target.write_bytes(SZOps().compress(data, 1e-3).to_bytes())
    rc = main(["verify-stream", str(target)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean" in out


def test_verify_stream_missing_file_exits_three(capsys) -> None:
    # I/O failures (unreadable path) are rc 3, distinct from rc 2 usage
    # errors so callers can script retries vs. fix-the-invocation.
    rc = main(["verify-stream", "/nonexistent/stream.bin"])
    assert rc == 3


def test_verify_stream_szp_requires_n_elements(tmp_path, capsys) -> None:
    target = tmp_path / "payload.szp"
    target.write_bytes(b"\x00" * 64)
    rc = main(["verify-stream", str(target), "--stream-format", "szp"])
    assert rc == 2


def test_lint_pinpoints_fixture_lines(capsys) -> None:
    path = FIXTURES / "rules" / "szl006_pos.py"
    rc = main(["lint", str(path), "--format=json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    lines = sorted(f["line"] for f in doc["findings"])
    assert lines == [7, 14]


# ------------------------------------------------------------- dataflow CLI

DATAFLOW_FIXTURES = Path(__file__).parent / "dataflow" / "fixtures"


def test_lint_dataflow_clean_tree_exits_zero(capsys) -> None:
    rc = main(["lint", "--dataflow"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: no findings" in out


def test_lint_dataflow_fixture_reports_dataflow_rule(capsys) -> None:
    rc = main(
        [
            "lint",
            "--dataflow",
            str(DATAFLOW_FIXTURES / "szl101_pos.py"),
            "--format=json",
        ]
    )
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert {f["rule"] for f in doc["findings"]} == {"SZL101"}


def test_lint_sarif_output_file(tmp_path, capsys) -> None:
    target = tmp_path / "lint.sarif"
    rc = main(
        [
            "lint",
            "--dataflow",
            str(DATAFLOW_FIXTURES / "shm_pos.py"),
            "--format=sarif",
            "--output",
            str(target),
        ]
    )
    assert rc == 1
    assert str(target) in capsys.readouterr().out
    doc = json.loads(target.read_text())
    assert doc["version"] == "2.1.0"
    assert {r["ruleId"] for r in doc["runs"][0]["results"]} == {"SHM001", "SHM002"}
