"""Regenerate the corrupt-container fixtures in this directory.

Each fixture is a deterministic corruption of a freshly compressed stream,
so the binaries can always be rebuilt from source::

    PYTHONPATH=src python tests/analysis/fixtures/make_fixtures.py

Fixtures (all rejected by ``repro.cli verify-stream``):

================================  ======  =================================
file                              rule    corruption
================================  ======  =================================
truncated_payload.bin             VS001   stream cut mid-payload
bad_magic.bin                     VS002   first five bytes overwritten
width33.bin                       VS005   one width byte raised to 33 on a
                                          float32 stream (cap is 32)
nonmonotonic_offsets.bin          VS007   sign-section size's top bit set,
                                          so the derived offset table moves
                                          backwards as signed int64
trailing_bytes.bin                VS008   four bytes appended past the end
szp_bad_lengths.bin               VS006   SZp length plane disagrees with
                                          the width plane (n_elements 4096)
================================  ======  =================================
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

N_ELEMENTS = 4096
BLOCK_SIZE = 64
EPS = 1e-3

HERE = Path(__file__).resolve().parent


def _base_container():
    from repro import SZOps

    rng = np.random.default_rng(1234)
    data = np.cumsum(rng.standard_normal(N_ELEMENTS)).astype(np.float32)
    # Plant a constant block so width-0 handling is exercised too.
    data[256:320] = data[256]
    return SZOps(block_size=BLOCK_SIZE).compress(data, EPS)


def _szp_payload() -> bytes:
    from repro.baselines.szp import SZp

    rng = np.random.default_rng(1234)
    data = np.cumsum(rng.standard_normal(N_ELEMENTS))
    return SZp(block_size=BLOCK_SIZE).compress(data, EPS).payload


def main() -> None:
    c = _base_container()
    buf = c.to_bytes()

    (HERE / "truncated_payload.bin").write_bytes(buf[: len(buf) - len(buf) // 4])

    bad_magic = bytearray(buf)
    bad_magic[0:5] = b"XXOPS"
    (HERE / "bad_magic.bin").write_bytes(bytes(bad_magic))

    # Raise one *stored* block's width to 33 by editing the container, so
    # the serialized stream is self-consistent apart from the width cap.
    wide = c.copy()
    stored_idx = int(np.flatnonzero(wide.widths > 0)[3])
    wide.widths[stored_idx] = 33
    (HERE / "width33.bin").write_bytes(wide.to_bytes())

    # Overwrite the sign-section size (u64) with a value whose top bit is
    # set: as signed int64 it is negative, so the derived section offsets
    # decrease.  The field sits 8 + n_sign + 8 + n_payload bytes from the
    # stream's end.
    nonmono = bytearray(buf)
    sign_size_at = len(buf) - (8 + c.sign_bytes.size + 8 + c.payload_bytes.size)
    nonmono[sign_size_at : sign_size_at + 8] = struct.pack("<Q", (1 << 63) | 1)
    (HERE / "nonmonotonic_offsets.bin").write_bytes(bytes(nonmono))

    (HERE / "trailing_bytes.bin").write_bytes(buf + b"\x00\x00\x00\x00")

    # SZp: bump one entry of the redundant u16 length plane so it no longer
    # matches what the width plane implies.
    szp = bytearray(_szp_payload())
    n_blocks = N_ELEMENTS // BLOCK_SIZE
    length_plane_at = 4 + 1 + 8 + n_blocks  # block size + flags + eps + widths
    (old,) = struct.unpack_from("<H", szp, length_plane_at + 2 * 7)
    struct.pack_into("<H", szp, length_plane_at + 2 * 7, old + 1)
    (HERE / "szp_bad_lengths.bin").write_bytes(bytes(szp))

    for name in sorted(p.name for p in HERE.glob("*.bin")):
        print(name)


if __name__ == "__main__":
    main()
