"""SZL001 positive: unwidened integer arithmetic on quantized planes."""

import numpy as np


def scaled_sums(blocks):
    # int64 * int64 product of two quantized-domain planes: can wrap.
    return blocks.const_outliers * blocks.const_lens


def shift(out, rho):
    # In-place shift of a quantized plane with no range guard.
    out.outliers += rho
    return out
