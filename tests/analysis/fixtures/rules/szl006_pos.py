"""SZL006 positive: silent exception swallowing in a codec path."""


def read_header(stream):
    try:
        return stream.read_u32()
    except Exception:
        pass


def read_magic(stream):
    try:
        return stream.read_bytes(5)
    except:  # noqa: E722
        return b""
