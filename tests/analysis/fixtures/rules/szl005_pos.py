# szops-lint-scope: ops-module
"""SZL005 positive: op module with no error-propagation declaration."""


def scalar_triple(blocks):
    return blocks
