"""SZL002 negative: narrowing stored values at an I/O boundary passes."""

import numpy as np


def midpoints(bmax, bmin):
    mids64 = 0.5 * (bmax + bmin)
    # Narrowing a *name* (stored intermediate) at the boundary is the
    # sanctioned idiom; the criterion upstream accounts for the cast.
    return mids64.astype(np.float32)


def widen(values):
    return values.astype(np.float64)
