"""SZL006 negative: typed handlers that surface or translate errors."""


class FormatError(ValueError):
    pass


def read_header(stream):
    try:
        return stream.read_u32()
    except ValueError as exc:
        raise FormatError("truncated header") from exc
