"""SZL003 negative: isfinite-guarded comparison passes."""

import numpy as np


def guard(values, factor):
    scaled = np.rint(values * factor)
    if not np.all(np.isfinite(scaled)):
        raise OverflowError("scale produced non-finite values")
    if scaled.max() >= 2.0**62:
        raise OverflowError("scale overflows the quantized range")
    return scaled
