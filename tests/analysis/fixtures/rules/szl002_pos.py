"""SZL002 positive: computed float64 values narrowed to float32."""

import numpy as np


def midpoints(bmax, bmin):
    # Narrowing the computed midpoint drops ulps the error bound may need.
    return (0.5 * (bmax + bmin)).astype(np.float32)


def conditional_narrow(values, single):
    ftype = np.float32 if single else np.float64
    return (values * 2.0).astype(ftype)
