"""SZL001 negative: widened or guarded quantized arithmetic passes."""

import numpy as np


def scaled_sums(blocks):
    # Widening one operand to float64 leaves the overflow-prone lane.
    return blocks.const_outliers.astype(np.float64) * blocks.const_lens


def shift(out, rho, q_limit):
    if int(np.abs(out.outliers).max()) + abs(rho) >= q_limit:
        raise OverflowError("shift would overflow")
    out.outliers += rho  # szops: ignore[SZL001] -- guarded just above
    return out
