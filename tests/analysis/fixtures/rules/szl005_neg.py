# szops-lint-scope: ops-module
"""SZL005 negative: op module declaring its error-propagation class."""

ERROR_PROPAGATION = {"scalar_triple": "scaled"}


def scalar_triple(blocks):
    return blocks
