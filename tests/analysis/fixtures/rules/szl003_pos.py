"""SZL003 positive: NaN-unsafe comparison on a float-domain value."""

import numpy as np


def guard(values, factor):
    scaled = np.rint(values * factor)
    # NaN compares False against every threshold, slipping past the guard.
    if scaled.max() >= 2.0**62:
        raise OverflowError("scale overflows the quantized range")
    return scaled
