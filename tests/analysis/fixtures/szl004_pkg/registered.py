"""Sibling op module that dispatch.py does import."""

ERROR_PROPAGATION = {"registered_op": "exact"}


def registered_op(blocks):
    return blocks
