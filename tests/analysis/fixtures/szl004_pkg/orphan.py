"""Sibling op module that dispatch.py forgets to import (SZL004)."""

ERROR_PROPAGATION = {"orphan_op": "exact"}


def orphan_op(blocks):
    return blocks
