"""Miniature dispatch module: imports one sibling, misses the other."""

from tests.analysis.fixtures.szl004_pkg import registered

OPERATIONS = {"registered_op": registered.registered_op}
