"""szops-lint: one positive and one negative fixture per SZL rule, plus
driver behaviour (suppressions, scope tags, tree-wide cleanliness)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.linter import default_target, scope_tags

FIXTURES = Path(__file__).parent / "fixtures"
RULES_DIR = FIXTURES / "rules"


def _rules_in(path: Path) -> set[str]:
    return {f.rule for f in lint_source(path.read_text(), path)}


@pytest.mark.parametrize("rule", ["SZL001", "SZL002", "SZL003", "SZL005", "SZL006"])
def test_positive_fixture_fires_exactly_its_rule(rule: str) -> None:
    path = RULES_DIR / f"{rule.lower()}_pos.py"
    assert _rules_in(path) == {rule}


@pytest.mark.parametrize("rule", ["SZL001", "SZL002", "SZL003", "SZL005", "SZL006"])
def test_negative_fixture_is_clean(rule: str) -> None:
    path = RULES_DIR / f"{rule.lower()}_neg.py"
    assert _rules_in(path) == set()


def test_szl004_flags_unimported_op_module() -> None:
    findings = lint_paths([FIXTURES / "szl004_pkg"])
    rules = {f.rule for f in findings}
    assert rules == {"SZL004"}
    (finding,) = findings
    assert finding.path.endswith("orphan.py")
    assert "never imported" in finding.message


def test_szl000_on_syntax_error() -> None:
    findings = lint_source("def broken(:\n    pass\n", "bad.py")
    assert [f.rule for f in findings] == ["SZL000"]


def test_suppression_is_line_granular() -> None:
    src = (
        "q = load()\n"
        "q *= 3  # szops: ignore[SZL001]\n"
        "q *= 5\n"
    )
    findings = lint_source(src, "frag.py")
    assert [(f.rule, f.line) for f in findings] == [("SZL001", 3)]


def test_blanket_suppression_without_bracket() -> None:
    src = "q = load()\nq *= 3  # szops: ignore\n"
    assert lint_source(src, "frag.py") == []


def test_suppressing_other_rule_does_not_hide_finding() -> None:
    src = "q = load()\nq *= 3  # szops: ignore[SZL006]\n"
    assert [f.rule for f in lint_source(src, "frag.py")] == ["SZL001"]


def test_select_restricts_rules() -> None:
    path = RULES_DIR / "szl001_pos.py"
    findings = lint_source(path.read_text(), path, select=["SZL002"])
    assert findings == []


def test_scope_marker_overrides_defaults() -> None:
    src = "# szops-lint-scope: ops-module\nx = 1\n"
    assert scope_tags(Path("anything.py"), src) == frozenset({"ops-module"})


def test_loose_file_default_tags_exclude_ops_module() -> None:
    tags = scope_tags(Path("loose.py"), "x = 1\n")
    assert "ops-module" not in tags
    assert {"ops", "codec", "runtime"} <= tags


def test_ops_package_module_gets_ops_module_tag() -> None:
    target = default_target() / "core" / "ops" / "negate.py"
    tags = scope_tags(target, target.read_text())
    assert "ops-module" in tags


def test_installed_tree_is_clean() -> None:
    # The acceptance bar: the shipped package has zero findings.
    assert lint_paths() == []
