"""lockcheck: lock-discipline verification on guarded attributes."""

from __future__ import annotations

import textwrap

from repro.analysis import lockcheck_paths, lockcheck_source

GUARDED_CACHE = textwrap.dedent(
    """
    import threading

    class Cache:
        _GUARDED_ATTRS = ("_entries", "_nbytes")

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}
            self._nbytes = 0

        def put(self, key, value, size):
            with self._lock:
                self._entries[key] = value
                self._nbytes += size

        def clear(self):
            with self._lock:
                self._entries.clear()
                self._nbytes = 0
    """
)


UNGUARDED_CACHE = textwrap.dedent(
    """
    import threading

    class Cache:
        _GUARDED_ATTRS = ("_entries", "_nbytes")

        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}
            self._nbytes = 0

        def put(self, key, value, size):
            self._entries[key] = value
            self._nbytes += size
    """
)


def test_guarded_class_is_clean() -> None:
    assert lockcheck_source(GUARDED_CACHE, "cache.py") == []


def test_unguarded_mutation_is_caught() -> None:
    findings = lockcheck_source(UNGUARDED_CACHE, "cache.py")
    assert findings, "deliberately unguarded mutation must be flagged"
    assert all(f.rule == "LCK001" for f in findings)
    assert any("_entries" in f.message for f in findings)
    assert any("_nbytes" in f.message for f in findings)


def test_init_is_exempt() -> None:
    # __init__ publishes the object before any concurrent access exists,
    # so its unlocked stores to _entries/_nbytes must not be findings.
    findings = lockcheck_source(GUARDED_CACHE, "cache.py")
    assert findings == []


def test_mutating_method_call_is_caught() -> None:
    src = GUARDED_CACHE + textwrap.dedent(
        """
        class Leaky(Cache):
            _GUARDED_ATTRS = ("_entries",)

            def __init__(self):
                super().__init__()

            def drop(self, key):
                self._entries.pop(key, None)
        """
    )
    findings = lockcheck_source(src, "cache.py")
    assert [f.rule for f in findings] == ["LCK001"]
    assert "pop" in findings[0].message or "_entries" in findings[0].message


def test_locked_suffix_method_exempt_but_call_site_checked() -> None:
    src = textwrap.dedent(
        """
        import threading

        class Store:
            _GUARDED_ATTRS = ("_items",)

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def _append_locked(self, item):
                self._items.append(item)

            def add_ok(self, item):
                with self._lock:
                    self._append_locked(item)

            def add_bad(self, item):
                self._append_locked(item)
        """
    )
    findings = lockcheck_source(src, "store.py")
    assert len(findings) == 1
    assert findings[0].rule == "LCK001"
    assert "add_bad" in findings[0].message or "_append_locked" in findings[0].message


def test_empty_guarded_attrs_is_a_finding() -> None:
    src = "class C:\n    _GUARDED_ATTRS = ()\n"
    findings = lockcheck_source(src, "c.py")
    assert [f.rule for f in findings] == ["LCK001"]
    assert "non-empty" in findings[0].message


def test_class_without_declaration_is_skipped() -> None:
    src = "class C:\n    def poke(self):\n        self._entries = {}\n"
    assert lockcheck_source(src, "c.py") == []


def test_shipped_runtime_and_parallel_layers_are_clean() -> None:
    assert lockcheck_paths() == []
