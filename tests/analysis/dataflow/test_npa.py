"""The NPA array-semantics pass: fixtures, suppressions, and e2e gates.

Every rule carries two true-positive scenarios (the pass proves the
violation) and at least two proven-safe negatives (the guarded kernel
idiom analyzes clean, no suppression needed).  The suppression tests pin
the ``# szops: ignore[NPA...]`` syntax and its SZL099 stale accounting
to the same machinery the SZL/LCK/SHM rules use.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.dataflow import npa_findings
from repro.analysis.linter import default_target

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[3]


def _fixture(name: str) -> tuple[str, str]:
    path = FIXTURES / f"{name}.py"
    return str(path), path.read_text()


# ------------------------------------------------------------- per rule

_CASES = [
    ("npa001", "NPA001", "same buffer"),
    ("npa002", "NPA002", ".view("),
    ("npa003", "NPA003", "out of bounds"),
    ("npa004", "NPA004", "not be writable"),
    ("npa005", "NPA005", "np.empty"),
    ("npa006", "NPA006", "wraps"),
]


@pytest.mark.parametrize("stem,rule,phrase", _CASES)
def test_positive_fixture_fires_twice(stem: str, rule: str, phrase: str) -> None:
    path, src = _fixture(f"{stem}_pos")
    findings = npa_findings(path, src)
    assert [f.rule for f in findings] == [rule, rule]
    assert all(phrase in f.message for f in findings)
    # distinct scenarios, not one finding reported twice
    assert len({f.line for f in findings}) == 2


@pytest.mark.parametrize("stem", [stem for stem, _, _ in _CASES])
def test_negative_fixture_is_proven_safe(stem: str) -> None:
    path, src = _fixture(f"{stem}_neg")
    assert npa_findings(path, src) == []


# -------------------------------------------------- suppressions + SZL099


def test_npa_suppression_is_honoured_and_counts_as_used() -> None:
    # The justified ignore[NPA004] swallows the finding and does not go
    # stale on a full dataflow run.
    assert analyze_paths([FIXTURES / "npa_suppress_live.py"], dataflow=True) == []


def test_stale_npa_suppression_is_reported() -> None:
    findings = analyze_paths([FIXTURES / "npa_suppress_stale.py"], dataflow=True)
    assert [f.rule for f in findings] == ["SZL099"]
    assert "NPA003" in findings[0].message


def test_npa_findings_survive_the_driver_unsuppressed() -> None:
    findings = analyze_paths([FIXTURES / "npa001_pos.py"], dataflow=True)
    assert [f.rule for f in findings] == ["NPA001", "NPA001"]


# ------------------------------------------------------------- e2e gates


def test_repro_package_is_npa_clean() -> None:
    """The acceptance gate: zero unsuppressed NPA findings over the tree."""
    npa_rules = [f"NPA00{i}" for i in range(1, 7)]
    findings = analyze_paths([default_target()], select=npa_rules, dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_benchmarks_are_npa_clean() -> None:
    """Mirror of the CI step: NPA-only select over the benchmark harnesses."""
    benchmarks = REPO / "benchmarks"
    if not benchmarks.is_dir():  # pragma: no cover - repo layout guard
        pytest.skip("benchmarks/ not present")
    npa_rules = [f"NPA00{i}" for i in range(1, 7)]
    findings = analyze_paths([benchmarks], select=npa_rules, dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)


# ------------------------------------------- incremental (--changed) mode


def test_changed_mode_restricts_to_the_listed_files() -> None:
    pos = FIXTURES / "npa001_pos.py"
    other = FIXTURES / "npa006_pos.py"
    findings = analyze_paths([pos, other], dataflow=True, changed=[pos])
    assert [f.rule for f in findings] == ["NPA001", "NPA001"]
    assert all(Path(f.path).name == "npa001_pos.py" for f in findings)


def test_changed_mode_equals_full_run_filtered() -> None:
    pos = FIXTURES / "npa002_pos.py"
    neg = FIXTURES / "npa002_neg.py"
    full = [
        f for f in analyze_paths([pos, neg], dataflow=True)
        if Path(f.path).name == "npa002_pos.py"
    ]
    incremental = analyze_paths([pos, neg], dataflow=True, changed=[pos])
    assert [(f.rule, f.line) for f in incremental] == [
        (f.rule, f.line) for f in full
    ]
