"""Negative ASY003 fixture: blocking work is handed off, not run inline.

The blocking callables are *passed* to an executor / ``to_thread``
rather than called on the loop; sync functions may block freely; and
``asyncio.sleep`` suspends instead of blocking.
"""

import asyncio
import time


def _crunch() -> None:
    time.sleep(1.0)


class Worker:
    async def tick(self) -> None:
        await asyncio.sleep(0.5)  # suspends, does not block

    async def offload(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, time.sleep, 0.5)  # handed off

    async def crunch(self) -> None:
        await asyncio.to_thread(_crunch)  # handed off


def batch() -> None:
    time.sleep(1.0)  # sync context: blocking is fine
    _crunch()
