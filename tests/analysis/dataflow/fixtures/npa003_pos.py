"""Positive NPA003 fixtures: proven out-of-bounds index writes."""

import numpy as np


def scatter_past_end() -> np.ndarray:
    out = np.zeros(8, dtype=np.int64)
    idx = np.arange(16)
    out[idx] = 1
    return out


def negative_underrun() -> np.ndarray:
    out = np.zeros(4, dtype=np.int64)
    out[-5] = 1
    return out
