"""Negative TNT002 fixture: dispatch inputs are validated first.

Membership checks (either polarity), enum construction, and an
allow-list gate all clear the taint before the value is used to
dispatch.
"""

import enum

HANDLERS = {1: "put", 2: "get"}
OP_TABLE = {0: "nop", 1: "add"}


class Opcode(enum.IntEnum):
    PUT = 1
    GET = 2


def dispatch(payload: bytes) -> str:
    op = payload[0]
    if op not in HANDLERS:
        raise ValueError("unknown opcode")
    return HANDLERS[op]  # validated by membership


def dispatch_enum(payload: bytes) -> str:
    raw = payload[0]
    op = Opcode(raw)  # enum construction validates or raises
    return OP_TABLE[int(op) - 1]


class Router:
    def __init__(self) -> None:
        self.store = {}
        self._allowed = frozenset({"status", "version"})

    def route(self, payload: bytes) -> object:
        name = payload[1:].decode("utf-8", "ignore")
        if name in self._allowed:
            return getattr(self, name)  # allow-listed
        raise ValueError("unknown route")

    def lookup(self, payload: bytes) -> object:
        key = payload[4:].decode("utf-8", "ignore")
        if key not in self.store:
            raise KeyError("unknown entry")
        return self.store.get(key)
