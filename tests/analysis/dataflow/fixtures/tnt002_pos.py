"""Positive TNT002 fixture: wire-derived values reach dispatch unvalidated.

A raw opcode byte indexes the handler table, a peer-supplied name
reaches ``getattr``, and a peer-supplied key addresses the store — all
without any membership or enum validation.
"""

HANDLERS = {1: "put", 2: "get"}


def dispatch(payload: bytes) -> str:
    op = payload[0]
    return HANDLERS[op]  # unknown opcode looked up, not rejected


class Router:
    def __init__(self) -> None:
        self.store = {}

    def route(self, payload: bytes) -> object:
        name = payload[1:].decode("utf-8", "ignore")
        return getattr(self, name)  # peer selects the attribute

    def lookup(self, payload: bytes) -> object:
        key = payload[4:].decode("utf-8", "ignore")
        return self.store.get(key)  # peer addresses the store
