"""Negative NPA006 fixtures: narrowings whose ranges provably fit."""

import numpy as np


def store_in_range() -> np.ndarray:
    out = np.zeros(4, dtype=np.uint8)
    out[0] = 200
    return out


def small_counts_to_u8() -> np.ndarray:
    counts = np.arange(200)
    return counts.astype(np.uint8)
