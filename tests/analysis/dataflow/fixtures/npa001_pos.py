"""Positive NPA001 fixtures: in-place writes that may alias their source."""

import numpy as np


def shift_in_place(a: np.ndarray) -> np.ndarray:
    # Classic overlapping shift: the RHS is a view of the LHS buffer, so
    # numpy's element visit order decides what gets read.
    a[1:] = a[:-1]
    return a


def roll_into_self() -> np.ndarray:
    buf = np.zeros(16, dtype=np.int64)
    buf[5] = 1
    win = buf[4:]
    buf[:12] = win
    return buf
