"""Negative ASY004 fixture: every task handle is retired.

Awaiting the task, registering a done-callback after transferring
ownership to a live set, passing handles into ``gather``, and returning
the task to the caller all count as retirement.
"""

import asyncio


async def _job() -> None:
    await asyncio.sleep(0)


async def awaited_task() -> None:
    task = asyncio.create_task(_job())
    await task


async def stored_with_callback(active: set) -> None:
    task = asyncio.ensure_future(_job())
    active.add(task)  # ownership escapes to the caller's registry
    task.add_done_callback(active.discard)


async def gathered() -> None:
    first = asyncio.create_task(_job())
    second = asyncio.create_task(_job())
    await asyncio.gather(first, second)


async def handed_back() -> "asyncio.Task":
    task = asyncio.create_task(_job())
    return task  # caller takes ownership
