"""Negative LCK002 fixture: both methods honour the same lock order."""

import threading


class Pipeline:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.stats = 0

    def forward(self) -> None:
        with self._lock:
            with self._aux:
                self.stats += 1

    def reverse(self) -> None:
        with self._lock:
            with self._aux:
                self.stats -= 1
