"""Positive ASY005 fixture: deadline intent without deadline coverage.

Each function shows it *has* a deadline discipline (it uses
``asyncio.wait_for`` somewhere) but still awaits an unbounded operation
outside it — directly (``drain``, ``read``) or transitively through a
local coroutine that drains without a timeout.
"""

import asyncio


class Conn:
    async def _push(self, writer) -> None:
        writer.write(b"x")
        await writer.drain()  # unbounded, but _push has no deadline intent

    async def serve(self, reader, writer) -> None:
        payload = await asyncio.wait_for(reader.readexactly(4), 1.0)
        await self._push(writer)  # transitively unbounded
        await writer.drain()  # directly unbounded


async def fetch(reader) -> bytes:
    header = await asyncio.wait_for(reader.readexactly(4), 1.0)
    return await reader.read(100)  # peer controls how long this waits
