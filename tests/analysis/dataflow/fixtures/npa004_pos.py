"""Positive NPA004 fixtures: writes into read-only buffers."""

import numpy as np


def poke_wire_window(payload: bytes) -> int:
    buf = np.frombuffer(payload, dtype=np.uint8)
    # frombuffer over immutable bytes is read-only: numpy raises here.
    buf[0] = 1
    return int(buf.size)


def stamp_broadcast(x: np.ndarray) -> np.ndarray:
    tiled = np.broadcast_to(x, (4, 4))
    tiled[0] = 1
    return tiled
