"""Negative NPA003 fixtures: index ranges proven within the extent."""

import numpy as np


def scatter_within() -> np.ndarray:
    out = np.zeros(16, dtype=np.int64)
    idx = np.arange(16)
    out[idx] = 1
    return out


def last_element() -> np.ndarray:
    out = np.zeros(4, dtype=np.int64)
    out[-4] = 1
    out[3] = 2
    return out
