"""Positive suppression fixture: a stale NPA suppression comment."""

import numpy as np


def in_bounds() -> np.ndarray:
    out = np.zeros(4, dtype=np.int64)
    out[0] = 1  # szops: ignore[NPA003]
    return out
