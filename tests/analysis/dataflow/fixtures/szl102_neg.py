"""Negative SZL102 fixture: the quantizer's finite + in-range guard."""

import numpy as np

Q_LIMIT = np.int64(1) << 62


def bins(x: np.ndarray, eps: float) -> np.ndarray:
    scaled = np.floor(x.astype(np.float64) / (2.0 * eps))
    if scaled.size and (
        not np.all(np.isfinite(scaled))
        or np.abs(scaled).max() >= float(Q_LIMIT)
    ):
        raise ValueError("data overflows the quantized integer range")
    return scaled.astype(np.int64)
