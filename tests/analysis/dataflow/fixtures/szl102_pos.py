"""Positive SZL102 fixture: float -> int64 cast with no finiteness guard."""

import numpy as np


def bins(x: np.ndarray, eps: float) -> np.ndarray:
    scaled = np.floor(x.astype(np.float64) / (2.0 * eps))
    # For tiny eps the ratio overflows to inf; floor(inf).astype(int64)
    # is undefined garbage.
    return scaled.astype(np.int64)
