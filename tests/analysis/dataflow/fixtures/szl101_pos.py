"""Positive SZL101 fixture: unguarded add on a quantized int64 plane."""

import numpy as np


def shift(q: np.ndarray, k: int) -> np.ndarray:
    # No peak guard: |q| can be up to Q_LIMIT-1 and k is unbounded, so
    # the sum can wrap int64 silently.
    return q + np.int64(k)
