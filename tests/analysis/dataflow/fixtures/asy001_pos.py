"""Positive ASY001 fixture: guarded-attribute RMWs straddling an await.

Both methods read a ``_GUARDED_ATTRS`` attribute, hit an interleaving
point, then write back a value derived from the stale read — another
coroutine may have updated the attribute in between, so the write-back
loses its update.
"""

import asyncio


class Counter:
    _GUARDED_ATTRS = ("_total", "_count")

    def __init__(self) -> None:
        self._total = 0
        self._count = 0

    async def _fetch_delta(self) -> int:
        await asyncio.sleep(0)
        return 1

    async def add(self, delta: int) -> None:
        snapshot = self._total
        extra = await self._fetch_delta()
        self._total = snapshot + delta + extra  # stale write-back

    async def bump(self) -> None:
        base = self._count
        await asyncio.sleep(0)
        self._count = base + 1  # stale write-back

    async def augment(self) -> None:
        self._total += await self._fetch_delta()  # RMW spans the await
