"""Positive NPA006 fixtures: integer narrowing that provably wraps."""

import numpy as np


def store_wide() -> np.ndarray:
    out = np.zeros(4, dtype=np.uint8)
    out[0] = 300
    return out


def counts_to_u16() -> np.ndarray:
    counts = np.arange(100000)
    return counts.astype(np.uint16)
