"""Positive SZL103 fixture: declared propagation contradicts the kernel.

The kernel below is a pure stream rewrite — it never requantizes, never
reaches a quantization primitive, and returns a compressed stream — so
the derivable mode is ``exact``.  The declaration says ``scaled``.
"""

ERROR_PROPAGATION = {"negation": "scaled"}


def negate(c: "SZOpsCompressed") -> "SZOpsCompressed":
    flipped = c.with_flipped_signs()
    return flipped
