"""Positive LCK002 fixture: two locks taken in opposite orders."""

import threading


class Pipeline:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self.stats = 0

    def forward(self) -> None:
        with self._lock:
            with self._aux:
                self.stats += 1

    def reverse(self) -> None:
        with self._aux:
            with self._lock:
                self.stats -= 1
