"""Negative SHM fixture: try/finally and with both release on all paths."""

from multiprocessing import shared_memory


def tidy(data) -> None:
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        validate(data)  # may raise, but the finally releases
    finally:
        shm.unlink()


def scoped(arrays, data) -> None:
    with ShmArena(arrays) as arena:
        validate(data)
        use(arena.view("x"), data)
