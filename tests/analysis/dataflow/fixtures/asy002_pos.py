"""Positive ASY002 fixture: a synchronous lock held across an await.

While the coroutine is parked at the await, the thread's lock stays
held — any other coroutine (or thread) that needs it deadlocks the
event loop.  Both the ``with`` form and an explicit ``acquire()`` are
covered.
"""

import asyncio
import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    async def refresh(self) -> None:
        with self._lock:
            await asyncio.sleep(0.1)  # sync lock held across await

    async def publish(self) -> None:
        self._lock.acquire()
        await asyncio.sleep(0.1)  # explicit acquire, still held
        self._lock.release()
