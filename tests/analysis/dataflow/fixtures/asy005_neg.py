"""Negative ASY005 fixture: deadlines cover every unbounded await.

``serve`` wraps each peer-controlled wait in ``asyncio.wait_for``;
``accept_loop`` has unbounded awaits but no ``wait_for`` anywhere, so it
expresses no deadline intent and is out of scope; ``settle`` passes an
explicit timeout to ``.wait()``.
"""

import asyncio


class Conn:
    async def serve(self, reader, writer) -> None:
        payload = await asyncio.wait_for(reader.readexactly(4), 1.0)
        writer.write(payload)
        await asyncio.wait_for(writer.drain(), 5.0)

    async def accept_loop(self, reader) -> None:
        while True:
            chunk = await reader.read(4096)  # no deadline intent here
            if not chunk:
                return

    async def settle(self, done: "asyncio.Event") -> None:
        await asyncio.wait_for(asyncio.sleep(0), 1.0)
        await done.wait(timeout=2.0)  # bounded by explicit timeout
