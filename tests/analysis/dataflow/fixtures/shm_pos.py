"""Positive SHM fixtures: leak-on-raise (SHM002) and use-after-release
(SHM001) of a shared-memory segment."""

from multiprocessing import shared_memory


def leaky(data) -> None:
    shm = shared_memory.SharedMemory(create=True, size=64)
    validate(data)  # may raise -> the /dev/shm segment leaks
    shm.unlink()


def stale(data) -> int:
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        validate(data)
    finally:
        shm.unlink()
    return shm.buf[0]  # segment already unlinked
