"""Negative suppression fixture: a justified NPA suppression stays live."""

import numpy as np


def poke(payload: bytes) -> int:
    buf = np.frombuffer(payload, dtype=np.uint8)
    buf[0] = 1  # szops: ignore[NPA004] -- fixture: exercising the raise path
    return int(buf.size)
