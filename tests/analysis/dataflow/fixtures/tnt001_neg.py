"""Negative TNT001 fixture: every wire-derived size is bounds-checked.

The same shapes as the positive fixture, but each decoded length passes
an explicit cap (raise polarity) or buffer-length guard before reaching
the allocation, so the taint is cleared on the surviving path.
"""

import struct

MAX_FRAME = 1 << 16


def read_frame(header: bytes) -> bytearray:
    (length,) = struct.unpack("<I", header)
    n = int(length)
    if n > MAX_FRAME:
        raise ValueError("oversized frame")
    return bytearray(n)  # capped


class _Reader:
    def __init__(self, buf: bytes) -> None:
        self._buf = buf
        self._pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._buf):
            raise ValueError("truncated buffer")
        out = self._buf[self._pos : self._pos + n]  # guarded
        self._pos += n
        return out

    def u32(self) -> int:
        return int(struct.unpack("<I", self.take(4))[0])

    def blob(self) -> bytes:
        return self.take(self.u32())


async def read_payload(reader) -> bytes:
    header = await reader.readexactly(4)
    (raw,) = struct.unpack("<I", header)
    n = int(raw)
    if n > MAX_FRAME:
        raise ValueError("oversized payload")
    return await reader.readexactly(n)  # capped
