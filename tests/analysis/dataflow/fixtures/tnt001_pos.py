"""Positive TNT001 fixture: wire-derived sizes reach allocations unchecked.

A length prefix decoded from peer bytes drives ``bytearray``, a slice
bound, and a further ``readexactly`` byte count with no cap on any
path — a hostile peer picks the allocation size.
"""

import struct


def read_frame(header: bytes) -> bytearray:
    (length,) = struct.unpack("<I", header)
    n = int(length)
    return bytearray(n)  # no cap: peer-sized allocation


class _Reader:
    def __init__(self, buf: bytes) -> None:
        self._buf = buf
        self._pos = 0

    def take(self, n: int) -> bytes:
        out = self._buf[self._pos : self._pos + n]  # unguarded slice bound
        self._pos += n
        return out

    def u32(self) -> int:
        return int(struct.unpack("<I", self.take(4))[0])

    def blob(self) -> bytes:
        return self.take(self.u32())


async def read_payload(reader) -> bytes:
    header = await reader.readexactly(4)
    (n,) = struct.unpack("<I", header)
    return await reader.readexactly(int(n))  # peer-sized read
