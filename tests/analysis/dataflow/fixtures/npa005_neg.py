"""Negative NPA005 fixtures: every element written before the first read."""

import numpy as np


def filled_then_read() -> int:
    buf = np.empty(8, dtype=np.int64)
    buf.fill(0)
    return int(buf.sum())


def zeros_then_read() -> float:
    buf = np.zeros(8, dtype=np.float64)
    return float(buf[0])
