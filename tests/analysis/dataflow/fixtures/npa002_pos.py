"""Positive NPA002 fixtures: itemsize-growing views with no byte-count proof."""

import numpy as np


def words_from_wire(payload: bytes) -> np.ndarray:
    buf = np.frombuffer(payload, dtype=np.uint8)
    # Nothing proves len(payload) % 8 == 0: numpy raises at runtime on a
    # ragged tail.
    return buf.view(np.uint64)


def regroup_pairs(n: int) -> np.ndarray:
    buf = np.zeros(3 * n, dtype=np.uint16)
    # 6*n bytes is provably a multiple of 2, not of 8.
    return buf.view(np.uint64)
