"""Positive NPA005 fixtures: np.empty contents read before any write."""

import numpy as np


def sum_uninitialized() -> int:
    buf = np.empty(8, dtype=np.int64)
    return int(buf.sum())


def first_uninitialized() -> float:
    buf = np.empty(8, dtype=np.float64)
    return float(buf[0])
