"""Negative ASY001 fixture: await-point atomicity is preserved.

``add`` holds the asyncio lock across the whole read-modify-write, so no
other coroutine can interleave; ``bump`` re-reads after the await so the
write-back is derived from fresh state; ``Plain`` declares no
``_GUARDED_ATTRS`` contract, so its attributes are not checked.
"""

import asyncio


class Counter:
    _GUARDED_ATTRS = ("_total", "_count")

    def __init__(self) -> None:
        self._total = 0
        self._count = 0
        self._lock = asyncio.Lock()

    async def _fetch_delta(self) -> int:
        await asyncio.sleep(0)
        return 1

    async def add(self, delta: int) -> None:
        async with self._lock:
            snapshot = self._total
            extra = await self._fetch_delta()
            self._total = snapshot + delta + extra  # lock held: atomic

    async def bump(self) -> None:
        await asyncio.sleep(0)
        base = self._count  # fresh read, no await before the write
        self._count = base + 1


class Plain:
    def __init__(self) -> None:
        self._total = 0

    async def add(self) -> None:
        snapshot = self._total
        await asyncio.sleep(0)
        self._total = snapshot + 1  # no _GUARDED_ATTRS contract
