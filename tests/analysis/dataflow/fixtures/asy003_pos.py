"""Positive ASY003 fixture: blocking calls on the event-loop thread.

Each call parks the whole event loop, not just the calling coroutine:
``time.sleep`` directly, ``open``/``read`` doing filesystem I/O, and a
synchronous helper that blocks one level down the call chain.
"""

import time


class Worker:
    async def tick(self) -> None:
        time.sleep(0.5)  # blocks the loop

    async def load(self, path: str) -> bytes:
        with open(path, "rb") as fh:  # filesystem I/O on the loop
            return fh.read()


def _crunch() -> None:
    time.sleep(1.0)


async def pipeline() -> None:
    _crunch()  # blocks transitively via the sync helper
