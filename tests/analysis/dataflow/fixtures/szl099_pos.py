"""Positive SZL099 fixture: suppressions that no longer suppress anything."""

SCALE = 4  # szops: ignore[SZL001]


def double(x: int) -> int:
    return x * 2  # szops: ignore
