"""Positive ASY004 fixture: dropped coroutine and task handles.

A bare coroutine call never runs; a task whose handle is discarded (or
falls out of scope without an await, a done-callback, or an ownership
transfer) can be garbage-collected mid-flight and its exceptions are
silently lost.
"""

import asyncio


async def _job() -> None:
    await asyncio.sleep(0)


async def fire_and_forget() -> None:
    asyncio.ensure_future(_job())  # handle discarded immediately


async def leak_handle() -> None:
    task = asyncio.create_task(_job())  # never awaited or stored
    return None


async def never_awaited() -> None:
    _job()  # bare coroutine: never runs at all
