"""Negative NPA001 fixtures: the materialize-first and fresh-buffer idioms."""

import numpy as np


def shift_copied(a: np.ndarray) -> np.ndarray:
    # The source window is materialized before the write: no overlap.
    a[1:] = a[:-1].copy()
    return a


def shift_into_fresh(a: np.ndarray) -> np.ndarray:
    out = np.zeros(32, dtype=np.int64)
    out[1:] = a[: out.size - 1]
    return out
