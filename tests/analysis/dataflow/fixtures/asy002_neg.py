"""Negative ASY002 fixture: locks and awaits kept apart.

``refresh`` uses an *asyncio* lock, which suspends instead of blocking;
``publish`` releases the sync lock before awaiting; ``snapshot`` holds
the sync lock but never awaits inside it.
"""

import asyncio
import threading


class Cache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._alock = asyncio.Lock()
        self._data = {}

    async def refresh(self) -> None:
        async with self._alock:
            await asyncio.sleep(0.1)  # asyncio lock: suspending, fine

    async def publish(self) -> None:
        self._lock.acquire()
        items = dict(self._data)
        self._lock.release()
        await asyncio.sleep(0.1)  # lock already released

    async def snapshot(self) -> dict:
        with self._lock:
            return dict(self._data)  # no await while held
