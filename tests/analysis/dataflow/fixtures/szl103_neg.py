"""Negative SZL103 fixture: declarations match what the kernels derive."""

ERROR_PROPAGATION = {
    "negate": "exact",
    "scalar_multiply": "scaled",
    "mean": "computation",
}


def negate(c: "SZOpsCompressed") -> "SZOpsCompressed":
    return c.with_flipped_signs()


def scalar_multiply(c: "SZOpsCompressed", s: float) -> "SZOpsCompressed":
    return requantize(c, abs(s) * c.eps)


def mean(c: "SZOpsCompressed") -> float:
    return 2.0 * c.eps * float(c.bin_sum()) / c.n_elements
