"""Negative SZL101 fixture: the shift_outliers peak-guard protocol."""

import numpy as np

Q_LIMIT = np.int64(1) << 62


def shift(q: np.ndarray, k: int) -> np.ndarray:
    peak = int(np.abs(q).max()) + abs(k)
    if peak >= int(Q_LIMIT):
        raise OverflowError("scalar shift overflows the quantized range")
    return q + k
