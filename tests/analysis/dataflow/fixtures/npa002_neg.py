"""Negative NPA002 fixtures: the two divisibility proofs the kernels use."""

import numpy as np


def words_guarded(payload: bytes) -> np.ndarray:
    buf = np.frombuffer(payload, dtype=np.uint8)
    if buf.size % 8:
        raise ValueError("payload is not word-aligned")
    # The size-modulo guard proves the byte count divides by 8.
    return buf.view(np.uint64)


def words_by_construction(n: int) -> np.ndarray:
    # The constant trailing dim carries the proof through the reshape.
    planes = np.zeros((n, 8), dtype=np.uint8)
    return planes.reshape(-1).view(np.uint64)


def bytes_of_words(words: np.ndarray) -> np.ndarray:
    w = np.asarray(words, dtype=np.uint64)
    # Shrinking the itemsize always divides evenly.
    return w.view(np.uint8)
