"""Negative NPA004 fixtures: copy-before-mutate makes the buffer writable."""

import numpy as np


def poke_wire_copy(payload: bytes) -> int:
    buf = np.frombuffer(payload, dtype=np.uint8).copy()
    buf[0] = 1
    return int(buf.size)


def stamp_broadcast_copy(x: np.ndarray) -> np.ndarray:
    tiled = np.broadcast_to(x, (4, 4)).copy()
    tiled[0] = 1
    return tiled
