"""Negative SZL099 fixture: a live suppression and a docstring example.

A docstring mention of the syntax — ``# szops: ignore[SZL001]`` — is not
a suppression comment and must never be reported stale.
"""

import numpy as np


def shift(out, rho: int):
    out.outliers += rho  # szops: ignore[SZL001, SZL101]
    return out
