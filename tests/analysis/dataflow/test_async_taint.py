"""ASY/TNT passes: fixtures, scope gating, suppressions, SARIF, e2e gate.

Every new rule has at least two positive scenarios (the fixture violates
the invariant and the pass proves it) and a negative fixture exercising
the guarded idiom the pass must *prove safe*.  The driver-level tests
cover the ``# szops: ignore[...]`` contract for the new rule ids, the
``wire`` scope gate for the taint pass, SARIF 2.1.0 schema conformance
over the whole fixture corpus, and the service-tree acceptance gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.dataflow import asyncsafety_findings, taint_findings
from repro.analysis.linter import default_target

FIXTURES = Path(__file__).parent / "fixtures"


def _fixture(name: str) -> tuple[str, str]:
    path = FIXTURES / f"{name}.py"
    return str(path), path.read_text()


# ----------------------------------------------------------- ASY fixtures


@pytest.mark.parametrize(
    ("rule", "count"),
    [("ASY001", 3), ("ASY002", 2), ("ASY003", 3), ("ASY004", 3), ("ASY005", 3)],
)
def test_asy_positive_scenarios_fire(rule: str, count: int) -> None:
    path, src = _fixture(f"{rule.lower()}_pos")
    findings = asyncsafety_findings(path, src)
    assert sorted(f.rule for f in findings) == [rule] * count, "\n".join(
        f.render() for f in findings
    )
    assert all(f.hint for f in findings)


@pytest.mark.parametrize(
    "rule", ["ASY001", "ASY002", "ASY003", "ASY004", "ASY005"]
)
def test_asy_guarded_idioms_are_proven_safe(rule: str) -> None:
    path, src = _fixture(f"{rule.lower()}_neg")
    findings = asyncsafety_findings(path, src)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_asy_pass_skips_fully_synchronous_modules() -> None:
    # The fast path: no async functions, no analysis.
    src = "import time\n\ndef slow() -> None:\n    time.sleep(1.0)\n"
    assert asyncsafety_findings("sync.py", src) == []


# ----------------------------------------------------------- TNT fixtures


@pytest.mark.parametrize(("rule", "count"), [("TNT001", 3), ("TNT002", 3)])
def test_tnt_positive_scenarios_fire(rule: str, count: int) -> None:
    path, src = _fixture(f"{rule.lower()}_pos")
    findings = taint_findings(path, src, wire=True)
    assert sorted(f.rule for f in findings) == [rule] * count, "\n".join(
        f.render() for f in findings
    )


@pytest.mark.parametrize("rule", ["TNT001", "TNT002"])
def test_tnt_validated_idioms_are_proven_safe(rule: str) -> None:
    path, src = _fixture(f"{rule.lower()}_neg")
    findings = taint_findings(path, src, wire=True)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_tnt_runs_only_on_wire_scoped_files() -> None:
    path, src = _fixture("tnt001_pos")
    # Loose files default to the wire scope ...
    assert taint_findings(path, src) != []
    # ... but an explicit non-wire scope header opts out.
    opted_out = f"# szops-lint-scope: codec\n{src}"
    assert taint_findings(path, opted_out) == []
    # wire=False overrides regardless of tags.
    assert taint_findings(path, src, wire=False) == []


# ------------------------------------------------- suppressions + SZL099

_SUPPRESSED_SRC = '''\
"""Startup helper: blocking sleep before the loop starts serving."""

import struct
import time


async def warm_up() -> None:
    time.sleep(0.2)  # szops: ignore[ASY003] -- loop not yet serving


async def read_raw(reader) -> bytes:
    header = await reader.readexactly(4)
    (n,) = struct.unpack("<I", header)
    return await reader.readexactly(int(n))  # szops: ignore[TNT001] -- fuzz rig
'''

_STALE_SRC = '''\
"""Nothing here violates the async rules."""

import asyncio


async def tick() -> None:
    await asyncio.sleep(0.5)  # szops: ignore[ASY005]
    await asyncio.sleep(0.1)  # szops: ignore[TNT002]
'''


def test_asy_tnt_suppressions_are_honored(tmp_path: Path) -> None:
    target = tmp_path / "warmup.py"
    target.write_text(_SUPPRESSED_SRC)
    findings = analyze_paths([target], dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_stale_asy_tnt_suppressions_are_reported(tmp_path: Path) -> None:
    target = tmp_path / "clean.py"
    target.write_text(_STALE_SRC)
    findings = analyze_paths([target], dataflow=True)
    assert [f.rule for f in findings] == ["SZL099", "SZL099"]
    assert "ASY005" in findings[0].message
    assert "TNT002" in findings[1].message


def test_no_stale_check_when_asy_rules_did_not_run(tmp_path: Path) -> None:
    # Without --dataflow the ASY/TNT rules never ran, so their idle
    # suppressions cannot be proven stale.
    target = tmp_path / "clean.py"
    target.write_text(_STALE_SRC)
    assert analyze_paths([target], dataflow=False) == []


# ------------------------------------------------------------ SARIF golden

#: Every fixture and the rules expected to fire on it (unsuppressed,
#: dataflow mode).  Negative fixtures are covered by the per-rule tests;
#: here the corpus doubles as the SARIF golden input.
_POSITIVE_CORPUS = {
    "asy001_pos": {"ASY001"},
    "asy002_pos": {"ASY002"},
    "asy003_pos": {"ASY003"},
    "asy004_pos": {"ASY004"},
    "asy005_pos": {"ASY005"},
    "tnt001_pos": {"TNT001"},
    "tnt002_pos": {"TNT002"},
    "szl101_pos": {"SZL101"},
    "szl102_pos": {"SZL102"},
    "szl103_pos": {"SZL103"},
    "lck002_pos": {"LCK002"},
    "shm_pos": {"SHM001", "SHM002"},
    "szl099_pos": {"SZL099"},
    "npa001_pos": {"NPA001"},
    "npa002_pos": {"NPA002"},
    "npa003_pos": {"NPA003"},
    "npa004_pos": {"NPA004"},
    "npa005_pos": {"NPA005"},
    "npa006_pos": {"NPA006"},
}


def test_sarif_over_fixture_corpus_validates_against_2_1_0_schema() -> None:
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(
        (Path(__file__).parent / "sarif_2_1_0_subset.schema.json").read_text()
    )
    findings = []
    for name in sorted(_POSITIVE_CORPUS):
        findings.extend(analyze_paths([FIXTURES / f"{name}.py"], dataflow=True))
    doc = json.loads(render_sarif(findings))
    jsonschema.validate(doc, schema)

    fired = {r["ruleId"] for r in doc["runs"][0]["results"]}
    expected = set().union(*_POSITIVE_CORPUS.values())
    assert fired == expected
    declared = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert fired <= declared
    # every result's location resolves back into the fixture corpus
    for res in doc["runs"][0]["results"]:
        uri = res["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert Path(uri).name in {f"{n}.py" for n in _POSITIVE_CORPUS}


# ------------------------------------------------------------- e2e gates


def test_service_tree_is_async_and_taint_clean() -> None:
    """The acceptance gate: zero unsuppressed findings over the service layer."""
    service_dir = default_target() / "service"
    findings = analyze_paths([service_dir], dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)
