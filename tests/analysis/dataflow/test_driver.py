"""The suppression-aware driver: SZL099, SARIF, and tree-wide cleanliness."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import default_target

FIXTURES = Path(__file__).parent / "fixtures"


# ------------------------------------------------------------------ SZL099


def test_stale_suppressions_are_reported() -> None:
    findings = analyze_paths([FIXTURES / "szl099_pos.py"], dataflow=True)
    assert [f.rule for f in findings] == ["SZL099", "SZL099"]
    listed, blanket = findings
    assert "SZL001" in listed.message
    assert "blanket" in blanket.message


def test_live_suppression_and_docstring_example_are_not_stale() -> None:
    assert analyze_paths([FIXTURES / "szl099_neg.py"], dataflow=True) == []


def test_no_stale_check_on_partial_runs() -> None:
    # With --select the unlisted rules never ran, so an idle comment
    # cannot be proven stale.
    findings = analyze_paths(
        [FIXTURES / "szl099_pos.py"], select=["SZL003"], dataflow=True
    )
    assert findings == []


def test_dataflow_mode_shadows_syntactic_rules() -> None:
    # The peak-guard negative fixture is proven safe by SZL101; the
    # syntactic SZL001 must not resurface its finding in dataflow mode.
    findings = analyze_paths([FIXTURES / "szl101_neg.py"], dataflow=True)
    assert [f for f in findings if f.rule in {"SZL001", "SZL101"}] == []


# ----------------------------------------------------------------- e2e tree


def test_repro_package_is_dataflow_clean() -> None:
    """The acceptance gate: zero unsuppressed findings over the package."""
    findings = analyze_paths([default_target()], dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)


# -------------------------------------------------------------------- SARIF


def test_render_sarif_minimal_document() -> None:
    findings = [
        Finding(
            rule="SZL101",
            path="src/x.py",
            line=12,
            message="overflow",
            hint="guard it",
        ),
        Finding(
            rule="VS001",
            path="stream.bin",
            line=0,
            message="bad magic",
            severity=Severity.WARNING,
            offset=4,
        ),
    ]
    doc = json.loads(render_sarif(findings))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "szops-lint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {"SZL101", "VS001"}
    by_rule = {r["ruleId"]: r for r in run["results"]}
    src_region = by_rule["SZL101"]["locations"][0]["physicalLocation"]["region"]
    assert src_region == {"startLine": 12}
    assert "guard it" in by_rule["SZL101"]["message"]["text"]
    stream_region = by_rule["VS001"]["locations"][0]["physicalLocation"]["region"]
    assert stream_region == {"byteOffset": 4}
    assert by_rule["VS001"]["level"] == "warning"


def test_render_sarif_empty() -> None:
    doc = json.loads(render_sarif([]))
    assert doc["runs"][0]["results"] == []


def test_sarif_rules_carry_help_uris_into_the_docs() -> None:
    findings = [
        Finding(rule=r, path="src/x.py", line=1, message="m")
        for r in ("SZL001", "SZL101", "VS001", "LCK001", "LCK002",
                  "SHM001", "ASY001", "TNT001", "NPA001", "SZL099")
    ]
    doc = json.loads(render_sarif(findings))
    uris = {
        r["id"]: r.get("helpUri", "")
        for r in doc["runs"][0]["tool"]["driver"]["rules"]
    }
    assert all(u.startswith("docs/ANALYSIS.md#") for u in uris.values()), uris
    assert "pass-1" in uris["SZL001"]
    assert "pass-2" in uris["VS001"]
    assert "pass-3" in uris["LCK001"]
    for dataflow_rule in ("SZL099", "SZL101", "LCK002", "SHM001"):
        assert "pass-4" in uris[dataflow_rule]
    assert "pass-5" in uris["ASY001"] and "pass-5" in uris["TNT001"]
    assert "pass-6" in uris["NPA001"]


def test_help_uri_anchors_resolve_to_real_doc_headings() -> None:
    """Recompute GitHub heading slugs from docs/ANALYSIS.md — no drift."""
    from repro.analysis.findings import rule_help_uri

    doc_path = Path(__file__).resolve().parents[3] / "docs" / "ANALYSIS.md"
    if not doc_path.exists():  # pragma: no cover - installed-package runs
        pytest.skip("docs/ not present")

    def slug(heading: str) -> str:
        text = heading.strip().lower().replace("`", "")
        kept = "".join(c for c in text if c.isalnum() or c in " -_")
        return kept.replace(" ", "-")

    slugs = {
        slug(line.lstrip("#"))
        for line in doc_path.read_text().splitlines()
        if line.startswith("#")
    }
    rules = ["SZL001", "SZL099", "SZL101", "VS001", "LCK001", "LCK002",
             "SHM001", "SHM002", "ASY001", "TNT001"]
    rules += [f"NPA00{i}" for i in range(1, 7)]
    for rule in rules:
        uri = rule_help_uri(rule)
        assert uri is not None, rule
        fragment = uri.split("#", 1)[1]
        assert fragment in slugs, (rule, fragment)
    assert rule_help_uri("XXX999") is None
