"""The suppression-aware driver: SZL099, SARIF, and tree-wide cleanliness."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import analyze_paths, render_sarif
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import default_target

FIXTURES = Path(__file__).parent / "fixtures"


# ------------------------------------------------------------------ SZL099


def test_stale_suppressions_are_reported() -> None:
    findings = analyze_paths([FIXTURES / "szl099_pos.py"], dataflow=True)
    assert [f.rule for f in findings] == ["SZL099", "SZL099"]
    listed, blanket = findings
    assert "SZL001" in listed.message
    assert "blanket" in blanket.message


def test_live_suppression_and_docstring_example_are_not_stale() -> None:
    assert analyze_paths([FIXTURES / "szl099_neg.py"], dataflow=True) == []


def test_no_stale_check_on_partial_runs() -> None:
    # With --select the unlisted rules never ran, so an idle comment
    # cannot be proven stale.
    findings = analyze_paths(
        [FIXTURES / "szl099_pos.py"], select=["SZL003"], dataflow=True
    )
    assert findings == []


def test_dataflow_mode_shadows_syntactic_rules() -> None:
    # The peak-guard negative fixture is proven safe by SZL101; the
    # syntactic SZL001 must not resurface its finding in dataflow mode.
    findings = analyze_paths([FIXTURES / "szl101_neg.py"], dataflow=True)
    assert [f for f in findings if f.rule in {"SZL001", "SZL101"}] == []


# ----------------------------------------------------------------- e2e tree


def test_repro_package_is_dataflow_clean() -> None:
    """The acceptance gate: zero unsuppressed findings over the package."""
    findings = analyze_paths([default_target()], dataflow=True)
    assert findings == [], "\n".join(f.render() for f in findings)


# -------------------------------------------------------------------- SARIF


def test_render_sarif_minimal_document() -> None:
    findings = [
        Finding(
            rule="SZL101",
            path="src/x.py",
            line=12,
            message="overflow",
            hint="guard it",
        ),
        Finding(
            rule="VS001",
            path="stream.bin",
            line=0,
            message="bad magic",
            severity=Severity.WARNING,
            offset=4,
        ),
    ]
    doc = json.loads(render_sarif(findings))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "szops-lint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {"SZL101", "VS001"}
    by_rule = {r["ruleId"]: r for r in run["results"]}
    src_region = by_rule["SZL101"]["locations"][0]["physicalLocation"]["region"]
    assert src_region == {"startLine": 12}
    assert "guard it" in by_rule["SZL101"]["message"]["text"]
    stream_region = by_rule["VS001"]["locations"][0]["physicalLocation"]["region"]
    assert stream_region == {"byteOffset": 4}
    assert by_rule["VS001"]["level"] == "warning"


def test_render_sarif_empty() -> None:
    doc = json.loads(render_sarif([]))
    assert doc["runs"][0]["results"] == []
