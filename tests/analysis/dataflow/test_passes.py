"""Per-pass positive/negative fixtures for the dataflow analyses.

Every pass must demonstrate at least one true positive (the fixture
violates the invariant and the pass proves it) and one clean negative
(the guarded idiom the pass is expected to *prove safe*, not merely not
flag).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.dataflow import (
    check_error_propagation,
    lockorder_findings,
    range_findings,
    shm_findings,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _fixture(name: str) -> tuple[str, str]:
    path = FIXTURES / f"{name}.py"
    return str(path), path.read_text()


# ------------------------------------------------------------------ ranges


def test_szl101_unguarded_quantized_add_fires() -> None:
    path, src = _fixture("szl101_pos")
    assert [f.rule for f in range_findings(path, src)] == ["SZL101"]


def test_szl101_peak_guard_protocol_is_proven_safe() -> None:
    path, src = _fixture("szl101_neg")
    assert range_findings(path, src) == []


def test_szl102_unguarded_cast_fires() -> None:
    path, src = _fixture("szl102_pos")
    findings = range_findings(path, src)
    assert [f.rule for f in findings] == ["SZL102"]
    assert "finite" in findings[0].message


def test_szl102_finite_and_range_guard_is_proven_safe() -> None:
    path, src = _fixture("szl102_neg")
    assert range_findings(path, src) == []


# --------------------------------------------------------------- errorprop


def test_szl103_wrong_declaration_fires() -> None:
    path, src = _fixture("szl103_pos")
    findings = check_error_propagation(path, src)
    assert [f.rule for f in findings] == ["SZL103"]
    assert "'scaled'" in findings[0].message
    assert "'exact'" in findings[0].message


def test_szl103_matching_declarations_are_clean() -> None:
    path, src = _fixture("szl103_neg")
    assert check_error_propagation(path, src) == []


# --------------------------------------------------------------- lockorder


def test_lck002_lock_order_inversion_fires() -> None:
    path, src = _fixture("lck002_pos")
    findings = lockorder_findings({path: src})
    assert [f.rule for f in findings] == ["LCK002"]
    assert "cycle" in findings[0].message


def test_lck002_consistent_order_is_clean() -> None:
    path, src = _fixture("lck002_neg")
    assert lockorder_findings({path: src}) == []


# ----------------------------------------------------------------- shmlife


def test_shm_leak_on_raise_and_use_after_release_fire() -> None:
    path, src = _fixture("shm_pos")
    rules = sorted(f.rule for f in shm_findings(path, src))
    assert rules == ["SHM001", "SHM002"]


def test_shm_try_finally_and_with_are_clean() -> None:
    path, src = _fixture("shm_neg")
    assert shm_findings(path, src) == []


# ----------------------------------------------------- real-tree assertions


@pytest.mark.parametrize(
    "module",
    [
        "core/ops/negate.py",
        "core/ops/scalar_add.py",
        "core/ops/scalar_mul.py",
        "core/ops/reductions.py",
        "core/ops/multivariate.py",
    ],
)
def test_every_registered_declaration_verifies(module: str) -> None:
    """SZL103 rederives and confirms each real ERROR_PROPAGATION entry."""
    import repro

    path = Path(repro.__file__).resolve().parent / module
    src = path.read_text()
    assert "ERROR_PROPAGATION" in src
    assert check_error_propagation(str(path), src) == []
