"""Property-based lattice laws for the dataflow value domains.

The engine's soundness argument leans on three algebraic facts that unit
tests only sample: ``join`` is a commutative/associative/idempotent
least-upper-bound, the interval transfer functions are monotone with
respect to the induced order ``x ⊑ y  iff  x.join(y) == y``, and the
loop widening operator reaches a fixpoint in a bounded number of steps.
This suite states them as Hypothesis properties over all three lattices
(:class:`Interval`, :class:`ArrayInfo`, :class:`Value`).

One representation wrinkle: the ``finite`` flag of a ``Value`` whose
interval is ⊥ is vacuous (the empty set of concrete values is finite),
and ``Value.join`` normalizes it to ``True``.  Laws on ``Value`` are
therefore stated modulo :func:`canon`, which applies the same
normalization — ``join``'s output is always canonical, so only raw
strategy inputs need it.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.dataflow.lattice import (
    INIT_MAYBE,
    INIT_NO,
    INIT_YES,
    KIND_BOOL,
    KIND_FLOAT,
    KIND_I64,
    KIND_OBJ,
    KIND_PYINT,
    ArrayInfo,
    Interval,
    Value,
)

# ----------------------------------------------------------- strategies

_bounds = st.one_of(st.none(), st.integers(-8, 8))


def _mk_interval(lo: int | None, hi: int | None, empty: bool) -> Interval:
    if empty:
        return Interval.bottom()
    if lo is not None and hi is not None and lo > hi:
        lo, hi = hi, lo
    return Interval(lo, hi)


intervals = st.builds(
    _mk_interval, _bounds, _bounds, st.sampled_from([False, False, False, True])
)

_LAYOUTS = [(None, None), ("uint8", 1), ("uint16", 2), ("uint64", 8)]


@st.composite
def array_infos(draw: st.DrawFn) -> ArrayInfo:
    dtype, itemsize = draw(st.sampled_from(_LAYOUTS))
    return ArrayInfo(
        base=draw(st.sampled_from([None, "f:1:0", "g:2:4", "seed:q"])),
        view=draw(st.booleans()),
        provenance=draw(st.sampled_from([None, "empty", "frombuffer"])),
        dtype=dtype,
        itemsize=itemsize,
        count_multiple=draw(st.sampled_from([1, 2, 3, 4, 8])),
        nelems=draw(intervals),
        writable=draw(st.booleans()),
        init=draw(st.sampled_from([INIT_YES, INIT_NO, INIT_MAYBE])),
    )


@st.composite
def values(draw: st.DrawFn) -> Value:
    return Value(
        kind=draw(
            st.sampled_from([KIND_PYINT, KIND_I64, KIND_FLOAT, KIND_BOOL, KIND_OBJ])
        ),
        itv=draw(intervals),
        quantized=draw(st.booleans()),
        finite=draw(st.booleans()),
        origin=draw(st.sampled_from([None, ("size", "buf"), ("absmax", "q")])),
        ctor=draw(st.sampled_from([None, "Lock"])),
        tainted=draw(st.booleans()),
        arr=draw(st.one_of(st.none(), array_infos())),
    )


def canon(v: Value) -> Value:
    """Normalize the vacuous finiteness of ⊥-interval values."""
    if v.itv.empty and not v.finite:
        return replace(v, finite=True)
    return v


def ile(a: Interval, b: Interval) -> bool:
    return a.join(b) == b


def vle(a: Value, b: Value) -> bool:
    return a.join(b) == canon(b)


# ------------------------------------------------------- Interval: join


@given(intervals, intervals)
def test_interval_join_commutes(x: Interval, y: Interval) -> None:
    assert x.join(y) == y.join(x)


@given(intervals, intervals, intervals)
def test_interval_join_associates(x: Interval, y: Interval, z: Interval) -> None:
    assert x.join(y).join(z) == x.join(y.join(z))


@given(intervals)
def test_interval_join_idempotent_with_bottom_identity(x: Interval) -> None:
    assert x.join(x) == x
    assert x.join(Interval.bottom()) == x
    assert Interval.bottom().join(x) == x


@given(intervals, intervals)
def test_interval_join_is_an_upper_bound(x: Interval, y: Interval) -> None:
    assert ile(x, x.join(y))
    assert ile(y, x.join(y))


@given(intervals, intervals, intervals)
def test_interval_meet_laws(x: Interval, y: Interval, z: Interval) -> None:
    assert x.meet(y) == y.meet(x)
    assert x.meet(x) == x
    assert x.meet(y).meet(z) == x.meet(y.meet(z))
    # greatest lower bound: the meet sits below both operands
    assert ile(x.meet(y), x)
    assert ile(x.meet(y), y)


# -------------------------------------- Interval: transfer monotonicity

_UNARY = [
    ("neg", lambda v: v.neg()),
    ("abs", lambda v: v.abs()),
    ("expand1", lambda v: v.expand(1)),
]
_BINARY = [
    ("add", lambda v, z: v.add(z)),
    ("sub", lambda v, z: v.sub(z)),
    ("mul", lambda v, z: v.mul(z)),
    ("join", lambda v, z: v.join(z)),
    ("meet", lambda v, z: v.meet(z)),
]


@given(intervals, intervals, intervals)
def test_interval_transfer_functions_are_monotone(
    x: Interval, w: Interval, z: Interval
) -> None:
    y = x.join(w)  # x ⊑ y by construction
    for name, fn in _UNARY:
        assert ile(fn(x), fn(y)), name
    for name, fn2 in _BINARY:
        assert ile(fn2(x, z), fn2(y, z)), name
        assert ile(fn2(z, x), fn2(z, y)), name


# ------------------------------------------------- Interval: widening


@given(intervals, intervals)
def test_widening_is_an_upper_bound(x: Interval, y: Interval) -> None:
    assert ile(x.join(y), x.widen(y))


@given(st.lists(intervals, min_size=1, max_size=12))
def test_widening_terminates_within_three_changes(chain: list[Interval]) -> None:
    # Each endpoint can only jump to ∞ once and ⊥ can only fill once, so
    # any widening sequence stabilizes after at most 3 strict changes —
    # the engine's 4-iteration loop fixpoint bound relies on exactly this.
    acc = chain[0]
    changes = 0
    for step in chain[1:] + chain:  # revisit: must already be stable
        widened = acc.widen(step)
        if widened != acc:
            changes += 1
            acc = widened
    assert changes <= 3
    assert acc.widen(acc) == acc


# ---------------------------------------------------------- ArrayInfo


@given(array_infos(), array_infos())
def test_arrayinfo_join_commutes(x: ArrayInfo, y: ArrayInfo) -> None:
    assert x.join(y) == y.join(x)


@given(array_infos(), array_infos(), array_infos())
def test_arrayinfo_join_associates(x: ArrayInfo, y: ArrayInfo, z: ArrayInfo) -> None:
    assert x.join(y).join(z) == x.join(y.join(z))


@given(array_infos())
def test_arrayinfo_join_idempotent(x: ArrayInfo) -> None:
    assert x.join(x) == x


@given(array_infos(), array_infos())
def test_arrayinfo_transfers_are_monotone(x: ArrayInfo, w: ArrayInfo) -> None:
    y = x.join(w)
    # x ⊑ y, and the two ArrayInfo transfer functions preserve it
    assert x.as_view().join(y.as_view()) == y.as_view()
    assert x.initialized().join(y.initialized()) == y.initialized()


@given(st.lists(array_infos(), min_size=1, max_size=8))
def test_arrayinfo_join_chain_stabilizes(pool: list[ArrayInfo]) -> None:
    # every component lattice is finite-height, so the running join is a
    # least upper bound of the whole pool once each element is absorbed
    acc = pool[0]
    for x in pool[1:]:
        acc = acc.join(x)
    for x in pool:
        assert acc.join(x) == acc


# --------------------------------------------------------------- Value


@given(values(), values())
def test_value_join_commutes(x: Value, y: Value) -> None:
    assert x.join(y) == y.join(x)


@given(values(), values(), values())
def test_value_join_associates(x: Value, y: Value, z: Value) -> None:
    assert x.join(y).join(z) == x.join(y.join(z))


@given(values())
def test_value_join_idempotent_modulo_vacuous_finiteness(x: Value) -> None:
    assert x.join(x) == canon(x)
    assert canon(x).join(canon(x)) == canon(x)


@given(values(), values())
def test_value_join_is_an_upper_bound(x: Value, y: Value) -> None:
    assert vle(x, x.join(y))
    assert vle(y, x.join(y))


@given(values(), values(), values())
def test_value_join_is_monotone(x: Value, w: Value, z: Value) -> None:
    y = x.join(w)
    assert vle(x.join(z), y.join(z))


@given(st.lists(values(), min_size=1, max_size=8))
def test_value_join_chain_stabilizes(pool: list[Value]) -> None:
    # seed with the canonical form: join outputs are canonical, so the
    # accumulator lives in the quotient domain from the first step
    acc = canon(pool[0])
    for x in pool[1:]:
        acc = acc.join(x)
    for x in pool:
        assert acc.join(x) == acc
