"""verify-stream: clean passes for real codec output, rejections for the
corrupt-container fixtures, and the library assertion."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro import SZOps
from repro.analysis import (
    assert_stream_ok,
    verify_file,
    verify_szops_bytes,
    verify_szp_payload,
)
from repro.analysis.findings import Severity
from repro.baselines.szp import SZp
from repro.core.errors import FormatError

FIXTURES = Path(__file__).parent / "fixtures"
N_FIXTURE_ELEMENTS = 4096  # geometry baked into make_fixtures.py


def _errors(findings) -> set[str]:
    return {f.rule for f in findings if f.severity is Severity.ERROR}


@pytest.fixture(scope="module")
def signal() -> np.ndarray:
    rng = np.random.default_rng(7)
    return np.cumsum(rng.standard_normal(20_000))


# --------------------------------------------------------------- clean passes


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_szops_stream_verifies_clean(signal: np.ndarray, dtype) -> None:
    buf = SZOps().compress(signal.astype(dtype), 1e-3).to_bytes()
    assert _errors(verify_szops_bytes(buf)) == set()
    assert_stream_ok(buf)  # must not raise


def test_faithful_szp_payload_verifies_clean(signal: np.ndarray) -> None:
    payload = SZp().compress(signal, 1e-3).payload
    assert _errors(verify_szp_payload(payload, signal.size)) == set()
    assert_stream_ok(payload, fmt="szp", n_elements=signal.size)


def test_ablated_szp_payload_verifies_clean(signal: np.ndarray) -> None:
    codec = SZp(
        store_block_lengths=False,
        full_sign_bitmap=False,
        word_align_payload=False,
    )
    payload = codec.compress(signal, 1e-3).payload
    assert _errors(verify_szp_payload(payload, signal.size)) == set()


# ----------------------------------------------------------------- rejections


@pytest.mark.parametrize(
    ("fixture", "rule"),
    [
        ("truncated_payload.bin", "VS001"),
        ("width33.bin", "VS005"),
        ("nonmonotonic_offsets.bin", "VS007"),
        ("trailing_bytes.bin", "VS008"),
    ],
)
def test_corrupt_szops_fixture_rejected(fixture: str, rule: str) -> None:
    findings = verify_file(FIXTURES / fixture)
    assert rule in _errors(findings)


def test_bad_magic_rejected_as_szops() -> None:
    # verify_file sniffs non-SZOPS magic as SZp; pin the format to get the
    # magic-specific verdict.
    data = (FIXTURES / "bad_magic.bin").read_bytes()
    assert _errors(verify_szops_bytes(data)) == {"VS002"}
    # Sniffing still rejects it — the garbage header is no valid SZp either.
    sniffed = verify_file(FIXTURES / "bad_magic.bin", n_elements=N_FIXTURE_ELEMENTS)
    assert _errors(sniffed)


def test_szp_length_plane_mismatch_rejected() -> None:
    findings = verify_file(
        FIXTURES / "szp_bad_lengths.bin", fmt="szp", n_elements=N_FIXTURE_ELEMENTS
    )
    assert "VS006" in _errors(findings)


def test_every_binary_fixture_is_rejected() -> None:
    for fixture in sorted(FIXTURES.glob("*.bin")):
        findings = verify_file(fixture, n_elements=N_FIXTURE_ELEMENTS)
        assert _errors(findings), f"{fixture.name} unexpectedly verified clean"


# ---------------------------------------------------------- library assertion


def test_assert_stream_ok_raises_formaterror() -> None:
    data = (FIXTURES / "truncated_payload.bin").read_bytes()
    with pytest.raises(FormatError, match="VS001"):
        assert_stream_ok(data)


def test_assert_stream_ok_requires_n_elements_for_szp() -> None:
    with pytest.raises(ValueError, match="n_elements"):
        assert_stream_ok(b"\x00" * 32, fmt="szp")


def test_verify_file_unknown_format() -> None:
    with pytest.raises(ValueError, match="unknown stream format"):
        verify_file(FIXTURES / "trailing_bytes.bin", fmt="zip")
