"""Fixed-length encoding (BF stage) tests, including the byte fast path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encode import (
    block_widths,
    decode_block_sections,
    decode_magnitudes,
    decode_signs,
    decode_stored_deltas,
    encode_block_sections,
    encode_magnitudes,
    encode_signs,
    payload_bit_counts,
)


def random_blocks(seed, n_blocks, max_len=64, max_width=14, byte_aligned=True):
    """Generate (mags, widths, lens) with per-block respected widths."""
    rng = np.random.default_rng(seed)
    if byte_aligned:
        lens = rng.choice([8, 16, 64], size=n_blocks).astype(np.int64)
    else:
        lens = rng.integers(1, max_len, size=n_blocks).astype(np.int64)
    widths = rng.integers(0, max_width, size=n_blocks).astype(np.uint8)
    mags_parts = []
    for w, l in zip(widths, lens):
        if w == 0:
            mags_parts.append(np.zeros(l, dtype=np.uint64))
        else:
            part = rng.integers(0, 1 << int(w), size=l, dtype=np.uint64)
            part[rng.integers(0, l)] = (1 << int(w)) - 1  # force the width
            mags_parts.append(part)
    mags = np.concatenate(mags_parts) if mags_parts else np.zeros(0, dtype=np.uint64)
    return mags, widths, lens


class TestBlockWidths:
    def test_paper_example(self):
        # deltas {0,0,2,0} -> max magnitude 2 -> width 2.
        widths = block_widths(np.array([0, 0, 2, 0], dtype=np.uint64), np.array([4]))
        assert widths[0] == 2

    def test_constant_block_width_zero(self):
        widths = block_widths(np.zeros(8, dtype=np.uint64), np.array([8]))
        assert widths[0] == 0

    def test_multiple_blocks(self):
        mags = np.array([0, 1, 7, 0, 0, 0], dtype=np.uint64)
        widths = block_widths(mags, np.array([3, 3]))
        assert np.array_equal(widths, [3, 0])

    def test_empty(self):
        assert block_widths(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)).size == 0

    def test_payload_bit_counts_alignment(self):
        bits = payload_bit_counts(np.array([3]), np.array([10]), align_bits=32)
        assert bits[0] == 32  # 30 bits padded to one word


class TestMagnitudesRoundtrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_byte_aligned_roundtrip(self, seed):
        mags, widths, lens = random_blocks(seed, 30)
        payload, total = encode_magnitudes(mags, widths, lens)
        assert payload.size == (total + 7) // 8
        out = decode_magnitudes(payload, widths, lens)
        assert np.array_equal(out, mags)

    @pytest.mark.parametrize("seed", range(5))
    def test_bit_fallback_roundtrip(self, seed):
        # ragged lengths force the bit-granular path
        mags, widths, lens = random_blocks(seed, 20, byte_aligned=False)
        payload, total = encode_magnitudes(mags, widths, lens)
        out = decode_magnitudes(payload, widths, lens)
        assert np.array_equal(out, mags)

    @pytest.mark.parametrize("align", [8, 32])
    def test_aligned_roundtrip(self, align):
        mags, widths, lens = random_blocks(11, 25, byte_aligned=False)
        payload, total = encode_magnitudes(mags, widths, lens, align_bits=align)
        assert total % align == 0 or lens.size == 0
        out = decode_magnitudes(payload, widths, lens, align_bits=align)
        assert np.array_equal(out, mags)

    def test_alignment_increases_size(self):
        mags, widths, lens = random_blocks(3, 40)
        tight, tight_bits = encode_magnitudes(mags, widths, lens)
        padded, padded_bits = encode_magnitudes(mags, widths, lens, align_bits=32)
        assert padded_bits >= tight_bits

    def test_all_constant(self):
        lens = np.full(4, 8, dtype=np.int64)
        widths = np.zeros(4, dtype=np.uint8)
        payload, total = encode_magnitudes(np.zeros(32, dtype=np.uint64), widths, lens)
        assert total == 0 and payload.size == 0
        out = decode_magnitudes(payload, widths, lens)
        assert np.array_equal(out, np.zeros(32, dtype=np.uint64))

    def test_ragged_final_block(self):
        # full blocks then a short tail -> byte path with ragged final row
        lens = np.array([8, 8, 3], dtype=np.int64)
        widths = np.array([3, 5, 7], dtype=np.uint8)
        rng = np.random.default_rng(0)
        mags = np.concatenate(
            [rng.integers(0, 1 << int(w), size=l, dtype=np.uint64) for w, l in zip(widths, lens)]
        )
        payload, total = encode_magnitudes(mags, widths, lens)
        assert np.array_equal(decode_magnitudes(payload, widths, lens), mags)

    def test_truncated_payload_rejected(self):
        mags, widths, lens = random_blocks(4, 10)
        payload, _ = encode_magnitudes(mags, widths, lens)
        with pytest.raises(ValueError, match="shorter"):
            decode_magnitudes(payload[:-2], widths, lens)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed):
        mags, widths, lens = random_blocks(seed, int(seed % 17) + 1, byte_aligned=(seed % 2 == 0))
        payload, _ = encode_magnitudes(mags, widths, lens)
        assert np.array_equal(decode_magnitudes(payload, widths, lens), mags)

    @pytest.mark.parametrize("kernel", ["bitarray", "wordpack", "auto"])
    @pytest.mark.parametrize("byte_aligned", [True, False])
    def test_uint32_magnitudes_identical_payload(self, kernel, byte_aligned):
        # The compressor stores magnitudes as uint32 whenever every block
        # width fits 32 bits; the payload must not depend on that dtype.
        mags, widths, lens = random_blocks(7, 30, byte_aligned=byte_aligned)
        ref, ref_bits = encode_magnitudes(mags, widths, lens, kernel=kernel)
        got, got_bits = encode_magnitudes(mags.astype(np.uint32), widths, lens, kernel=kernel)
        assert got_bits == ref_bits
        assert got.tobytes() == ref.tobytes()
        assert np.array_equal(decode_magnitudes(got, widths, lens, kernel=kernel), mags)


class TestSections:
    def test_sign_roundtrip(self, rng):
        signs = (rng.random(100) < 0.5).astype(np.uint8)
        assert np.array_equal(decode_signs(encode_signs(signs), 100), signs)

    def test_sections_roundtrip_with_constant_blocks(self, rng):
        lens = np.full(6, 16, dtype=np.int64)
        deltas = rng.integers(-40, 40, size=96).astype(np.int64)
        deltas[0:16] = 0      # constant block
        deltas[64:80] = 0     # constant block
        starts = np.arange(0, 96, 16)
        deltas[starts] = 0
        mags = np.abs(deltas).astype(np.uint64)
        signs = (deltas < 0).view(np.uint8)
        widths = block_widths(mags, lens)
        assert widths[0] == 0 and widths[4] == 0
        sign_bytes, payload_bytes = encode_block_sections(mags, signs, widths, lens)
        # constant blocks contribute no sign bits: 4 stored blocks * 16 bits
        assert sign_bytes.size == 4 * 16 // 8
        out = decode_block_sections(sign_bytes, payload_bytes, widths, lens)
        assert np.array_equal(out, deltas)

    def test_decode_stored_deltas_compacted(self, rng):
        lens = np.full(4, 8, dtype=np.int64)
        deltas = rng.integers(-5, 6, size=32).astype(np.int64)
        deltas[np.arange(0, 32, 8)] = 0
        deltas[8:16] = 0
        mags = np.abs(deltas).astype(np.uint64)
        signs = (deltas < 0).view(np.uint8)
        widths = block_widths(mags, lens)
        sign_bytes, payload_bytes = encode_block_sections(mags, signs, widths, lens)
        stored = widths > 0
        out = decode_stored_deltas(sign_bytes, payload_bytes, widths[stored], lens[stored])
        expected = deltas[np.repeat(stored, lens)]
        assert np.array_equal(out, expected)

    def test_all_constant_sections(self):
        lens = np.full(3, 8, dtype=np.int64)
        widths = np.zeros(3, dtype=np.uint8)
        sign_bytes, payload_bytes = encode_block_sections(
            np.zeros(24, dtype=np.uint64), np.zeros(24, dtype=np.uint8), widths, lens
        )
        assert sign_bytes.size == 0 and payload_bytes.size == 0
        out = decode_block_sections(sign_bytes, payload_bytes, widths, lens)
        assert np.array_equal(out, np.zeros(24, dtype=np.int64))
