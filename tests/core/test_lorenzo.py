"""Blockwise Lorenzo decorrelation tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockLayout
from repro.core.lorenzo import lorenzo_forward, lorenzo_inverse


class TestForward:
    def test_paper_example(self):
        # Section IV: q = {-1,-1,-3,-3} -> deltas {0,0,-2,0}, outlier -1.
        layout = BlockLayout(4, 8)
        deltas, outliers = lorenzo_forward(np.array([-1, -1, -3, -3]), layout)
        assert np.array_equal(deltas, [0, 0, -2, 0])
        assert np.array_equal(outliers, [-1])

    def test_block_starts_are_zero(self, rng):
        q = rng.integers(-1000, 1000, size=100).astype(np.int64)
        layout = BlockLayout(100, 16)
        deltas, outliers = lorenzo_forward(q, layout)
        assert np.all(deltas[layout.starts()] == 0)
        assert np.array_equal(outliers, q[layout.starts()])

    def test_shape_mismatch_rejected(self):
        layout = BlockLayout(10, 8)
        with pytest.raises(ValueError):
            lorenzo_forward(np.zeros(4, dtype=np.int64), layout)


class TestRoundtrip:
    @given(
        n=st.integers(min_value=1, max_value=500),
        block=st.sampled_from([8, 16, 64, 256]),
    )
    @settings(max_examples=60, deadline=None)
    def test_inverse_recovers(self, n, block):
        rng = np.random.default_rng(n * 7 + block)
        q = rng.integers(-(2**30), 2**30, size=n).astype(np.int64)
        layout = BlockLayout(n, block)
        deltas, outliers = lorenzo_forward(q, layout)
        assert np.array_equal(lorenzo_inverse(deltas, outliers, layout), q)

    def test_inverse_validates_shapes(self):
        layout = BlockLayout(10, 8)
        with pytest.raises(ValueError):
            lorenzo_inverse(np.zeros(4, dtype=np.int64), np.zeros(2, dtype=np.int64), layout)
        with pytest.raises(ValueError):
            lorenzo_inverse(np.zeros(10, dtype=np.int64), np.zeros(1, dtype=np.int64), layout)
