"""Block layout and segment-reduction tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockLayout, segment_max, segment_sum


class TestLayout:
    def test_exact_tiling(self):
        layout = BlockLayout(128, 64)
        assert layout.n_blocks == 2
        assert layout.n_full_blocks == 2
        assert layout.tail_length == 0
        assert np.array_equal(layout.lengths(), [64, 64])
        assert np.array_equal(layout.starts(), [0, 64])

    def test_ragged_tail(self):
        layout = BlockLayout(130, 64)
        assert layout.n_blocks == 3
        assert layout.tail_length == 2
        assert np.array_equal(layout.lengths(), [64, 64, 2])

    def test_single_short_block(self):
        layout = BlockLayout(5, 64)
        assert layout.n_blocks == 1
        assert np.array_equal(layout.lengths(), [5])

    def test_block_ids(self):
        layout = BlockLayout(10, 4)
        assert np.array_equal(layout.block_ids(), [0, 0, 0, 0, 1, 1, 1, 1, 2, 2])


class TestSegmentReductions:
    @given(
        n=st.integers(min_value=1, max_value=300),
        block=st.sampled_from([8, 16, 64]),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive(self, n, block):
        rng = np.random.default_rng(n * 1000 + block)
        values = rng.integers(-100, 100, size=n).astype(np.int64)
        layout = BlockLayout(n, block)
        lens = layout.lengths()
        starts = layout.starts()
        expected_max = [values[s : s + l].max() for s, l in zip(starts, lens)]
        expected_sum = [values[s : s + l].sum() for s, l in zip(starts, lens)]
        assert np.array_equal(segment_max(values, layout), expected_max)
        assert np.allclose(segment_sum(values, layout), expected_sum)

    def test_shape_mismatch_rejected(self):
        layout = BlockLayout(10, 8)
        with pytest.raises(ValueError):
            segment_max(np.zeros(5), layout)
        with pytest.raises(ValueError):
            segment_sum(np.zeros(5), layout)
