"""Container serialization (Figure 3 stream layout) tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.core.errors import FormatError
from repro.core.format import MAGIC, SZOpsCompressed


@pytest.fixture
def container(codec, smooth_3d):
    return codec.compress(smooth_3d, 1e-4)


class TestSerialization:
    def test_roundtrip_identical(self, codec, container):
        buf = container.to_bytes()
        parsed = SZOpsCompressed.from_bytes(buf)
        assert parsed.shape == container.shape
        assert parsed.dtype == container.dtype
        assert parsed.eps == container.eps
        assert parsed.block_size == container.block_size
        assert np.array_equal(parsed.widths, container.widths)
        assert np.array_equal(parsed.outliers, container.outliers)
        assert np.array_equal(codec.decompress(parsed), codec.decompress(container))

    def test_roundtrip_is_stable(self, container):
        buf = container.to_bytes()
        assert SZOpsCompressed.from_bytes(buf).to_bytes() == buf

    def test_magic_checked(self, container):
        buf = bytearray(container.to_bytes())
        buf[:5] = b"WRONG"
        with pytest.raises(FormatError, match="magic"):
            SZOpsCompressed.from_bytes(bytes(buf))

    def test_version_checked(self, container):
        buf = bytearray(container.to_bytes())
        buf[len(MAGIC)] = 99
        with pytest.raises(FormatError, match="version"):
            SZOpsCompressed.from_bytes(bytes(buf))

    def test_truncation_detected(self, container):
        buf = container.to_bytes()
        with pytest.raises(Exception):
            SZOpsCompressed.from_bytes(buf[: len(buf) // 2])

    def test_outlier_narrowing(self, codec, rng):
        # small quantized values -> int16 plane; huge -> wider
        small = codec.compress(rng.normal(scale=1e-3, size=1000).astype(np.float32), 1e-3)
        big = codec.compress((rng.normal(size=1000) * 1e6).astype(np.float64), 1e-3)
        assert small.compressed_nbytes < big.compressed_nbytes
        for c in (small, big):
            parsed = SZOpsCompressed.from_bytes(c.to_bytes())
            assert np.array_equal(parsed.outliers, c.outliers)


class TestStructure:
    def test_validate_passes_on_fresh_container(self, container):
        container.validate_structure()

    def test_validate_rejects_wrong_width_count(self, container):
        broken = container.copy()
        broken.widths = broken.widths[:-1]
        with pytest.raises(FormatError):
            broken.validate_structure()

    def test_validate_rejects_short_payload(self, container):
        broken = container.copy()
        broken.payload_bytes = broken.payload_bytes[: broken.payload_bytes.size // 2]
        with pytest.raises(FormatError, match="payload"):
            broken.validate_structure()

    def test_validate_rejects_short_signs(self, container):
        broken = container.copy()
        broken.sign_bytes = broken.sign_bytes[:1]
        with pytest.raises(FormatError, match="sign"):
            broken.validate_structure()

    def test_copy_is_deep(self, container):
        dup = container.copy()
        dup.outliers += 1
        assert not np.array_equal(dup.outliers, container.outliers)

    def test_geometry_properties(self, codec, smooth_3d):
        c = codec.compress(smooth_3d, 1e-4)
        assert c.n_elements == smooth_3d.size
        assert c.n_blocks == (smooth_3d.size + c.block_size - 1) // c.block_size
        assert c.stored_lengths().sum() + (
            c.layout.lengths()[c.constant_mask].sum()
        ) == smooth_3d.size
