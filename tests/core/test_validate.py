"""Validation-utility tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import SZOps
from repro.core.errors import ErrorBoundViolation
from repro.core.validate import check_error_bound, check_roundtrip, max_abs_error, psnr


class TestCheckErrorBound:
    def test_passes_within_bound(self, rng):
        a = rng.normal(size=100)
        b = a + 1e-5
        assert check_error_bound(a, b, 1e-4) == pytest.approx(1e-5)

    def test_raises_outside_bound(self, rng):
        a = rng.normal(size=100)
        b = a.copy()
        b[3] += 1.0
        with pytest.raises(ErrorBoundViolation, match="violated"):
            check_error_bound(a, b, 1e-4)

    def test_slack_admits_cast_error(self, rng):
        a = rng.normal(size=10)
        b = a + 2e-4
        check_error_bound(a, b, 1e-4, slack=2e-4)


class TestCheckRoundtrip:
    def test_szops_roundtrip(self, smooth_1d):
        c, recon = check_roundtrip(SZOps(), smooth_1d, 1e-3)
        assert recon.shape == smooth_1d.shape
        assert c.eps == 1e-3

    def test_relative_mode(self, smooth_1d):
        c, _ = check_roundtrip(SZOps(), smooth_1d, 1e-3, mode="rel")
        assert c.eps != 1e-3  # resolved against the value range


class TestMetrics:
    def test_psnr_boundaries(self):
        a = np.zeros(10)
        assert math.isinf(psnr(a, a))
        assert psnr(a, a + 1.0) == float("-inf")  # zero range, nonzero error

    def test_max_abs_error_empty(self):
        assert max_abs_error(np.zeros(0), np.zeros(0)) == 0.0
