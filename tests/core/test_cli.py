"""Command-line interface tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.format import SZOpsCompressed


@pytest.fixture
def raw_file(tmp_path, rng):
    data = (np.cumsum(rng.normal(size=6000)) * 0.01).astype("<f4").reshape(20, 300)
    path = tmp_path / "field.f32"
    data.tofile(path)
    return path, data


@pytest.fixture
def stream_file(tmp_path, raw_file):
    path, data = raw_file
    out = tmp_path / "field.szops"
    rc = main(["compress", str(path), str(out), "--shape", "20,300", "--eps", "1e-3"])
    assert rc == 0
    return out, data


class TestCompressDecompress:
    def test_roundtrip(self, tmp_path, stream_file):
        stream, data = stream_file
        out = tmp_path / "back.f32"
        assert main(["decompress", str(stream), str(out)]) == 0
        back = np.fromfile(out, dtype="<f4").reshape(20, 300)
        assert np.max(np.abs(back.astype(np.float64) - data.astype(np.float64))) <= 1e-3 + 1e-7

    def test_wrong_shape_rejected(self, raw_file, tmp_path, capsys):
        path, _ = raw_file
        rc = main(
            ["compress", str(path), str(tmp_path / "x.szops"), "--shape", "7,7", "--eps", "1e-3"]
        )
        assert rc == 2
        assert "needs" in capsys.readouterr().err

    def test_relative_bound(self, raw_file, tmp_path):
        path, data = raw_file
        out = tmp_path / "rel.szops"
        assert main(
            ["compress", str(path), str(out), "--shape", "20,300", "--eps", "1e-3", "--rel"]
        ) == 0
        c = SZOpsCompressed.from_bytes(out.read_bytes())
        assert c.eps == pytest.approx(1e-3 * float(data.max() - data.min()))

    def test_float64_input(self, tmp_path, rng):
        data = rng.normal(size=100).astype("<f8")
        src = tmp_path / "d.f64"
        data.tofile(src)
        out = tmp_path / "d.szops"
        assert main(
            ["compress", str(src), str(out), "--shape", "100", "--eps", "1e-6", "--dtype", "f64"]
        ) == 0
        c = SZOpsCompressed.from_bytes(out.read_bytes())
        assert c.dtype == np.float64


class TestInfoStats:
    def test_info_prints_metadata(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["info", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "shape:" in out and "(20, 300)" in out
        assert "ratio:" in out

    def test_stats_match_numpy(self, stream_file, capsys):
        stream, data = stream_file
        assert main(["stats", str(stream)]) == 0
        out = capsys.readouterr().out
        mean_line = [l for l in out.splitlines() if l.startswith("mean:")][0]
        reported = float(mean_line.split()[-1])
        assert reported == pytest.approx(float(data.astype(np.float64).mean()), abs=1e-3)


class TestOp:
    def test_reduction_prints_value(self, stream_file, capsys):
        stream, data = stream_file
        assert main(["op", str(stream), "mean"]) == 0
        value = float(capsys.readouterr().out.split()[-1])
        assert value == pytest.approx(float(data.astype(np.float64).mean()), abs=1e-3)

    def test_scalar_op_writes_stream(self, stream_file, tmp_path, capsys):
        stream, data = stream_file
        out = tmp_path / "shifted.szops"
        assert main(["op", str(stream), "scalar_add", "--scalar", "5", "-o", str(out)]) == 0
        c = SZOpsCompressed.from_bytes(out.read_bytes())
        from repro import SZOps, ops

        assert ops.mean(c) == pytest.approx(
            float(data.astype(np.float64).mean()) + 5.0, abs=2e-3
        )

    def test_missing_scalar_rejected(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["op", str(stream), "scalar_add"]) == 2
        assert "--scalar" in capsys.readouterr().err

    def test_stream_op_requires_output(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["op", str(stream), "negation"]) == 2
        assert "-o" in capsys.readouterr().err


class TestChain:
    def test_reduction_chain_prints_value(self, stream_file, capsys):
        stream, data = stream_file
        rc = main(["chain", str(stream), "negation", "scalar_multiply=0.5", "mean"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "negation -> scalar_multiply=0.5 -> mean:" in out
        value = float(out.split()[-1])
        expected = float((-data.astype(np.float64) * 0.5).mean())
        assert value == pytest.approx(expected, abs=2e-3)

    def test_fused_and_eager_agree(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "negation", "scalar_multiply=0.5", "mean"]) == 0
        fused_val = float(capsys.readouterr().out.split()[-1])
        assert main(
            ["chain", str(stream), "negation", "scalar_multiply=0.5", "mean", "--no-fuse"]
        ) == 0
        assert float(capsys.readouterr().out.split()[-1]) == fused_val

    def test_stream_chain_writes_identical_to_eager_ops(self, stream_file, tmp_path, capsys):
        stream, _ = stream_file
        out = tmp_path / "chained.szops"
        rc = main(["chain", str(stream), "negation", "scalar_add=2", "-o", str(out)])
        assert rc == 0
        from repro import ops

        c = SZOpsCompressed.from_bytes(stream.read_bytes())
        expected = ops.scalar_add(ops.negate(c), 2.0)
        assert out.read_bytes() == expected.to_bytes()

    def test_threads_flag(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "mean", "--threads", "4"]) == 0
        serial = main(["chain", str(stream), "mean"])
        assert serial == 0
        threaded_val, serial_val = [
            float(line.split()[-1])
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("mean:")
        ]
        assert threaded_val == serial_val

    def test_time_flag_reports_mode(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "mean", "--time"]) == 0
        assert "[fused chain:" in capsys.readouterr().out
        assert main(["chain", str(stream), "mean", "--time", "--no-fuse"]) == 0
        assert "[eager chain:" in capsys.readouterr().out

    def test_bad_step_rejected(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "scalar_add"]) == 2
        assert "scalar" in capsys.readouterr().err

    def test_stream_chain_requires_output(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "negation"]) == 2
        assert "-o" in capsys.readouterr().err

    def test_overflow_reported_as_runtime_error(self, stream_file, capsys):
        stream, _ = stream_file
        assert main(["chain", str(stream), "scalar_multiply=1e300", "mean"]) == 1
        assert "error:" in capsys.readouterr().err
