"""Quantization-stage tests: the central error-bound invariant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.quantize import dequantize, dequantize_scalar, quantize, quantize_scalar


class TestBound:
    def test_paper_example(self):
        # Section IV example: eps=0.01, values quantize to {-1,-1,-3,-3}.
        values = np.array([-0.025, -0.025, -0.051, -0.052])
        assert np.array_equal(quantize(values, 0.01), [-1, -1, -3, -3])

    def test_roundtrip_bound(self, rng):
        data = rng.normal(scale=10, size=10_000)
        for eps in (1e-1, 1e-3, 1e-5):
            recon = dequantize(quantize(data, eps), eps)
            assert np.max(np.abs(recon - data)) <= eps

    @given(
        eps_exp=st.integers(min_value=-8, max_value=2),
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_property(self, eps_exp, values):
        eps = 10.0 ** eps_exp
        arr = np.array(values, dtype=np.float64)
        recon = dequantize(quantize(arr, eps), eps)
        slack = float(np.spacing(np.max(np.abs(arr)) + eps)) if arr.size else 0.0
        assert np.max(np.abs(recon - arr)) <= eps + slack

    def test_float32_input_uses_float64_math(self):
        data = np.array([1e6], dtype=np.float32)
        q = quantize(data, 1e-3)
        recon = dequantize(q, 1e-3)
        # the bound holds against the float32 value exactly
        assert abs(recon[0] - float(data[0])) <= 1e-3


class TestScalar:
    def test_paper_scalar_examples(self):
        # Section V: eps=0.01 -> s=3.14 quantizes to bin 157.
        assert quantize_scalar(3.14, 0.01) == 157
        assert dequantize_scalar(157, 0.01) == pytest.approx(3.14)

    def test_scalar_bound(self):
        for s in (-12.7, -0.001, 0.0, 0.49, 1e4):
            for eps in (1e-1, 1e-4):
                rho = quantize_scalar(s, eps)
                assert abs(dequantize_scalar(rho, eps) - s) <= eps

    def test_scalar_matches_array_quantizer(self, rng):
        vals = rng.normal(scale=5, size=100)
        q_arr = quantize(vals, 1e-3)
        q_scalar = [quantize_scalar(float(v), 1e-3) for v in vals]
        assert np.array_equal(q_arr, q_scalar)


class TestValidation:
    def test_nonpositive_eps_rejected(self):
        with pytest.raises(ConfigError):
            quantize(np.zeros(1), 0.0)
        with pytest.raises(ConfigError):
            dequantize(np.zeros(1, dtype=np.int64), -1.0)
        with pytest.raises(ConfigError):
            quantize_scalar(1.0, 0.0)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            quantize(np.array([np.nan]), 1e-3)
        with pytest.raises(ValueError, match="finite"):
            quantize_scalar(float("inf"), 1e-3)
