"""End-to-end compressor tests: bounds, shapes, dtypes, threading, config."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SZOps, SZOpsConfig
from repro.core.errors import ConfigError


class TestRoundtrip:
    @pytest.mark.parametrize("eps", [1e-1, 1e-3, 1e-5])
    def test_bound_1d(self, codec, smooth_1d, assert_within_bound, eps):
        c = codec.compress(smooth_1d, eps)
        assert_within_bound(smooth_1d, codec.decompress(c), eps)

    def test_bound_3d(self, codec, smooth_3d, assert_within_bound):
        c = codec.compress(smooth_3d, 1e-4)
        out = codec.decompress(c)
        assert out.shape == smooth_3d.shape
        assert out.dtype == smooth_3d.dtype
        assert_within_bound(smooth_3d, out, 1e-4)

    def test_bound_2d_float64(self, codec, rng, assert_within_bound):
        data = np.cumsum(rng.normal(size=(64, 65)), axis=1) * 1e-2
        c = codec.compress(data, 1e-6)
        out = codec.decompress(c)
        assert out.dtype == np.float64
        assert_within_bound(data, out, 1e-6)

    def test_relative_mode(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3, mode="rel")
        rng_val = float(smooth_1d.max() - smooth_1d.min())
        assert c.eps == pytest.approx(1e-3 * rng_val)
        err = np.max(np.abs(codec.decompress(c).astype(np.float64) - smooth_1d.astype(np.float64)))
        slack = float(np.spacing(np.float32(np.abs(smooth_1d).max() + c.eps)))
        assert err <= c.eps + slack

    def test_constant_array(self, codec):
        data = np.full(1000, 2.5, dtype=np.float32)
        c = codec.compress(data, 1e-4)
        assert c.constant_fraction == 1.0
        assert np.allclose(codec.decompress(c), 2.5, atol=1e-4)

    def test_ragged_tail(self, codec, rng, assert_within_bound):
        data = np.cumsum(rng.normal(size=1003)).astype(np.float32) * 1e-2
        c = codec.compress(data, 1e-3)
        assert_within_bound(data, codec.decompress(c), 1e-3)

    def test_tiny_array(self, codec):
        data = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        c = codec.compress(data, 1e-3)
        assert np.allclose(codec.decompress(c), data, atol=1e-3)

    @given(
        n=st.integers(min_value=1, max_value=700),
        eps_exp=st.integers(min_value=-6, max_value=-1),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_property(self, n, eps_exp, seed):
        rng = np.random.default_rng(seed)
        data = np.cumsum(rng.normal(size=n)).astype(np.float64) * 0.1
        eps = 10.0 ** eps_exp
        codec = SZOps()
        recon = codec.decompress(codec.compress(data, eps))
        assert np.max(np.abs(recon - data)) <= eps


class TestPartialDecompression:
    def test_quantized_matches_full(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-4)
        q = codec.decompress_quantized(c)
        full = codec.decompress(c)
        assert np.allclose(2 * c.eps * q, full.astype(np.float64), atol=1e-7)


class TestThreading:
    @pytest.mark.parametrize("n_threads", [2, 4])
    def test_threaded_stream_identical(self, smooth_3d, n_threads):
        base = SZOps().compress(smooth_3d, 1e-4)
        threaded = SZOps(n_threads=n_threads).compress(smooth_3d, 1e-4)
        assert base.to_bytes() == threaded.to_bytes()

    def test_threaded_decompress_identical(self, smooth_3d):
        c = SZOps().compress(smooth_3d, 1e-4)
        single = SZOps().decompress(c)
        multi = SZOps(n_threads=3).decompress(c)
        assert np.array_equal(single, multi)

    def test_context_manager_closes_pool(self, smooth_1d):
        with SZOps(n_threads=2) as codec:
            codec.compress(smooth_1d, 1e-3)
        assert codec._pool is None


class TestValidation:
    def test_integer_input_rejected(self, codec):
        with pytest.raises(TypeError, match="floating-point"):
            codec.compress(np.arange(10), 1e-3)

    def test_empty_input_rejected(self, codec):
        with pytest.raises(ValueError, match="empty"):
            codec.compress(np.zeros(0, dtype=np.float32), 1e-3)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ConfigError):
            SZOps(block_size=10)
        with pytest.raises(ConfigError):
            SZOps(block_size=0)

    def test_bad_thread_count_rejected(self):
        with pytest.raises(ConfigError):
            SZOps(n_threads=0)

    def test_config_object(self, smooth_1d):
        codec = SZOps(config=SZOpsConfig(block_size=128, n_threads=1))
        assert codec.block_size == 128
        c = codec.compress(smooth_1d, 1e-3)
        assert c.block_size == 128

    def test_bad_bitpack_kernel_rejected(self):
        with pytest.raises(ConfigError, match="bitpack_kernel"):
            SZOps(config=SZOpsConfig(bitpack_kernel="simd"))

    def test_bitpack_kernel_variants_bit_identical(self, smooth_1d):
        """Every SZOpsConfig.bitpack_kernel level yields the same stream."""
        from repro.core.config import VALID_BITPACK_KERNELS

        ref = SZOps().compress(smooth_1d, 1e-3).to_bytes()
        for name in VALID_BITPACK_KERNELS:
            codec = SZOps(config=SZOpsConfig(bitpack_kernel=name))
            c = codec.compress(smooth_1d, 1e-3)
            assert c.to_bytes() == ref, name
            assert np.array_equal(
                codec.decompress(c), SZOps().decompress(c)
            ), name


class TestContainerStats:
    def test_ratio_positive(self, codec, smooth_1d):
        c = codec.compress(smooth_1d, 1e-3)
        assert c.compression_ratio > 1.0
        assert c.original_nbytes == smooth_1d.nbytes

    def test_looser_bound_compresses_better(self, codec, smooth_1d):
        tight = codec.compress(smooth_1d, 1e-5)
        loose = codec.compress(smooth_1d, 1e-2)
        assert loose.compressed_nbytes < tight.compressed_nbytes

    def test_constant_blocks_detected(self, codec, plateau_field):
        c = codec.compress(plateau_field, 1e-4)
        assert c.n_constant_blocks > 0
        assert 0 < c.constant_fraction < 1
