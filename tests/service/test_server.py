"""Live-server integration tests: correctness, concurrency, backpressure,
deadlines, and malformed-input containment."""

from __future__ import annotations

import json
import struct
import threading

import pytest

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed
from repro.service import (
    RemoteError,
    RequestTimedOut,
    ServerBusy,
    ServiceClient,
)
from repro.service.protocol import PROTOCOL_VERSION, Status

CHAIN = ["negation", "scalar_add=0.25", "scalar_multiply=1.5"]
CHAIN_PAIRS = [("negation", None), ("scalar_add", 0.25), ("scalar_multiply", 1.5)]


# ---------------------------------------------------------------------------
# correctness
# ---------------------------------------------------------------------------


def test_put_get_roundtrip(client, blob):
    assert client.get("U") == blob
    assert client.get_container("U").to_bytes() == blob


def test_op_bit_identical_to_eager_apply_chain(client, compressed):
    eager = ops.apply_chain(compressed, CHAIN_PAIRS, fused=False)
    assert client.op("U", CHAIN) == eager.to_bytes()


def test_op_with_result_name_stores_stream(client, compressed):
    version = client.op("U", CHAIN, result_name="V")
    assert version == 1
    eager = ops.apply_chain(compressed, CHAIN_PAIRS, fused=False)
    assert client.get("V") == eager.to_bytes()


def test_reduce_matches_eager_values(client, compressed):
    for reduction in ("mean", "variance", "std", "minimum", "maximum"):
        expected = ops.apply_chain(compressed, [(reduction, None)], fused=False)
        assert client.reduce("U", reduction) == expected
    chained = ops.apply_chain(
        compressed, CHAIN_PAIRS + [("mean", None)], fused=False
    )
    assert client.reduce("U", "mean", chain=CHAIN) == chained


def test_reduce_never_decompresses(client, monkeypatch):
    """The decode spy: REDUCE must not materialize the decompressed array."""
    calls = []

    original = SZOps.decompress

    def spy(self, *args, **kwargs):
        calls.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(SZOps, "decompress", spy)
    for reduction in ("mean", "variance", "std"):
        client.reduce("U", reduction)
        client.reduce("U", reduction, chain=["negation"])
    assert calls == []


def test_versioned_requests(client, blob):
    v2 = client.put("U", blob)
    assert v2 == 2
    assert client.get("U", version=1) == blob
    assert client.op("U", ["negation"], version=1) == client.op(
        "U", ["negation"], version=2
    )


def test_bad_chain_rejected(client):
    with pytest.raises(RemoteError, match="reduction"):
        client.op("U", ["mean"])  # reductions belong on REDUCE
    with pytest.raises(RemoteError):
        client.op("U", ["no_such_op"])
    with pytest.raises(RemoteError, match="at least one"):
        client.op("U", [])
    with pytest.raises(RemoteError, match="unknown reduction"):
        client.reduce("U", "median")


def test_unknown_array_and_version(client):
    with pytest.raises(RemoteError, match="unknown array"):
        client.get("nope")
    with pytest.raises(RemoteError, match="version 99"):
        client.get("U", version=99)


# ---------------------------------------------------------------------------
# health / stats (satellite: ops-facing fields)
# ---------------------------------------------------------------------------


def test_health_document_fields(client):
    doc = client.health()
    assert doc["status"] == "ok"
    assert doc["backend"] == "serial"
    assert doc["uptime_seconds"] > 0
    assert doc["arrays"] == 1
    assert doc["bytes_used"] > 0
    assert doc["byte_budget"] == 256 << 20
    assert doc["max_pending"] == 64
    assert doc["batching"] is True


def test_stats_document_shape(client, compressed):
    client.op("U", CHAIN)
    client.reduce("U", "mean")
    doc = client.stats()
    assert doc["server"]["status"] == "ok"
    assert doc["store"]["puts"] >= 1
    assert set(doc["endpoints"]) >= {"OP", "PUT", "REDUCE"}
    op_stats = doc["endpoints"]["OP"]
    assert op_stats["by_status"]["OK"] >= 1
    latency = op_stats["latency"]
    assert latency["count"] >= 1
    assert latency["p99_ms"] >= latency["p50_ms"] > 0
    assert "decoded_block_cache" in doc


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------


def test_concurrent_mixed_clients(live_server, blob, compressed):
    """N clients issuing mixed PUT/GET/OP/REDUCE concurrently, zero errors."""
    n_clients, per_client = 8, 12
    eager = ops.apply_chain(compressed, CHAIN_PAIRS, fused=False).to_bytes()
    expected_mean = ops.apply_chain(compressed, [("mean", None)], fused=False)
    errors: list[str] = []
    barrier = threading.Barrier(n_clients)

    def worker(idx: int) -> None:
        try:
            with ServiceClient(live_server.host, live_server.port) as c:
                barrier.wait()
                for j in range(per_client):
                    kind = (idx + j) % 4
                    if kind == 0:
                        c.put(f"w{idx}", blob)
                    elif kind == 1:
                        assert c.get("U") == blob
                    elif kind == 2:
                        assert c.op("U", CHAIN) == eager
                    else:
                        assert c.reduce("U", "mean") == expected_mean
        except BaseException as exc:
            errors.append(f"client {idx}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with ServiceClient(live_server.host, live_server.port) as c:
        doc = c.stats()
        by_endpoint = doc["endpoints"]
        total_ok = sum(e["by_status"].get("OK", 0) for e in by_endpoint.values())
        assert total_ok >= n_clients * per_client


def test_batching_dedups_concurrent_identical_ops(server_factory, blob, compressed):
    """Concurrent identical OPs coalesce; replies stay bit-identical."""
    handle = server_factory(batch_window_s=0.01)
    with ServiceClient(handle.host, handle.port) as c:
        c.put("U", blob)
    eager = ops.apply_chain(compressed, CHAIN_PAIRS, fused=False).to_bytes()
    results: list[bytes] = []
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)
    lock = threading.Lock()

    def worker() -> None:
        try:
            with ServiceClient(handle.host, handle.port) as c:
                barrier.wait()
                out = c.op("U", CHAIN)
            with lock:
                results.append(out)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert results == [eager] * 8
    with ServiceClient(handle.host, handle.port) as c:
        counters = c.stats()["counters"]
    assert counters.get("batch_dedup_hits", 0) >= 1


def test_lru_eviction_under_byte_pressure(server_factory, blob):
    handle = server_factory(byte_budget=2 * len(blob) + 1)
    with ServiceClient(handle.host, handle.port) as c:
        c.put("a", blob)
        c.put("b", blob)
        c.put("c", blob)  # evicts "a"
        with pytest.raises(RemoteError, match="evicted"):
            c.get("a")
        assert c.get("c") == blob
        assert c.health()["bytes_used"] <= 2 * len(blob) + 1


# ---------------------------------------------------------------------------
# deadlines and backpressure
# ---------------------------------------------------------------------------


def test_deadline_produces_timeout(server_factory, blob):
    handle = server_factory(debug_delay_s=0.5, batching=False)
    with ServiceClient(handle.host, handle.port) as c:
        c.put("U", blob)
        with pytest.raises(RequestTimedOut):
            c.op("U", CHAIN, deadline_ms=50)
        # The connection and server survive; a patient request succeeds.
        assert c.op("U", CHAIN, deadline_ms=5000)


def test_server_default_timeout(server_factory, blob):
    handle = server_factory(debug_delay_s=0.5, request_timeout_s=0.05, batching=False)
    with ServiceClient(handle.host, handle.port) as c:
        c.put("U", blob)
        with pytest.raises(RequestTimedOut):
            c.op("U", CHAIN)


def test_overload_sheds_busy(server_factory, blob):
    """Admission cap: excess concurrent requests get BUSY, then recovery."""
    handle = server_factory(debug_delay_s=0.3, max_pending=2, batching=False)
    with ServiceClient(handle.host, handle.port) as c:
        c.put("U", blob)
    outcomes: list[str] = []
    barrier = threading.Barrier(6)
    lock = threading.Lock()

    def worker() -> None:
        try:
            with ServiceClient(handle.host, handle.port) as c:
                barrier.wait()
                c.op("U", CHAIN)
            result = "ok"
        except ServerBusy:
            result = "busy"
        except BaseException as exc:
            result = f"error: {exc}"
        with lock:
            outcomes.append(result)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert set(outcomes) <= {"ok", "busy"}
    assert "busy" in outcomes  # 6 concurrent > max_pending=2 must shed
    assert "ok" in outcomes
    # After the burst the server serves normally again.
    with ServiceClient(handle.host, handle.port) as c:
        assert c.health()["status"] == "ok"
        assert c.op("U", CHAIN)


# ---------------------------------------------------------------------------
# malformed input (satellite: hardening)
# ---------------------------------------------------------------------------


def test_garbage_payload_gets_error_reply(live_server):
    with ServiceClient(live_server.host, live_server.port) as c:
        c.send_raw(struct.pack("<I", 5) + b"\xde\xad\xbe\xef\x01")
        reply = c.recv_reply()
        assert reply.status is Status.ERROR
        # Same connection still serves valid requests afterwards.
        assert c.health()["status"] == "ok"


def test_unknown_opcode_gets_error_reply(live_server):
    with ServiceClient(live_server.host, live_server.port) as c:
        payload = struct.pack("<BBI", PROTOCOL_VERSION, 99, 0)
        c.send_raw(struct.pack("<I", len(payload)) + payload)
        reply = c.recv_reply()
        assert reply.status is Status.ERROR
        assert "opcode" in reply.message


def test_oversized_frame_declaration_closes_connection(live_server):
    with ServiceClient(live_server.host, live_server.port) as c:
        c.send_raw(struct.pack("<I", (64 << 20) + 1))
        reply = c.recv_reply()
        assert reply.status is Status.ERROR
        # Byte sync is unrecoverable: the server closes this connection.
        with pytest.raises(ConnectionError):
            c.send_raw(b"\x00" * 4)
            c.recv_reply()
    # ...but keeps serving new ones.
    with ServiceClient(live_server.host, live_server.port) as c:
        assert c.health()["status"] == "ok"


def test_truncated_frame_then_disconnect_is_contained(live_server):
    with ServiceClient(live_server.host, live_server.port) as c:
        c.send_raw(struct.pack("<I", 100) + b"only-ten-b")  # 10 of 100 bytes
    # The abandoned connection must not wedge the accept loop.
    with ServiceClient(live_server.host, live_server.port) as c:
        assert c.health()["status"] == "ok"


def test_corrupt_container_put_rejected_server_survives(client, blob):
    corrupt = bytearray(blob)
    corrupt[:4] = b"XXXX"  # destroy the magic
    with pytest.raises(RemoteError):
        client.put("bad", bytes(corrupt))
    truncated = blob[: len(blob) // 2]
    with pytest.raises(RemoteError):
        client.put("bad", truncated)
    with pytest.raises(RemoteError):
        client.put("bad", b"\x00" * 64)
    assert client.health()["status"] == "ok"
    assert "bad" not in client.health() or client.health()["arrays"] == 1


def test_corrupt_fixture_streams_rejected(client):
    """The analysis suite's corrupt containers are refused at the door."""
    from pathlib import Path

    fixtures = Path(__file__).parent.parent / "analysis" / "fixtures"
    rejected = 0
    for path in sorted(fixtures.glob("*.bin")):
        if path.name.startswith("szp"):
            continue  # SZp payloads are not SZOps containers
        with pytest.raises(RemoteError):
            client.put("fixture", path.read_bytes())
        rejected += 1
    assert rejected >= 4
    assert client.health()["status"] == "ok"


def test_internal_error_contained(live_server, monkeypatch, blob):
    """A bug in a kernel surfaces as ERROR, not a dead server."""
    import repro.service.server as server_mod

    def boom(*args, **kwargs):
        raise AttributeError("injected kernel bug")

    monkeypatch.setattr(server_mod, "_materialize_chain", boom)
    with ServiceClient(live_server.host, live_server.port) as c:
        with pytest.raises(RemoteError, match="internal error"):
            c.op("U", CHAIN)
        assert c.health()["status"] == "ok"
    monkeypatch.undo()
    with ServiceClient(live_server.host, live_server.port) as c:
        assert c.op("U", CHAIN)


def test_blob_fixture_is_wire_stable(blob):
    """The module fixture itself parses (guards the other tests' premise)."""
    c = SZOpsCompressed.from_bytes(blob)
    assert c.to_bytes() == blob
    assert json.loads(json.dumps({"fp": c.content_fingerprint()}))
