"""Micro-batcher unit tests: dedup, grouping, isolation, flush."""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.batching import MicroBatcher
from repro.service.telemetry import Telemetry


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def pool():
    with ThreadPoolExecutor(max_workers=4) as executor:
        yield executor


def test_single_flight_dedup(pool):
    """N concurrent submits with one key -> exactly one compute call."""
    calls = []
    lock = threading.Lock()

    def compute():
        with lock:
            calls.append(1)
        return "result"

    async def scenario():
        telemetry = Telemetry()
        batcher = MicroBatcher(pool, window_s=0.005, telemetry=telemetry)
        results = await asyncio.gather(
            *(batcher.submit(("fp", "op"), "fp", compute) for _ in range(16))
        )
        return results, telemetry

    results, telemetry = run(scenario())
    assert results == ["result"] * 16
    assert len(calls) == 1
    assert telemetry.counter("batch_dedup_hits") == 15
    assert telemetry.counter("batched_requests") == 16


def test_distinct_keys_all_computed(pool):
    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.005)
        return await asyncio.gather(
            *(batcher.submit(("fp", f"op{i}"), "fp", lambda i=i: i * i) for i in range(8))
        )

    assert run(scenario()) == [i * i for i in range(8)]


def test_same_group_runs_in_one_executor_job(pool):
    """Flights sharing a group execute back to back on one worker thread."""
    threads: list[str] = []
    lock = threading.Lock()

    def make_compute(i):
        def compute():
            with lock:
                threads.append(threading.current_thread().name)
            return i

        return compute

    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.01)
        return await asyncio.gather(
            *(batcher.submit(("fp", f"c{i}"), "fp", make_compute(i)) for i in range(6))
        )

    assert run(scenario()) == list(range(6))
    assert len(set(threads)) == 1  # one group -> one pool job


def test_exception_isolated_to_its_flight(pool):
    def boom():
        raise RuntimeError("kernel exploded")

    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.005)
        ok_task = asyncio.ensure_future(batcher.submit(("fp", "good"), "fp", lambda: 42))
        bad_task = asyncio.ensure_future(batcher.submit(("fp", "bad"), "fp", boom))
        ok = await ok_task
        with pytest.raises(RuntimeError, match="kernel exploded"):
            await bad_task
        return ok

    assert run(scenario()) == 42


def test_dedup_riders_share_the_failure(pool):
    def boom():
        raise ValueError("shared failure")

    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.005)
        tasks = [
            asyncio.ensure_future(batcher.submit(("fp", "bad"), "fp", boom))
            for _ in range(3)
        ]
        failures = 0
        for task in tasks:
            with pytest.raises(ValueError, match="shared failure"):
                await task
            failures += 1
        return failures

    assert run(scenario()) == 3


def test_zero_window_still_works(pool):
    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.0)
        return await asyncio.gather(
            *(batcher.submit(("fp", f"k{i}"), "fp", lambda i=i: i) for i in range(4))
        )

    assert run(scenario()) == [0, 1, 2, 3]


def test_max_batch_rolls_excess_to_next_batch(pool):
    telemetry = Telemetry()

    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.002, max_batch=4, telemetry=telemetry)
        return await asyncio.gather(
            *(batcher.submit(("fp", f"k{i}"), "fp", lambda i=i: i) for i in range(10))
        )

    assert run(scenario()) == list(range(10))
    assert telemetry.counter("batches") >= 3  # 10 flights / cap 4
    assert telemetry.counter("batched_flights") == 10


def test_flush_drains_everything_queued(pool):
    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.05)  # long window
        tasks = [
            asyncio.ensure_future(batcher.submit(("fp", f"k{i}"), "fp", lambda i=i: i))
            for i in range(4)
        ]
        await asyncio.sleep(0)  # let submits queue
        await batcher.flush()
        assert batcher.pending == 0
        # flush resolved every flight future; the riders just need a loop
        # turn to observe it (gather will not wait on the 50 ms window).
        return await asyncio.wait_for(asyncio.gather(*tasks), timeout=1.0)

    assert run(scenario()) == [0, 1, 2, 3]


def test_constructor_validation(pool):
    with pytest.raises(ValueError, match="non-negative"):
        MicroBatcher(pool, window_s=-0.1)
    with pytest.raises(ValueError, match="positive"):
        MicroBatcher(pool, max_batch=0)


def test_sequential_submits_reuse_drain_cycle(pool):
    """Submits arriving after a drain start a fresh window (no lost flights)."""

    async def scenario():
        batcher = MicroBatcher(pool, window_s=0.001)
        first = await batcher.submit(("fp", "a"), "fp", lambda: "a")
        second = await batcher.submit(("fp", "b"), "fp", lambda: "b")
        return first, second

    assert run(scenario()) == ("a", "b")
