"""Store unit tests: versioning, admission gating, LRU, RW locking."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import FormatError
from repro.service.store import CompressedArrayStore, StoreError, StoreMiss


def make_store(**kw) -> CompressedArrayStore:
    kw.setdefault("byte_budget", 64 << 20)
    return CompressedArrayStore(**kw)


# ---------------------------------------------------------------------------
# versioning
# ---------------------------------------------------------------------------


def test_put_assigns_sequential_versions(blob):
    store = make_store()
    assert store.put("U", blob) == 1
    assert store.put("U", blob) == 2
    assert store.put("V", blob) == 1
    assert store.get("U").version == 2
    assert store.get("U", 1).version == 1
    assert store.get("U", None).version == 2  # None = latest, like negative


def test_entries_are_immutable_snapshots(blob, compressed):
    store = make_store()
    store.put("U", blob)
    entry = store.get("U")
    assert entry.blob == blob
    assert entry.fingerprint == compressed.content_fingerprint()
    # A later version does not disturb the old one.
    store.put("U", blob)
    assert store.get("U", 1).blob == blob


def test_miss_distinguishes_unknown_name_and_version(blob):
    store = make_store()
    with pytest.raises(StoreMiss, match="unknown array"):
        store.get("nope")
    store.put("U", blob)
    with pytest.raises(StoreMiss, match="version 9"):
        store.get("U", 9)


def test_introspection(blob):
    store = make_store()
    assert len(store) == 0 and store.bytes_used == 0
    store.put("U", blob)
    store.put("V", blob)
    assert "U" in store and "W" not in store
    assert store.names() == ["U", "V"]
    assert store.bytes_used == 2 * len(blob)
    snap = store.snapshot()
    assert snap["arrays"] == 2 and snap["puts"] == 2


# ---------------------------------------------------------------------------
# admission gating
# ---------------------------------------------------------------------------


def test_empty_name_rejected(blob):
    with pytest.raises(StoreError, match="non-empty"):
        make_store().put("", blob)


def test_garbage_rejected_cleanly():
    store = make_store()
    with pytest.raises(FormatError):
        store.put("bad", b"not a stream at all")
    assert len(store) == 0
    assert store.snapshot()["rejects"] == 1


def test_truncated_stream_rejected(blob):
    store = make_store()
    with pytest.raises(FormatError):
        store.put("bad", blob[: len(blob) // 2])
    assert "bad" not in store


def test_corrupted_interior_rejected(blob):
    # Flip bytes in the middle of the container (width plane / payload).
    corrupt = bytearray(blob)
    for i in range(len(blob) // 2, len(blob) // 2 + 8):
        corrupt[i] ^= 0xFF
    store = make_store()
    try:
        store.put("bad", bytes(corrupt))
    except (FormatError, ValueError):
        pass  # rejected at the door — the expected outcome
    else:
        # Corruption the static verifier provably cannot catch (e.g. bits
        # inside the entropy payload) may be admitted; the entry must then
        # still be a parseable container.
        assert store.get("bad").container is not None


def test_oversized_blob_rejected(blob):
    store = CompressedArrayStore(byte_budget=len(blob) - 1)
    with pytest.raises(StoreError, match="byte budget"):
        store.put("U", blob)


def test_verify_disabled_still_parses(blob):
    store = make_store(verify=False)
    store.put("U", blob)
    with pytest.raises(Exception):  # from_bytes still gates garbage
        store.put("bad", b"garbage")


# ---------------------------------------------------------------------------
# byte-budget LRU
# ---------------------------------------------------------------------------


def test_lru_evicts_oldest_first(blob):
    store = CompressedArrayStore(byte_budget=3 * len(blob) + len(blob) // 2)
    for name in ("a", "b", "c"):
        store.put(name, blob)
    store.put("d", blob)  # over budget: "a" (oldest) must go
    with pytest.raises(StoreMiss) as excinfo:
        store.get("a")
    assert excinfo.value.evicted
    assert "evicted" in str(excinfo.value)
    for name in ("b", "c", "d"):
        assert store.get(name).blob == blob
    assert store.snapshot()["evictions"] == 1


def test_get_touch_protects_from_eviction(blob):
    store = CompressedArrayStore(byte_budget=3 * len(blob) + len(blob) // 2)
    for name in ("a", "b", "c"):
        store.put(name, blob)
    store.get("a")  # bump "a" to most-recently-used
    store.put("d", blob)  # now "b" is the LRU victim
    assert store.get("a").blob == blob
    with pytest.raises(StoreMiss):
        store.get("b")


def test_newest_insert_never_self_evicts(blob):
    store = CompressedArrayStore(byte_budget=len(blob) + 1)
    store.put("a", blob)
    store.put("b", blob)  # evicts "a", never "b" itself
    assert store.get("b").blob == blob
    with pytest.raises(StoreMiss):
        store.get("a")


def test_eviction_tombstones_are_per_version(blob):
    store = CompressedArrayStore(byte_budget=2 * len(blob) + 1)
    store.put("U", blob)
    store.put("U", blob)
    store.put("U", blob)  # version 1 evicted
    with pytest.raises(StoreMiss) as excinfo:
        store.get("U", 1)
    assert excinfo.value.evicted
    assert store.get("U").version == 3


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------


def test_concurrent_readers_and_writers(blob):
    """Hammer one store from reader and writer threads; no lost updates."""
    store = make_store()
    store.put("U", blob)
    n_writers, n_readers, per_thread = 4, 8, 25
    errors: list[BaseException] = []
    start = threading.Barrier(n_writers + n_readers)

    def writer(i: int) -> None:
        try:
            start.wait()
            for _ in range(per_thread):
                store.put(f"w{i}", blob)
        except BaseException as exc:
            errors.append(exc)

    def reader() -> None:
        try:
            start.wait()
            for _ in range(per_thread):
                assert store.get("U").blob == blob
                store.names()
                store.snapshot()
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_writers)]
    threads += [threading.Thread(target=reader) for _ in range(n_readers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Every writer's final version is exactly per_thread: no lost updates.
    for i in range(n_writers):
        assert store.get(f"w{i}").version == per_thread
    assert store.snapshot()["puts"] == n_writers * per_thread + 1
