"""Client reconnect semantics: one retry for idempotent opcodes only."""

from __future__ import annotations

import pytest

from repro.service import ConnectionLost, ServiceClient
from repro.service.client import IDEMPOTENT_OPCODES
from repro.service.protocol import Opcode


def _kill_socket(client: ServiceClient) -> None:
    """Make the client's current connection dead without touching the server."""
    client._sock.close()


class TestIdempotentRetry:
    def test_get_survives_dead_connection(self, live_server, blob):
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            assert client.get("U") == blob  # transparent reconnect + retry

    def test_reduce_survives_dead_connection(self, live_server):
        with ServiceClient(live_server.host, live_server.port) as client:
            baseline = client.reduce("U", "mean")
            _kill_socket(client)
            assert client.reduce("U", "mean") == baseline

    def test_stats_and_health_survive(self, live_server):
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            assert client.health()["status"] == "ok"
            _kill_socket(client)
            assert "counters" in client.stats()

    def test_retry_reuses_connection_afterwards(self, live_server, blob):
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            assert client.get("U") == blob
            # The reconnected socket keeps serving without further retries.
            assert client.get("U") == blob
            assert client.reduce("U", "mean") == client.reduce("U", "mean")


class TestNonIdempotentSurface:
    def test_put_raises_typed_connection_lost(self, live_server, blob):
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            with pytest.raises(ConnectionLost, match="PUT"):
                client.put("W", blob)

    def test_op_raises_typed_connection_lost(self, live_server):
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            with pytest.raises(ConnectionLost, match="OP"):
                client.op("U", [("negation", None)])

    def test_client_usable_after_connection_lost(self, live_server, blob):
        """ConnectionLost is not terminal: the next call reconnects."""
        with ServiceClient(live_server.host, live_server.port) as client:
            _kill_socket(client)
            with pytest.raises(ConnectionLost):
                client.put("W", blob)
            assert client.get("U") == blob  # idempotent path recovers


class TestIdempotencyRegistry:
    def test_writes_are_not_idempotent(self):
        assert Opcode.PUT not in IDEMPOTENT_OPCODES
        assert Opcode.OP not in IDEMPOTENT_OPCODES

    def test_reads_and_probes_are_idempotent(self):
        for opcode in (
            Opcode.GET,
            Opcode.REDUCE,
            Opcode.STATS,
            Opcode.HEALTH,
            Opcode.PREDUCE,
            Opcode.PING,
            Opcode.SHARDMAP,
        ):
            assert opcode in IDEMPOTENT_OPCODES
