"""Wire-protocol unit tests: roundtrips and strict-decoder rejection."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.service import protocol
from repro.service.protocol import (
    MAX_STEPS,
    PROTOCOL_VERSION,
    BodyKind,
    FrameError,
    GetRequest,
    HealthRequest,
    OpRequest,
    PutRequest,
    ReduceRequest,
    Reply,
    StatsRequest,
    Status,
    Step,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
    pack_frame,
    split_frame,
)

REQUESTS = [
    PutRequest("U", b"\x00" * 37),
    PutRequest("empty-blob", b""),
    GetRequest("U"),
    GetRequest("U", version=7),
    OpRequest("U", (Step("negation"), Step("scalar_add", 0.25))),
    OpRequest("U", (Step("scalar_multiply", -1.5),), version=3, result_name="V"),
    ReduceRequest("U", "mean"),
    ReduceRequest("U", "variance", (Step("negation"),), version=2),
    StatsRequest(),
    HealthRequest(),
]


@pytest.mark.parametrize("req", REQUESTS, ids=lambda r: type(r).__name__)
@pytest.mark.parametrize("deadline_ms", [0, 1, 125_000])
def test_request_roundtrip(req, deadline_ms):
    decoded, decoded_deadline, epoch = decode_request(encode_request(req, deadline_ms))
    assert decoded == req
    assert decoded_deadline == deadline_ms
    assert epoch == 0


REPLIES = [
    Reply(status=Status.OK, kind=BodyKind.BLOB, version=4, blob=b"stream-bytes"),
    Reply(status=Status.OK, kind=BodyKind.STORED, version=12),
    Reply(status=Status.OK, kind=BodyKind.VALUE, value=-3.25),
    Reply(status=Status.OK, kind=BodyKind.JSON, json_text='{"ok": true}'),
    Reply(status=Status.ERROR, kind=BodyKind.MESSAGE, message="unknown array 'x'"),
    Reply(status=Status.BUSY, kind=BodyKind.MESSAGE, message="queue full"),
    Reply(status=Status.TIMEOUT, kind=BodyKind.MESSAGE, message="deadline"),
]


@pytest.mark.parametrize("reply", REPLIES, ids=lambda r: f"{r.status.name}-{r.kind.name}")
def test_reply_roundtrip(reply):
    assert decode_reply(encode_reply(reply)) == reply


def test_frame_pack_split_roundtrip():
    payload = b"x" * 1000
    framed = pack_frame(payload)
    assert split_frame(framed[:4]) == len(payload)
    assert framed[4:] == payload


# ---------------------------------------------------------------------------
# strictness: every malformed shape is a FrameError, never a crash
# ---------------------------------------------------------------------------


def test_truncated_request_every_prefix_rejected():
    payload = encode_request(OpRequest("U", (Step("scalar_add", 1.0),)), 500)
    for cut in range(len(payload)):
        with pytest.raises(FrameError):
            decode_request(payload[:cut])


def test_truncated_reply_every_prefix_rejected():
    payload = encode_reply(
        Reply(status=Status.OK, kind=BodyKind.BLOB, version=1, blob=b"abcdef")
    )
    for cut in range(len(payload)):
        with pytest.raises(FrameError):
            decode_reply(payload[:cut])


def test_trailing_bytes_rejected():
    payload = encode_request(GetRequest("U"))
    with pytest.raises(FrameError, match="trailing"):
        decode_request(payload + b"\x00")
    with pytest.raises(FrameError, match="trailing"):
        decode_reply(encode_reply(REPLIES[1]) + b"junk")


def test_unknown_protocol_version_rejected():
    payload = bytearray(encode_request(StatsRequest()))
    payload[0] = PROTOCOL_VERSION + 1
    with pytest.raises(FrameError, match="version"):
        decode_request(bytes(payload))


def test_unknown_opcode_and_status_rejected():
    payload = bytearray(encode_request(StatsRequest()))
    payload[1] = 200
    with pytest.raises(FrameError, match="opcode"):
        decode_request(bytes(payload))
    reply = bytearray(encode_reply(REPLIES[1]))
    reply[1] = 200
    with pytest.raises(FrameError, match="status"):
        decode_reply(bytes(reply))


def test_bad_scalar_flag_rejected():
    payload = bytearray(encode_request(OpRequest("U", (Step("negation"),))))
    # The scalar-presence flag is the last byte before the result-name field.
    flag_offset = len(payload) - 3  # u16 result-name length follows it
    assert payload[flag_offset] == 0
    payload[flag_offset] = 2
    with pytest.raises(FrameError, match="scalar flag"):
        decode_request(bytes(payload))


def test_step_count_cap_enforced_both_sides():
    too_many = tuple(Step("negation") for _ in range(MAX_STEPS + 1))
    with pytest.raises(FrameError, match="cap"):
        encode_request(OpRequest("U", too_many))
    # Hand-craft a payload that *declares* too many steps.
    out = bytearray(struct.pack("<BBII", PROTOCOL_VERSION, 3, 0, 0))
    out += struct.pack("<H", 1)  # name "U"
    out += b"U"
    out += struct.pack("<i", -1)
    out += struct.pack("<H", MAX_STEPS + 1)
    with pytest.raises(FrameError, match="cap"):
        decode_request(bytes(out))


def test_hostile_length_prefix_rejected_before_allocation():
    huge = struct.pack("<I", protocol.DEFAULT_MAX_FRAME + 1)
    with pytest.raises(FrameError, match="cap"):
        split_frame(huge)
    with pytest.raises(FrameError):
        split_frame(b"\x01\x02")  # short header


def test_oversized_payload_rejected_at_pack_time():
    with pytest.raises(FrameError, match="cap"):
        pack_frame(b"x" * 101, max_frame=100)


def test_invalid_utf8_rejected():
    out = bytearray(struct.pack("<BBII", PROTOCOL_VERSION, 2, 0, 0))
    out += struct.pack("<H", 2) + b"\xff\xfe"  # invalid UTF-8 name
    out += struct.pack("<i", -1)
    with pytest.raises(FrameError, match="UTF-8"):
        decode_request(bytes(out))


def test_deadline_out_of_range_rejected():
    with pytest.raises(FrameError, match="deadline"):
        encode_request(StatsRequest(), deadline_ms=-1)
    with pytest.raises(FrameError, match="deadline"):
        encode_request(StatsRequest(), deadline_ms=1 << 32)


@given(st.binary(max_size=512))
def test_garbage_never_crashes_decoders(data):
    """Random bytes either decode cleanly or raise FrameError — nothing else."""
    for decode in (decode_request, decode_reply):
        try:
            decode(data)
        except FrameError:
            pass
