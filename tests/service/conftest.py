"""Fixtures for the service suite: streams, live servers, clients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.core.format import SZOpsCompressed
from repro.service import ServiceClient, ServiceConfig, ThreadedServer


@pytest.fixture(scope="module")
def compressed(rng_module) -> SZOpsCompressed:
    """One modest compressed array shared by a module's tests."""
    arr = np.cumsum(rng_module.normal(scale=5e-3, size=20_000)).astype(np.float32)
    return SZOps(block_size=64).compress(arr, 1e-3)


@pytest.fixture(scope="module")
def rng_module() -> np.random.Generator:
    return np.random.default_rng(20240624)


@pytest.fixture(scope="module")
def blob(compressed) -> bytes:
    return compressed.to_bytes()


@pytest.fixture
def server_factory():
    """Start ThreadedServers that are always stopped at test end."""
    handles: list[ThreadedServer] = []

    def start(**overrides) -> ThreadedServer:
        handle = ThreadedServer(ServiceConfig(**overrides))
        handles.append(handle)
        return handle.start()

    yield start
    for handle in handles:
        handle.stop()


@pytest.fixture
def live_server(server_factory, blob) -> ThreadedServer:
    """A running server preloaded with array "U" (version 1)."""
    handle = server_factory()
    with ServiceClient(handle.host, handle.port) as client:
        client.put("U", blob)
    return handle


@pytest.fixture
def client(live_server):
    with ServiceClient(live_server.host, live_server.port) as c:
        yield c
