"""Graceful shutdown: SIGTERM mid-request drains before exit."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import ServiceClient, ServiceConfig, ThreadedServer

CHAIN = ["negation", "scalar_add=0.25", "scalar_multiply=1.5"]


def _spawn_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        pytest.fail(f"server did not announce its port: {line!r}")
    port = int(line.rsplit(":", 1)[1])
    return proc, port


def test_sigterm_mid_request_drains_then_exits_cleanly(blob):
    """SIGTERM while a slow OP is in flight: the reply still arrives."""
    proc, port = _spawn_server("--debug-delay-s", "0.4")
    try:
        with ServiceClient("127.0.0.1", port) as client:
            client.put("U", blob)
            result: dict = {}

            def slow_op() -> None:
                try:
                    result["blob"] = client.op("U", CHAIN)
                except BaseException as exc:
                    result["error"] = exc

            worker = threading.Thread(target=slow_op)
            worker.start()
            time.sleep(0.15)  # the op is now inside its 0.4 s kernel delay
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=10)
            assert not worker.is_alive(), "in-flight op never completed"
            assert "error" not in result, f"drain dropped the op: {result.get('error')}"
            assert result["blob"], "empty reply after drain"
        proc.wait(timeout=10)
        assert proc.returncode == 0
        out = proc.stdout.read()
        assert "draining" in out and "stopped" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_sigint_idle_exits_cleanly():
    proc, port = _spawn_server()
    try:
        with ServiceClient("127.0.0.1", port) as client:
            assert client.health()["status"] == "ok"
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=10)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_threaded_server_stop_reports_draining_health(blob):
    """In-process shutdown: the identity flips to 'draining' during drain."""
    handle = ThreadedServer(ServiceConfig(debug_delay_s=0.3, batching=False))
    handle.start()
    try:
        with ServiceClient(handle.host, handle.port) as client:
            client.put("U", blob)
            result: dict = {}

            def slow_op() -> None:
                try:
                    result["blob"] = client.op("U", CHAIN)
                except BaseException as exc:
                    result["error"] = exc

            worker = threading.Thread(target=slow_op)
            worker.start()
            time.sleep(0.1)
            handle.stop()  # graceful: waits for the in-flight op
            worker.join(timeout=10)
            assert "error" not in result
            assert result["blob"]
    finally:
        handle.stop()


def test_new_connections_refused_after_drain(blob):
    handle = ThreadedServer(ServiceConfig())
    handle.start()
    with ServiceClient(handle.host, handle.port) as client:
        client.put("U", blob)
    handle.stop()
    with pytest.raises(OSError):
        ServiceClient(handle.host, handle.port, timeout_s=1.0)
