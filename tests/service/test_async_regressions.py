"""Event-loop-safety regressions surfaced by the ASY dataflow pass.

Two defects the async-safety analysis found in the server (and this PR
fixed) are pinned here so they cannot regress:

* ``shutdown`` used to join the kernel pool (and close the backend)
  *on the event loop* — a blocking call (ASY003) that froze every other
  coroutine on the loop for as long as the slowest in-flight kernel.
* ``_send`` used to await ``writer.drain()`` with no deadline (ASY005) —
  a peer advertising a zero receive window parked the sending coroutine,
  and its connection slot, forever.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import suppress

from repro.service import ServiceConfig
from repro.service.protocol import BodyKind, Reply, Status
from repro.service.server import ServiceServer


def test_shutdown_keeps_event_loop_responsive() -> None:
    """Joining the pool must happen off-loop: other coroutines keep running."""

    async def main() -> None:
        server = ServiceServer(ServiceConfig(drain_timeout_s=1.0))
        release = threading.Event()
        server.pool.submit(release.wait, 5.0)  # a slow in-flight kernel job
        threading.Timer(0.4, release.set).start()

        ticks = 0

        async def heartbeat() -> None:
            nonlocal ticks
            while True:
                await asyncio.sleep(0.02)
                ticks += 1

        hb = asyncio.create_task(heartbeat())
        t0 = time.perf_counter()
        await server.shutdown()
        elapsed = time.perf_counter() - t0
        hb.cancel()
        with suppress(asyncio.CancelledError):
            await hb
        # shutdown genuinely waited for the pool job ...
        assert elapsed >= 0.3
        # ... and the loop stayed live the whole time (pre-fix: 0 ticks,
        # because pool.shutdown(wait=True) ran on the loop thread).
        assert ticks >= 5

    asyncio.run(main())


class _StalledWriter:
    """A peer that accepts bytes but never makes progress on drain()."""

    def __init__(self) -> None:
        self.closed = False
        self.written = b""

    def write(self, data: bytes) -> None:
        self.written += data

    async def drain(self) -> None:
        await asyncio.Event().wait()  # never set: zero receive window

    def close(self) -> None:
        self.closed = True


def test_send_applies_deadline_to_stalled_peer() -> None:
    """A zero-window peer costs at most send_timeout_s, not forever."""

    async def main() -> None:
        server = ServiceServer(ServiceConfig(send_timeout_s=0.1))
        try:
            writer = _StalledWriter()
            reply = Reply(
                status=Status.ERROR, kind=BodyKind.MESSAGE, message="pong"
            )
            # Pre-fix this await never returned; the outer wait_for is the
            # test's own safety net, not part of the contract.
            await asyncio.wait_for(server._send(writer, reply), timeout=5.0)
            assert writer.closed  # byte sync is gone, connection torn down
            assert server.telemetry.counter("send_timeouts") == 1
        finally:
            await server.shutdown()

    asyncio.run(main())
