"""Client surface and CLI entry points: async client, bench-serve JSON."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import ops
from repro.service import AsyncServiceClient
from repro.service.bench import run_service_bench
from repro.service.client import steps_from_chain
from repro.service.protocol import Step

CHAIN_PAIRS = [("negation", None), ("scalar_add", 0.25), ("scalar_multiply", 1.5)]


def test_steps_from_chain_accepts_all_spellings():
    steps = steps_from_chain(
        ["negation", "scalar_add=0.25", ("scalar_multiply", 1.5), Step("negation")]
    )
    assert steps == (
        Step("negation"),
        Step("scalar_add", 0.25),
        Step("scalar_multiply", 1.5),
        Step("negation"),
    )


def test_async_client_full_surface(live_server, blob, compressed):
    eager = ops.apply_chain(compressed, CHAIN_PAIRS, fused=False).to_bytes()
    expected_mean = ops.apply_chain(compressed, [("mean", None)], fused=False)

    async def scenario():
        async with await AsyncServiceClient.connect(
            live_server.host, live_server.port
        ) as client:
            version = await client.put("A", blob)
            assert version == 1
            assert await client.get("A") == blob
            out = await client.op(
                "A", ["negation", "scalar_add=0.25", "scalar_multiply=1.5"]
            )
            assert out == eager
            assert await client.reduce("A", "mean") == expected_mean
            health = await client.health()
            assert health["status"] == "ok"
            stats = await client.stats()
            assert stats["server"]["status"] == "ok"

    asyncio.run(scenario())


def test_async_clients_interleave_on_one_loop(live_server, blob):
    """Many async clients sharing a loop all make progress concurrently."""

    async def one_client(i: int) -> float:
        async with await AsyncServiceClient.connect(
            live_server.host, live_server.port
        ) as client:
            await client.put(f"async{i}", blob)
            return await client.reduce(f"async{i}", "mean")

    async def scenario():
        return await asyncio.gather(*(one_client(i) for i in range(6)))

    values = asyncio.run(scenario())
    assert len(set(values)) == 1  # same blob -> same mean everywhere


@pytest.mark.slow
def test_bench_serve_writes_wellformed_json(tmp_path, capsys):
    """A miniature bench-serve run through the real CLI entry point."""
    from repro.cli import main

    out = tmp_path / "BENCH_service.json"
    rc = main(
        [
            "bench-serve",
            "--scale",
            "0.1",
            "--clients",
            "4",
            "--requests",
            "5",
            "-o",
            str(out),
        ]
    )
    assert rc == 0
    printed = capsys.readouterr().out
    assert "speedup" in printed
    doc = json.loads(out.read_text())
    assert doc["experiment"] == "service_batching"
    assert doc["chain_depth"] == 3
    assert doc["total_errors"] == 0
    assert doc["bit_identical_to_eager"] is True
    for label in ("batched", "unbatched"):
        v = doc[label]
        assert v["completed_requests"] == v["total_requests"] == 20
        assert v["latency_p99_ms"] >= v["latency_p50_ms"] > 0
        assert v["throughput_rps"] > 0
    assert doc["batched"]["server_stats"]["batches"] >= 1
    red = doc["reduce_vs_decompress"]
    assert red["values_close"] is True
    assert red["compressed_domain_seconds"] > 0


def test_run_service_bench_returns_payload_directly():
    payload = run_service_bench(
        scale=0.05, n_clients=2, requests_per_client=2, repeats=1
    )
    assert payload["total_errors"] == 0
    assert payload["bit_identical_to_eager"] is True
    assert payload["batched"]["completed_requests"] == 4
