"""Workflow driver tests: traditional vs compressed-domain equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SZOps
from repro.baselines import SZp
from repro.core.ops.dispatch import OPERATIONS, operation_names
from repro.workflow import numpy_reference_op, run_compressed, run_traditional


@pytest.fixture
def workload(rng):
    data = (np.cumsum(rng.normal(size=8192)) * 0.02).astype(np.float32)
    szp = SZp()
    szops = SZOps()
    return data, szp, szp.compress(data, 1e-3), szops, szops.compress(data, 1e-3)


class TestNumpyReference:
    def test_all_ops_defined(self, rng):
        data = rng.normal(size=100).astype(np.float32)
        for op in operation_names():
            scalar = 2.0 if OPERATIONS[op].needs_scalar else None
            out = numpy_reference_op(data, op, scalar)
            if OPERATIONS[op].result == "computation":
                assert isinstance(out, float)
            else:
                assert out.shape == data.shape

    def test_missing_scalar_rejected(self, rng):
        with pytest.raises(ValueError):
            numpy_reference_op(rng.normal(size=10), "scalar_add", None)

    def test_unknown_op_rejected(self, rng):
        with pytest.raises(ValueError):
            numpy_reference_op(rng.normal(size=10), "median", None)


class TestTraditional:
    def test_scalar_op_has_all_three_stages(self, workload):
        data, szp, blob, _, _ = workload
        res = run_traditional(szp, blob, "scalar_add", 2.0)
        assert res.timing.decompress > 0
        assert res.timing.compress > 0
        assert res.timing.total >= res.timing.decompress

    def test_reduction_skips_recompression(self, workload):
        data, szp, blob, _, _ = workload
        res = run_traditional(szp, blob, "mean")
        assert res.timing.compress == 0.0
        assert isinstance(res.output, float)

    def test_output_value_correct(self, workload):
        data, szp, blob, _, _ = workload
        x = szp.decompress(blob)
        res = run_traditional(szp, blob, "mean")
        assert res.output == pytest.approx(float(x.astype(np.float64).mean()), rel=1e-9)


class TestCompressed:
    def test_kernel_only_timing(self, workload):
        _, _, _, szops, c = workload
        res = run_compressed(c, "negation")
        assert res.timing.decompress == 0.0 and res.timing.compress == 0.0
        assert res.kernel_seconds >= 0

    def test_unknown_op_rejected(self, workload):
        _, _, _, _, c = workload
        with pytest.raises(ValueError):
            run_compressed(c, "fft")


class TestEquivalence:
    """Both workflows must produce (near-)identical results — the premise
    of Figures 5/6's apples-to-apples comparison."""

    @pytest.mark.parametrize("op", operation_names())
    def test_same_result_both_workflows(self, workload, op):
        data, szp, szp_blob, szops, c = workload
        scalar = 3.14 if OPERATIONS[op].needs_scalar else None
        trad = run_traditional(szp, szp_blob, op, scalar)
        comp = run_compressed(c, op, scalar)
        if OPERATIONS[op].result == "computation":
            assert comp.output == pytest.approx(trad.output, rel=1e-5, abs=1e-10)
        else:
            a = szp.decompress(trad.output)
            b = szops.decompress(comp.output)
            # both are within eps of the operated decompressed data, so
            # they sit within 2*eps (+ scalar-quantization slack) of each other
            limit = 2 * c.eps * (1 + abs(scalar or 0)) + 1e-6
            assert np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))) <= limit
