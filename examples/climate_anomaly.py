"""Climate anomaly analysis on compressed CESM-style fields.

A common climate post-processing workflow: convert units, subtract a
reference climatology level, and compute anomaly statistics.  With SZOps
every step runs on the *compressed* stream — the field is never fully
decompressed — which is the paper's motivating use case for archived
climate output.

Run:  python examples/climate_anomaly.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SZOps, ops
from repro.datasets import generate_fields


def main() -> None:
    # Synthetic CESM-ATM surface temperature-like field (see repro.datasets).
    fields = generate_fields("CESM-ATM", fields=["FLDSC", "PHIS"])
    surface_flux = fields["FLDSC"]  # W/m^2-style field, offset ~300
    print(f"field: {surface_flux.shape} float32, {surface_flux.nbytes / 1e6:.2f} MB")

    codec = SZOps()
    c = codec.compress(surface_flux, error_bound=1e-3)
    print(f"compressed at eps=1e-3: ratio {c.compression_ratio:.2f}x")

    # ------------------------------------------------------------------
    # 1. Climatology: the long-term mean, straight from the stream.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    climatology = ops.mean(c)
    t_mean = time.perf_counter() - t0
    print(f"climatology (compressed-domain mean): {climatology:.4f}  [{1e3 * t_mean:.1f} ms]")

    # ------------------------------------------------------------------
    # 2. Anomaly field: subtract the climatology in fully compressed
    #    space — only the per-block outlier plane changes.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    anomaly = ops.scalar_subtract(c, climatology)
    t_anom = time.perf_counter() - t0
    print(f"anomaly stream built in {1e3 * t_anom:.2f} ms (no payload touched)")

    # ------------------------------------------------------------------
    # 3. Unit conversion: W/m^2 -> mW/cm^2 (x0.1), partial decompression.
    # ------------------------------------------------------------------
    converted = ops.scalar_multiply(anomaly, 0.1)

    # ------------------------------------------------------------------
    # 4. Anomaly variability, again without decompression.
    # ------------------------------------------------------------------
    stats = ops.summary_statistics(converted)
    print(
        f"converted anomaly: mean={stats['mean']:+.5f} std={stats['std']:.5f} "
        f"(mean ~ 0 by construction)"
    )

    # ------------------------------------------------------------------
    # Cross-check against the traditional decompress-then-NumPy pipeline.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    raw = codec.decompress(c).astype(np.float64)
    ref = (raw - raw.mean()) * 0.1
    t_trad = time.perf_counter() - t0
    print(
        f"traditional pipeline agrees: "
        f"std diff = {abs(ref.std() - stats['std']):.2e} "
        f"[traditional {1e3 * t_trad:.1f} ms vs compressed "
        f"{1e3 * (t_mean + t_anom):.1f} ms for mean+anomaly]"
    )


if __name__ == "__main__":
    main()
