"""Climate anomaly analysis on compressed CESM-style fields, fused.

A common climate post-processing workflow: convert units, subtract a
reference climatology level, and compute anomaly statistics.  With SZOps
every step runs on the *compressed* stream, and with the fusion runtime
(`repro.runtime`) the whole chain is recorded lazily and forced once — one
partial decode for the statistics, one re-encode only if the anomaly
stream itself is needed.

Run:  python examples/climate_anomaly.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SZOps, lazy, ops
from repro.datasets import generate_fields
from repro.runtime import cache_stats


def main() -> None:
    # Synthetic CESM-ATM surface temperature-like field (see repro.datasets).
    fields = generate_fields("CESM-ATM", fields=["FLDSC"])
    surface_flux = fields["FLDSC"]  # W/m^2-style field, offset ~300
    print(f"field: {surface_flux.shape} float32, {surface_flux.nbytes / 1e6:.2f} MB")

    codec = SZOps()
    c = codec.compress(surface_flux, error_bound=1e-3)
    print(f"compressed at eps=1e-3: ratio {c.compression_ratio:.2f}x")

    # ------------------------------------------------------------------
    # 1. Climatology: the long-term mean, straight from the stream.
    #    This decode is cached — every later step on `c` reuses it.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    climatology = ops.mean(c)
    t_mean = time.perf_counter() - t0
    print(f"climatology (compressed-domain mean): {climatology:.4f}  [{1e3 * t_mean:.1f} ms]")

    # ------------------------------------------------------------------
    # 2+3. Anomaly + unit conversion (W/m^2 -> mW/cm^2), as ONE fused
    #      chain: subtract folds into an integer shift, multiply is
    #      recorded as a pending requantization — nothing executes yet.
    # ------------------------------------------------------------------
    chain = lazy(c).scalar_subtract(climatology).scalar_multiply(0.1)
    print(f"fused anomaly chain recorded: {chain.pending_ops} pending steps")

    # ------------------------------------------------------------------
    # 4. Anomaly variability: the reduction forces the chain — one
    #    (cached) decode, zero re-encodes.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    stats = chain.summary_statistics()
    t_stats = time.perf_counter() - t0
    print(
        f"converted anomaly: mean={stats['mean']:+.5f} std={stats['std']:.5f} "
        f"(mean ~ 0 by construction)  [{1e3 * t_stats:.2f} ms fused]"
    )

    # Materialize only if the anomaly stream itself must be archived;
    # byte-identical to running the two eager ops one at a time.
    t0 = time.perf_counter()
    converted = chain.materialize()
    t_mat = time.perf_counter() - t0
    eager = ops.scalar_multiply(ops.scalar_subtract(c, climatology), 0.1)
    assert converted.to_bytes() == eager.to_bytes()
    print(f"anomaly stream materialized in {1e3 * t_mat:.2f} ms (bit-identical to eager)")

    # ------------------------------------------------------------------
    # Cross-check against the traditional decompress-then-NumPy pipeline.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    raw = codec.decompress(c).astype(np.float64)
    ref = (raw - raw.mean()) * 0.1
    t_trad = time.perf_counter() - t0
    print(
        f"traditional pipeline agrees: "
        f"std diff = {abs(ref.std() - stats['std']):.2e} "
        f"[traditional {1e3 * t_trad:.1f} ms vs fused {1e3 * (t_mean + t_stats):.1f} ms]"
    )
    hit_stats = cache_stats()
    if hit_stats is not None:
        print(
            f"decoded-block cache: {hit_stats.hits} hits / "
            f"{hit_stats.lookups} lookups ({100 * hit_stats.hit_rate:.0f}%)"
        )


if __name__ == "__main__":
    main()
