"""Compressed collective statistics across simulated MPI ranks.

The paper's introduction motivates SZOps with error-bounded MPI collectives:
in the traditional scheme every rank fully decompresses its stream before a
reduction.  Here four simulated ranks each hold a compressed partition of a
Hurricane-style field and compute global statistics two ways:

* traditional: each rank decompresses everything, reduces raw moments;
* SZOps: each rank extracts quantized partial sums from its *compressed*
  stream (constant blocks in closed form) and reduces only three scalars.

Run:  python examples/mpi_reduction.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SZOps
from repro.datasets import generate_fields
from repro.parallel import (
    compressed_stats_allreduce,
    run_spmd,
    traditional_stats_allreduce,
)

N_RANKS = 4


def main() -> None:
    field = generate_fields("Hurricane", fields=["TC"])["TC"]
    parts = np.array_split(field.reshape(-1), N_RANKS)
    codec = SZOps()
    blobs = [codec.compress(p, error_bound=1e-4) for p in parts]
    sizes = [b.compressed_nbytes for b in blobs]
    print(
        f"{N_RANKS} ranks, {field.nbytes / 1e6:.2f} MB total, "
        f"compressed to {sum(sizes) / 1e6:.2f} MB"
    )

    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    trad = run_spmd(
        N_RANKS, lambda comm: traditional_stats_allreduce(comm, codec, blobs[comm.rank])
    )[0]
    t_trad = time.perf_counter() - t0

    t0 = time.perf_counter()
    comp = run_spmd(
        N_RANKS, lambda comm: compressed_stats_allreduce(comm, blobs[comm.rank])
    )[0]
    t_comp = time.perf_counter() - t0

    print(f"traditional allreduce: mean={trad['mean']:+.5f} std={trad['std']:.5f} "
          f"[{1e3 * t_trad:.1f} ms, every rank decompresses {field.nbytes / N_RANKS / 1e6:.2f} MB]")
    print(f"compressed  allreduce: mean={comp['mean']:+.5f} std={comp['std']:.5f} "
          f"[{1e3 * t_comp:.1f} ms, ranks exchange 3 scalars each]")
    print(f"agreement: |d_mean|={abs(trad['mean'] - comp['mean']):.2e} "
          f"|d_std|={abs(trad['std'] - comp['std']):.2e}")


if __name__ == "__main__":
    main()
