"""Quickstart: compress scientific data and operate on it without decompressing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed


def main() -> None:
    # --- some "scientific" data: a smooth 3-D field -----------------------
    x = np.linspace(0, 4 * np.pi, 96)
    data = (
        np.sin(x)[:, None, None]
        * np.cos(0.5 * x)[None, :, None]
        * np.sin(0.25 * x + 1)[None, None, :]
    ).astype(np.float32)
    print(f"raw data: {data.shape} float32, {data.nbytes / 1e6:.2f} MB")

    # --- compress under an absolute error bound ---------------------------
    codec = SZOps()
    eps = 1e-4
    c = codec.compress(data, error_bound=eps)
    print(
        f"compressed: {c.compressed_nbytes / 1e6:.2f} MB "
        f"(ratio {c.compression_ratio:.2f}x, "
        f"{100 * c.constant_fraction:.1f}% constant blocks)"
    )

    # --- the error bound is a hard guarantee ------------------------------
    recon = codec.decompress(c)
    print(f"max |x - x_hat| = {np.abs(recon - data).max():.2e}  (eps = {eps:g})")

    # --- operate directly on the compressed stream ------------------------
    neg = ops.negate(c)  # fully compressed space: flips sign bits
    shifted = ops.scalar_add(c, 273.15)  # fully compressed space: outliers only
    scaled = ops.scalar_multiply(c, 1.8)  # partial: integer domain, re-encoded
    print("negation exact:", bool(np.array_equal(codec.decompress(neg), -recon)))
    print(
        "scalar_add error vs x_hat + 273.15:",
        f"{np.abs(codec.decompress(shifted) - (recon + np.float32(273.15))).max():.2e}",
    )
    print(
        "scalar_mul error vs 1.8 * x_hat:",
        f"{np.abs(codec.decompress(scaled) - np.float32(1.8) * recon).max():.2e}",
    )

    # --- reductions without full decompression -----------------------------
    stats = ops.summary_statistics(c)
    print(
        f"compressed-domain stats: mean={stats['mean']:+.6f} "
        f"var={stats['variance']:.6f} std={stats['std']:.6f}"
    )
    print(
        f"numpy (decompressed):    mean={recon.mean(dtype=np.float64):+.6f} "
        f"var={recon.var(dtype=np.float64):.6f} std={recon.std(dtype=np.float64):.6f}"
    )

    # --- streams serialize to a single buffer ------------------------------
    buf = c.to_bytes()
    again = SZOpsCompressed.from_bytes(buf)
    print(
        f"serialized {len(buf)} bytes; ops work on parsed streams too: "
        f"mean={ops.mean(again):+.6f}"
    )


if __name__ == "__main__":
    main()
