"""In-situ monitoring of a running simulation with compressed snapshots.

Models the quantum-circuit / in-situ analytics use case from the paper's
introduction: a simulation produces snapshots that must stay compressed in
memory, yet the analysis needs per-step statistics and step-to-step drift.
Everything below — statistics, drift (via the future-work multivariate
subtract), bias correction — happens on compressed streams; the snapshots
are never fully decompressed.  Fields are processed concurrently with the
thread-pool executor (the stand-in for the paper's 12-thread CPU setup).

Run:  python examples/insitu_statistics.py
"""

from __future__ import annotations

import numpy as np

from repro import SZOps, ops
from repro.datasets.synthetic import FieldSpec, synthesize_field
from repro.parallel import ChunkedExecutor

N_STEPS = 5
SHAPE = (32, 64, 64)
EPS = 1e-4


def simulate_step(step: int) -> np.ndarray:
    """A drifting, diffusing field standing in for simulation state."""
    spec = FieldSpec("state", beta=5.0, amplitude=1.0, noise=1e-4, envelope=1.0)
    base = synthesize_field(spec, SHAPE, seed=1234 + step).astype(np.float64)
    drift = 0.05 * step
    return (base + drift).astype(np.float32)


def main() -> None:
    codec = SZOps(n_threads=2)
    history: list = []

    print(f"{'step':>4} {'ratio':>7} {'mean':>10} {'std':>9} {'drift vs prev':>14}")
    with ChunkedExecutor(n_threads=2) as pool:
        for step in range(N_STEPS):
            raw = simulate_step(step)
            c = codec.compress(raw, EPS)

            # per-step statistics from the compressed stream
            stats = ops.summary_statistics(c)

            # step-to-step drift: multivariate subtract + reduction,
            # all in the compressed domain (Section VII future work)
            if history:
                delta = ops.subtract(c, history[-1])
                drift = ops.mean(delta)
            else:
                drift = float("nan")

            history.append(c)
            print(
                f"{step:>4} {c.compression_ratio:>7.2f} {stats['mean']:>+10.5f} "
                f"{stats['std']:>9.5f} {drift:>14.5f}"
            )

        # end-of-run: bias-correct every snapshot in parallel, in fully
        # compressed space (only outlier planes change)
        global_mean = float(np.mean([ops.mean(c) for c in history]))
        corrected = pool.map_items(
            lambda c: ops.scalar_subtract(c, global_mean), history
        )

    residual_means = [ops.mean(c) for c in corrected]
    print(f"\nbias-corrected snapshot means (should be ~0 around the trend):")
    print("  " + "  ".join(f"{m:+.4f}" for m in residual_means))
    total = sum(c.compressed_nbytes for c in history)
    raw_total = N_STEPS * np.prod(SHAPE) * 4
    print(
        f"\nmemory held: {total / 1e6:.2f} MB compressed vs "
        f"{raw_total / 1e6:.2f} MB raw ({raw_total / total:.1f}x saved)"
    )
    codec.close()


if __name__ == "__main__":
    main()
