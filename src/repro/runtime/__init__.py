"""Lazy op-fusion runtime: decoded-block caching + fused scalar-op chains.

Three cooperating pieces turn chains of compressed-domain operations from
N decodes into one:

* :mod:`repro.runtime.cache` — a process-wide LRU of decoded
  :class:`~repro.core.ops._partial.StoredBlocks`, keyed by the stream's
  content fingerprint; every operation's partial decode goes through it.
* :mod:`repro.runtime.lazy` — :class:`LazyStream`, which composes negation
  and scalar add/sub/mul into a pending ``(a·x + b)``-style transform that
  is materialized into the quantized domain only when a reduction or
  serialization forces it.
* :mod:`repro.runtime.reduce` — chunked parallel reductions that route
  block partial sums through :class:`repro.parallel.executor.ChunkedExecutor`
  with the constant-block closed forms kept intact.

See ``docs/FORMAT.md`` ("Runtime fusion semantics") for the laziness and
cache-key contract, and ``BENCH_runtime.json`` for the measured chain
speedup.
"""

from repro.runtime.cache import (
    CacheStats,
    DecodedBlockCache,
    active_cache,
    cache_disabled,
    cache_stats,
    clear_cache,
    configure,
    use_cache,
)
from repro.runtime.lazy import IntAffine, LazyStream, Requantize, lazy
from repro.runtime.reduce import (
    chunked_quantized_sq_dev,
    chunked_quantized_sum,
    parallel_maximum,
    parallel_mean,
    parallel_minimum,
    parallel_std,
    parallel_summary_statistics,
    parallel_variance,
)

__all__ = [
    "DecodedBlockCache",
    "CacheStats",
    "active_cache",
    "configure",
    "cache_disabled",
    "use_cache",
    "clear_cache",
    "cache_stats",
    "LazyStream",
    "IntAffine",
    "Requantize",
    "lazy",
    "chunked_quantized_sum",
    "chunked_quantized_sq_dev",
    "parallel_mean",
    "parallel_variance",
    "parallel_std",
    "parallel_summary_statistics",
    "parallel_minimum",
    "parallel_maximum",
]
