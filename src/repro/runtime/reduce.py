"""Chunked parallel reductions over decoded block partial sums.

The reduction kernels of :mod:`repro.core.ops.reductions` are single-pass
NumPy sums over the stored blocks' quantized values plus closed-form terms
for constant blocks.  For large streams the stored-block pass dominates and
parallelizes trivially: this module routes it through the pluggable
execution backends (:mod:`repro.parallel.backends`) — or, for backward
compatibility, a :class:`repro.parallel.executor.ChunkedExecutor` / thread
count — as chunked partial aggregates, while the constant-block closed
forms (the Table V fast path) stay intact: they are O(n_blocks) and not
worth distributing.

Exactness: quantized partial sums are integers represented exactly in
float64 (while below 2^53), so the chunked ``sum``/``mean``/``min``/``max``
equal their serial counterparts bit for bit regardless of chunking.  The
squared-deviation pass accumulates float products, so variance/std depend
only on the *chunk boundaries*, never on the substrate: two backends with
the same worker count partition identically and therefore agree bit for
bit (the cross-backend identity suite pins this down).

The decoded blocks come through :func:`stored_quantized`, i.e. the decoded
-block cache: a parallel reduction after any other operation on the same
stream skips the decode entirely.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import StoredBlocks, stored_quantized
from repro.parallel import kernels
from repro.parallel.backends import ChunkKernel, ExecutionBackend
from repro.parallel.executor import ChunkedExecutor
from repro.parallel.partition import even_ranges

__all__ = [
    "chunked_quantized_sum",
    "chunked_quantized_sq_dev",
    "parallel_mean",
    "parallel_variance",
    "parallel_std",
    "parallel_summary_statistics",
    "parallel_minimum",
    "parallel_maximum",
]

#: Accepted executor specs: a pluggable backend, the legacy thread
#: executor, or a bare thread count.
Executor = ExecutionBackend | ChunkedExecutor | int


@contextmanager
def _as_executor(
    executor: Executor,
) -> Iterator[ExecutionBackend | ChunkedExecutor]:
    """Accept a ready executor/backend or a thread count (owned per call)."""
    if isinstance(executor, (ExecutionBackend, ChunkedExecutor)):
        yield executor
    elif isinstance(executor, int):
        with ChunkedExecutor(executor) as ex:
            yield ex
    else:
        raise TypeError(
            f"executor must be an ExecutionBackend, a ChunkedExecutor or a "
            f"thread count, got {type(executor).__name__}"
        )


def _backend_partials(
    backend: ExecutionBackend,
    kernel: ChunkKernel,
    q: np.ndarray,
    extra: dict[str, Any] | None = None,
) -> list[Any]:
    """Run a reduction kernel over an even ``n_workers``-way chunking."""
    chunk_specs = [
        {"lo": lo, "hi": hi, **(extra or {})}
        for lo, hi in even_ranges(q.size, backend.n_workers)
    ]
    return backend.run_kernel(kernel, {"q": q}, chunk_specs).results


def _const_sum(blocks: StoredBlocks) -> float:
    if not blocks.const_outliers.size:
        return 0.0
    return float((blocks.const_outliers.astype(np.float64) * blocks.const_lens).sum())


def chunked_quantized_sum(blocks: StoredBlocks, executor: Executor) -> float:
    """Sum of all quantized values via chunked partials (constant closed form)."""
    total = 0.0
    if blocks.q.size:
        q = blocks.q
        with _as_executor(executor) as ex:
            if isinstance(ex, ExecutionBackend):
                partials = _backend_partials(ex, kernels.reduce_sum_chunk, q)
            else:
                partials = ex.map_ranges(
                    lambda lo, hi: float(q[lo:hi].sum(dtype=np.float64)), q.size
                )
        total += math.fsum(partials)
    return total + _const_sum(blocks)


def chunked_quantized_sq_dev(
    blocks: StoredBlocks, mu_q: float, executor: Executor
) -> float:
    """Sum of squared deviations from ``mu_q`` via chunked partials."""
    total = 0.0
    if blocks.q.size:
        q = blocks.q

        def part(lo: int, hi: int) -> float:
            dev = q[lo:hi].astype(np.float64) - mu_q
            return float(np.dot(dev, dev))

        with _as_executor(executor) as ex:
            if isinstance(ex, ExecutionBackend):
                partials = _backend_partials(
                    ex, kernels.reduce_sq_dev_chunk, q, extra={"mu_q": mu_q}
                )
            else:
                partials = ex.map_ranges(part, q.size)
        total += math.fsum(partials)
    if blocks.const_outliers.size:
        dev_c = blocks.const_outliers.astype(np.float64) - mu_q
        total += float((blocks.const_lens * dev_c * dev_c).sum())
    return total


def parallel_mean(c: SZOpsCompressed, executor: Executor) -> float:
    """Compressed-domain mean with chunked parallel partial sums.

    Equals :func:`repro.core.ops.mean` bit for bit (integer partials are
    exact in float64), on every backend.
    """
    blocks = stored_quantized(c)
    return 2.0 * c.eps * (chunked_quantized_sum(blocks, executor) / c.n_elements)


def parallel_variance(
    c: SZOpsCompressed, executor: Executor, ddof: int = 0
) -> float:
    """Compressed-domain variance with chunked parallel partial sums."""
    n = c.n_elements
    if n - ddof <= 0:
        raise ValueError(f"variance needs n - ddof > 0, got n={n}, ddof={ddof}")
    blocks = stored_quantized(c)
    mu_q = chunked_quantized_sum(blocks, executor) / n
    ssd = chunked_quantized_sq_dev(blocks, mu_q, executor)
    return (2.0 * c.eps) ** 2 * (ssd / (n - ddof))


def parallel_std(
    c: SZOpsCompressed, executor: Executor, ddof: int = 0
) -> float:
    """Compressed-domain standard deviation with chunked partial sums."""
    return math.sqrt(parallel_variance(c, executor, ddof=ddof))


def parallel_summary_statistics(
    c: SZOpsCompressed, executor: Executor, ddof: int = 0
) -> dict[str, float]:
    """Mean/variance/std in one decode with chunked partial sums."""
    n = c.n_elements
    blocks = stored_quantized(c)
    with _as_executor(executor) as ex:
        mu_q = chunked_quantized_sum(blocks, ex) / n
        ssd = chunked_quantized_sq_dev(blocks, mu_q, ex)
    var = (2.0 * c.eps) ** 2 * (ssd / (n - ddof))
    return {
        "mean": 2.0 * c.eps * mu_q,
        "variance": var,
        "std": math.sqrt(var),
    }


def _chunked_extreme(
    c: SZOpsCompressed, executor: Executor, kind: str
) -> float:
    blocks = stored_quantized(c)
    ufunc = np.min if kind == "min" else np.max
    candidates: list[int] = []
    if blocks.q.size:
        q = blocks.q
        with _as_executor(executor) as ex:
            if isinstance(ex, ExecutionBackend):
                partials = _backend_partials(
                    ex, kernels.reduce_extreme_chunk, q, extra={"kind": kind}
                )
            else:
                partials = ex.map_ranges(lambda lo, hi: int(ufunc(q[lo:hi])), q.size)
        candidates.extend(partials)
    if blocks.const_outliers.size:
        candidates.append(int(ufunc(blocks.const_outliers)))
    if not candidates:
        raise ValueError(f"cannot take the {kind} of an empty container")
    return 2.0 * c.eps * (min(candidates) if kind == "min" else max(candidates))


def parallel_minimum(c: SZOpsCompressed, executor: Executor) -> float:
    """Compressed-domain minimum via chunked partial extrema."""
    return _chunked_extreme(c, executor, "min")


def parallel_maximum(c: SZOpsCompressed, executor: Executor) -> float:
    """Compressed-domain maximum via chunked partial extrema."""
    return _chunked_extreme(c, executor, "max")
