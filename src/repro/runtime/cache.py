"""Decoded-block cache: memoize the BF⁻¹ + Lorenzo⁻¹ partial decode.

Figure 5 of the paper breaks the cost of every partially-decompressed
operation into decode + kernel + (re)encode, and the decode dominates.  A
chain of operations on the *same* stream therefore pays the decode once per
operation — ``std`` alone decodes twice (it calls ``variance`` which calls
``mean``'s machinery).  This module keeps a process-wide LRU of
:class:`~repro.core.ops._partial.StoredBlocks`, keyed by the stream's
content fingerprint (:meth:`SZOpsCompressed.content_fingerprint`), so every
operation after the first reuses the decoded quantized view.

Correctness model
-----------------
* The key hashes the *content* of all four planes plus the header, so two
  containers with equal bytes share an entry, and mutating a container in
  place changes its key — stale entries are never returned, they merely age
  out of the LRU.
* Cached arrays are marked read-only before insertion.  All in-tree
  consumers (reductions, scalar multiply, multivariate ops, collectives)
  treat :class:`StoredBlocks` as immutable; external writers get a loud
  ``ValueError`` from NumPy instead of silently poisoning the cache.
* The cache is bounded both by entry count and by total bytes; eviction is
  least-recently-used.

The cache is **enabled by default** (the ROADMAP's caching item).  Disable
it globally with :func:`configure` or locally with :func:`cache_disabled`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import StoredBlocks, decode_stored_blocks

__all__ = [
    "DecodedBlockCache",
    "CacheStats",
    "active_cache",
    "configure",
    "cache_disabled",
    "use_cache",
    "clear_cache",
    "cache_stats",
]


@dataclass
class CacheStats:
    """Counters exposed for tests, the CLI, and the benchmark harness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _blocks_nbytes(blocks: StoredBlocks) -> int:
    return int(
        blocks.q.nbytes
        + blocks.lens.nbytes
        + blocks.stored_mask.nbytes
        + blocks.const_outliers.nbytes
        + blocks.const_lens.nbytes
    )


def _freeze(blocks: StoredBlocks) -> StoredBlocks:
    for arr in (
        blocks.q,
        blocks.lens,
        blocks.stored_mask,
        blocks.const_outliers,
        blocks.const_lens,
    ):
        arr.setflags(write=False)
    return blocks


class DecodedBlockCache:
    """Thread-safe LRU over decoded :class:`StoredBlocks`.

    Parameters
    ----------
    max_entries : maximum number of cached streams (LRU beyond that).
    max_bytes : total decoded-array budget; entries larger than the whole
        budget are returned uncached rather than thrashing the LRU.
    """

    # Lock discipline (verified lexically by `repro.cli lint`'s lockcheck
    # pass): every mutation of these attributes must hold self._lock; the
    # `_evict_locked` naming convention marks helpers that require the
    # caller to already hold it.
    _GUARDED_ATTRS = ("_entries", "_nbytes", "stats")

    def __init__(self, max_entries: int = 32, max_bytes: int = 256 << 20) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[str, tuple[StoredBlocks, int]] = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ core

    def get_blocks(self, c: SZOpsCompressed) -> StoredBlocks:
        """Return the decoded quantized view of ``c``, decoding at most once."""
        key = c.content_fingerprint()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry[0]
            self.stats.misses += 1
        blocks = _freeze(decode_stored_blocks(c))
        size = _blocks_nbytes(blocks)
        if size > self.max_bytes:
            return blocks
        with self._lock:
            if key not in self._entries:
                self._entries[key] = (blocks, size)
                self._nbytes += size
                self._evict_locked()
        return blocks

    def _evict_locked(self) -> None:
        while self._entries and (
            len(self._entries) > self.max_entries or self._nbytes > self.max_bytes
        ):
            _, (_, size) = self._entries.popitem(last=False)
            self._nbytes -= size
            self.stats.evictions += 1

    # ------------------------------------------------------------------ admin

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, c: SZOpsCompressed) -> bool:
        return c.content_fingerprint() in self._entries

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DecodedBlockCache(entries={len(self._entries)}/{self.max_entries}, "
            f"bytes={self._nbytes}/{self.max_bytes}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )


# ---------------------------------------------------------------------------
# process-wide active cache
# ---------------------------------------------------------------------------

_default_cache = DecodedBlockCache()
_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def active_cache() -> DecodedBlockCache | None:
    """The cache ``stored_quantized`` consults, or ``None`` when disabled."""
    stack = _stack()
    if stack:
        return stack[-1]
    return _default_cache


def configure(
    enabled: bool = True,
    max_entries: int | None = None,
    max_bytes: int | None = None,
) -> DecodedBlockCache | None:
    """Replace the process-default cache (or disable it with ``enabled=False``)."""
    global _default_cache
    if not enabled:
        _default_cache = None
        return None
    kwargs = {}
    if max_entries is not None:
        kwargs["max_entries"] = max_entries
    if max_bytes is not None:
        kwargs["max_bytes"] = max_bytes
    _default_cache = DecodedBlockCache(**kwargs)
    return _default_cache


@contextmanager
def use_cache(
    cache: DecodedBlockCache | None,
) -> Iterator[DecodedBlockCache | None]:
    """Scope a specific cache (or ``None``) to the current thread."""
    stack = _stack()
    stack.append(cache)
    try:
        yield cache
    finally:
        stack.pop()


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Run a block with decoded-block caching off (current thread only)."""
    with use_cache(None):
        yield


def clear_cache() -> None:
    """Drop every entry of the active cache (no-op when disabled)."""
    cache = active_cache()
    if cache is not None:
        cache.clear()


def cache_stats() -> CacheStats | None:
    """Counters of the active cache, or ``None`` when disabled."""
    cache = active_cache()
    return cache.stats if cache is not None else None
