"""Lazy affine op fusion: compose scalar ops, materialize once.

The paper's motivating workflows are operation *chains* — the climate
anomaly of §VI is literally negate/shift/scale/reduce — yet each eager
partially-decompressed operation pays its own BF⁻¹ + Lorenzo⁻¹ decode and
(for multiplication) a full re-encode.  :class:`LazyStream` instead records
the pending transform symbolically and spends the decode/encode budget
exactly once, when a reduction, serialization, or explicit
:meth:`~LazyStream.materialize` forces it.

Pending transforms are sequences of two primitive quantized-domain steps:

* ``IntAffine(sigma, shift)`` — ``q -> sigma*q + shift`` with ``sigma`` in
  {+1, -1} and an integer ``shift``.  Negation and quantized scalar
  add/subtract are exactly these, and consecutive ones fold: a whole
  negate/add/sub run collapses to a single step.
* ``Requantize(s_rep)`` — ``q -> round(q * s_rep)``, the scalar-multiply
  kernel.  Requantization rounds, so it never folds across another step —
  keeping it as a barrier is what makes fused chains *bit-identical* to
  applying the ops eagerly one at a time (the eager chain performs the same
  integer ops exactly and rounds at the same points).

Materialization strategy:

* a pending transform that is purely ``IntAffine`` materializes in **fully
  compressed space** (sign-bitmap flip + outlier shift) — no decode at all;
* any transform containing a ``Requantize`` decodes the stored blocks once
  (through the decoded-block cache), applies every step vectorized, and
  re-encodes once via the same :func:`~repro.core.ops._partial.rebuild_stored`
  path eager multiplication uses;
* reductions (:meth:`mean`, :meth:`variance`, :meth:`std`, :meth:`minimum`,
  :meth:`maximum`) skip the re-encode entirely: they fold the pending
  transform into the block partial sums, so ``k`` scalar ops + reduction
  cost one decode and zero encodes.

Exactness notes: ``mean``/``minimum``/``maximum`` of a fused chain equal
the eager results bit for bit as long as quantized magnitudes stay below
2^53 (integer sums are exact in float64 and the closed-form constant-block
split cannot change them).  ``variance``/``std`` accumulate squared
*float* deviations, so when a multiplication turns a stored block constant
the eager path's closed form groups terms differently — agreement there is
to float64 rounding (~1e-12 relative), not bitwise.  Overflow checking for
multiplications happens at materialization/reduction time rather than at
call time; the error raised is the same :class:`OperationError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import (
    Q_LIMIT,
    StoredBlocks,
    rebuild_stored,
    requantize,
    stored_quantized,
)
from repro.core.ops.negate import negate as eager_negate
from repro.core.ops.reductions import _quantized_sq_dev, _quantized_sum
from repro.core.ops.scalar_add import quantized_scalar_shift, shift_outliers
from repro.core.quantize import dequantize, quantize_scalar
from repro.runtime.reduce import Executor

__all__ = ["LazyStream", "IntAffine", "Requantize", "lazy"]


@dataclass(frozen=True)
class IntAffine:
    """Exact integer step ``q -> sigma * q + shift`` (sigma in {+1, -1})."""

    sigma: int
    shift: int

    def apply(self, q: np.ndarray) -> np.ndarray:
        out = -q if self.sigma < 0 else q.copy()
        shift = int(self.shift)
        if shift and out.size:
            # Same guard as shift_outliers: a fused chain can accumulate a
            # shift the eager path would have rejected step by step, and an
            # unguarded += here wraps int64 silently instead of raising.
            peak = int(np.abs(out).max()) + abs(shift)
            if peak >= int(Q_LIMIT):
                raise OperationError(
                    "fused scalar shift overflows the quantized integer "
                    "range; use a larger error bound or a smaller scalar"
                )
            out += shift
        return out

    @property
    def is_identity(self) -> bool:
        return self.sigma == 1 and self.shift == 0


@dataclass(frozen=True)
class Requantize:
    """Rounding step ``q -> round(q * s_rep)`` (scalar multiplication)."""

    s_rep: float

    def apply(self, q: np.ndarray) -> np.ndarray:
        return requantize(q, self.s_rep)


Step = IntAffine | Requantize


class LazyStream:
    """A compressed stream plus a pending fused ``(a·x + b)``-style transform.

    Immutable: every operation returns a new ``LazyStream`` sharing the base
    container, so a partially built chain can be forked freely.  The base
    container itself is never mutated.

    >>> import numpy as np
    >>> from repro import SZOps
    >>> from repro.runtime import lazy
    >>> codec = SZOps()
    >>> data = np.cumsum(np.random.default_rng(0).normal(size=4096)) * 1e-2
    >>> c = codec.compress(data, 1e-3)
    >>> chain = lazy(c).negate().scalar_multiply(0.1)
    >>> chain.pending_ops
    2
    >>> mu = chain.mean()          # one decode, no encode
    >>> out = chain.materialize()  # same decode (cached), one encode
    """

    __slots__ = ("base", "steps")

    def __init__(self, base: SZOpsCompressed, steps: tuple[Step, ...] = ()) -> None:
        if isinstance(base, LazyStream):  # idempotent wrapping
            steps = base.steps + tuple(steps)
            base = base.base
        self.base = base
        self.steps = tuple(steps)

    # ------------------------------------------------------------------ meta

    @property
    def eps(self) -> float:
        return self.base.eps

    @property
    def shape(self) -> tuple[int, ...]:
        return self.base.shape

    @property
    def n_elements(self) -> int:
        return self.base.n_elements

    @property
    def pending_ops(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LazyStream(shape={self.base.shape}, eps={self.base.eps:g}, "
            f"steps={list(self.steps)!r})"
        )

    # ------------------------------------------------------------------ fusable ops

    def _push_affine(self, sigma: int, shift: int) -> "LazyStream":
        steps = list(self.steps)
        if steps and isinstance(steps[-1], IntAffine):
            last = steps[-1]
            folded = IntAffine(last.sigma * sigma, sigma * last.shift + shift)
            if folded.is_identity:
                steps.pop()
            else:
                steps[-1] = folded
        else:
            step = IntAffine(sigma, shift)
            if not step.is_identity:
                steps.append(step)
        return LazyStream(self.base, tuple(steps))

    def negate(self) -> "LazyStream":
        """Fuse an elementwise negation (exact, folds with adds/subs)."""
        return self._push_affine(-1, 0)

    def scalar_add(self, s: float) -> "LazyStream":
        """Fuse ``+ s``; the scalar is quantized now, at the stream's eps."""
        return self._push_affine(1, quantize_scalar(s, self.base.eps))

    def scalar_subtract(self, s: float) -> "LazyStream":
        """Fuse ``- s`` (quantized-scalar deduction, like the eager op)."""
        return self._push_affine(1, -quantize_scalar(s, self.base.eps))

    def scalar_multiply(self, s: float) -> "LazyStream":
        """Fuse ``* s``.  Overflow is checked when the chain is forced."""
        try:
            _, s_rep = quantized_scalar_shift(s, self.base.eps)
        except (OverflowError, ValueError) as exc:
            raise OperationError(
                f"scalar {s!r} cannot be quantized at eps {self.base.eps!r}: {exc}"
            ) from None
        return LazyStream(self.base, self.steps + (Requantize(s_rep),))

    def apply(self, name: str, scalar: float | None = None) -> "LazyStream":
        """Fuse a named Table II pointwise operation (dispatch helper)."""
        if name == "negation":
            return self.negate()
        if name == "scalar_add":
            return self.scalar_add(scalar)
        if name == "scalar_subtract":
            return self.scalar_subtract(scalar)
        if name == "scalar_multiply":
            return self.scalar_multiply(scalar)
        raise OperationError(f"operation {name!r} is not fusable")

    # ------------------------------------------------------------------ forcing

    def _transformed_blocks(self) -> StoredBlocks:
        """Decode once (cached) and apply every pending step vectorized."""
        blocks = stored_quantized(self.base)
        q = blocks.q
        const = blocks.const_outliers
        for step in self.steps:
            q = step.apply(q)
            const = step.apply(const)
        if q is blocks.q:
            return blocks
        return StoredBlocks(
            q=q,
            lens=blocks.lens,
            stored_mask=blocks.stored_mask,
            const_outliers=const,
            const_lens=blocks.const_lens,
        )

    def materialize(self) -> SZOpsCompressed:
        """Force the pending transform into a new compressed container.

        A purely integer-affine transform is applied in fully compressed
        space (bitmap flip + outlier shift, exactly the eager negation /
        scalar-add kernels); a transform containing a requantization decodes
        the stored blocks once and re-encodes once.
        """
        if not self.steps:
            return self.base.copy()
        if all(isinstance(s, IntAffine) for s in self.steps):
            # Folding leaves at most one IntAffine between barriers, and no
            # barriers exist here — a single compressed-space application.
            (step,) = self.steps
            out = eager_negate(self.base) if step.sigma < 0 else self.base.copy()
            if step.shift:
                shift_outliers(out, step.shift)
            return out
        blocks = self._transformed_blocks()
        return rebuild_stored(self.base, blocks, blocks.q, blocks.const_outliers)

    collapse = materialize

    # ------------------------------------------------------------------ reductions

    def mean(self, executor: Executor | None = None) -> float:
        """Mean of the transformed stream — one decode, no encode.

        Bit-identical to ``ops.mean(chain materialized eagerly)`` while the
        quantized sums stay inside float64's exact-integer range (< 2^53).
        """
        blocks = self._transformed_blocks()
        total = _reduce_sum(blocks, executor)
        return 2.0 * self.base.eps * (total / self.base.n_elements)

    def variance(self, ddof: int = 0, executor: Executor | None = None) -> float:
        """Variance of the transformed stream (two-pass, quantized domain)."""
        n = self.base.n_elements
        if n - ddof <= 0:
            raise ValueError(f"variance needs n - ddof > 0, got n={n}, ddof={ddof}")
        blocks = self._transformed_blocks()
        mu_q = _reduce_sum(blocks, executor) / n
        ssd = _reduce_sq_dev(blocks, mu_q, executor)
        return (2.0 * self.base.eps) ** 2 * (ssd / (n - ddof))

    def std(self, ddof: int = 0, executor: Executor | None = None) -> float:
        """Standard deviation of the transformed stream."""
        return math.sqrt(self.variance(ddof=ddof, executor=executor))

    def minimum(self) -> float:
        blocks = self._transformed_blocks()
        lo = [int(blocks.q.min())] if blocks.q.size else []
        if blocks.const_outliers.size:
            lo.append(int(blocks.const_outliers.min()))
        if not lo:
            raise ValueError("cannot take the minimum of an empty container")
        return 2.0 * self.base.eps * min(lo)

    def maximum(self) -> float:
        blocks = self._transformed_blocks()
        hi = [int(blocks.q.max())] if blocks.q.size else []
        if blocks.const_outliers.size:
            hi.append(int(blocks.const_outliers.max()))
        if not hi:
            raise ValueError("cannot take the maximum of an empty container")
        return 2.0 * self.base.eps * max(hi)

    def quantized_moments(self) -> tuple[float, float, int, int, int]:
        """``(sum_q, sumsq_q, min_q, max_q, count)`` of the transformed stream.

        Everything stays in the *quantized integer* domain — no ``2*eps``
        scaling — so partials from disjoint chunks of one array combine
        exactly: quantized values are exact float64 integers, integer
        addition in float64 is exact below 2**53, and exact additions are
        associative.  That associativity is what lets ``repro.cluster``
        tree-combine per-shard moments into totals bit-identical to the
        whole-array sums (``sumsq_q`` needs the stronger bound
        ``sum(q**2) < 2**53``, which every bundled dataset satisfies).
        Constant blocks contribute in closed form, same as
        :func:`repro.core.ops.reductions._quantized_sum`.
        """
        blocks = self._transformed_blocks()
        s = 0.0
        s2 = 0.0
        lo: list[int] = []
        hi: list[int] = []
        if blocks.q.size:
            qf = blocks.q.astype(np.float64)
            s += float(qf.sum())
            s2 += float(np.dot(qf, qf))
            lo.append(int(blocks.q.min()))
            hi.append(int(blocks.q.max()))
        if blocks.const_outliers.size:
            of = blocks.const_outliers.astype(np.float64)
            s += float((of * blocks.const_lens).sum())
            s2 += float((of * of * blocks.const_lens).sum())
            lo.append(int(blocks.const_outliers.min()))
            hi.append(int(blocks.const_outliers.max()))
        if not lo:
            raise ValueError("cannot compute moments of an empty container")
        return s, s2, min(lo), max(hi), self.base.n_elements

    def summary_statistics(
        self, ddof: int = 0, executor: Executor | None = None
    ) -> dict[str, float]:
        """Mean, variance and std of the transformed stream in one decode."""
        n = self.base.n_elements
        blocks = self._transformed_blocks()
        mu_q = _reduce_sum(blocks, executor) / n
        ssd = _reduce_sq_dev(blocks, mu_q, executor)
        var = (2.0 * self.base.eps) ** 2 * (ssd / (n - ddof))
        return {
            "mean": 2.0 * self.base.eps * mu_q,
            "variance": var,
            "std": math.sqrt(var),
        }

    # ------------------------------------------------------------------ decode

    def quantized(self) -> np.ndarray:
        """Transformed quantized integers in element order (no encode)."""
        blocks = self._transformed_blocks()
        lens = self.base.layout.lengths()
        n = int(lens.sum())
        q = np.empty(n, dtype=np.int64)
        stored_elems = np.repeat(blocks.stored_mask, lens)
        if blocks.q.size:
            q[stored_elems] = blocks.q
        if blocks.const_outliers.size:
            q[~stored_elems] = np.repeat(blocks.const_outliers, blocks.const_lens)
        return q

    def decompress(self) -> np.ndarray:
        """Float reconstruction of the transformed stream (no encode)."""
        return dequantize(self.quantized(), self.base.eps, self.base.dtype).reshape(
            self.base.shape
        )

    def to_bytes(self) -> bytes:
        """Serialize — a forcing point: materializes, then ``to_bytes``."""
        return self.materialize().to_bytes()


def _reduce_sum(blocks: StoredBlocks, executor: Executor | None) -> float:
    if executor is None:
        return _quantized_sum(blocks)
    from repro.runtime.reduce import chunked_quantized_sum

    return chunked_quantized_sum(blocks, executor)


def _reduce_sq_dev(
    blocks: StoredBlocks, mu_q: float, executor: Executor | None
) -> float:
    if executor is None:
        return _quantized_sq_dev(blocks, mu_q)
    from repro.runtime.reduce import chunked_quantized_sq_dev

    return chunked_quantized_sq_dev(blocks, mu_q, executor)


def lazy(c: SZOpsCompressed | LazyStream) -> LazyStream:
    """Wrap a compressed container for fused chaining (idempotent)."""
    if isinstance(c, LazyStream):
        return c
    return LazyStream(c)
