"""Measurement substrate: timing, throughput, ratio and distortion metrics."""

from repro.metrics.error import max_abs_error, nrmse, psnr
from repro.metrics.ratio import aggregate_ratio, compression_ratio, mean_ratio
from repro.metrics.throughput import gb_per_s, mb_per_s
from repro.metrics.timing import Timer, TimingBreakdown, time_call

__all__ = [
    "Timer",
    "TimingBreakdown",
    "time_call",
    "mb_per_s",
    "gb_per_s",
    "compression_ratio",
    "mean_ratio",
    "aggregate_ratio",
    "max_abs_error",
    "psnr",
    "nrmse",
]
