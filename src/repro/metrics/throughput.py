"""Throughput accounting (Table IV and Figure 6 units)."""

from __future__ import annotations

__all__ = ["mb_per_s", "gb_per_s"]

_MB = 1000.0 * 1000.0
_GB = _MB * 1000.0


def mb_per_s(nbytes: int, seconds: float) -> float:
    """Decimal megabytes per second (Table IV's unit)."""
    if seconds <= 0:
        return float("inf")
    return nbytes / _MB / seconds


def gb_per_s(nbytes: int, seconds: float) -> float:
    """Decimal gigabytes per second (Figure 6's unit)."""
    if seconds <= 0:
        return float("inf")
    return nbytes / _GB / seconds
