"""Compression-ratio accounting (Table VII)."""

from __future__ import annotations

import numpy as np

__all__ = ["compression_ratio", "mean_ratio", "aggregate_ratio"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """Original bytes over compressed bytes."""
    return original_nbytes / max(compressed_nbytes, 1)


def mean_ratio(ratios) -> float:
    """Arithmetic mean of per-field ratios.

    This is how we aggregate Table VII (the paper says "average compression
    ratios" without specifying; EXPERIMENTS.md records the choice).
    """
    arr = np.asarray(list(ratios), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no ratios to aggregate")
    return float(arr.mean())


def aggregate_ratio(original_nbytes, compressed_nbytes) -> float:
    """Size-weighted aggregate: total original over total compressed."""
    orig = int(np.sum(list(original_nbytes)))
    comp = int(np.sum(list(compressed_nbytes)))
    return compression_ratio(orig, comp)
