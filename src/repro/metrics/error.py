"""Distortion metrics (re-exported from the core validation utilities)."""

from __future__ import annotations

import numpy as np

from repro.core.validate import max_abs_error, psnr

__all__ = ["max_abs_error", "psnr", "nrmse"]


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Range-normalized root-mean-square error."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    rng = float(a.max() - a.min()) if a.size else 0.0
    if rng == 0.0:
        return 0.0 if np.array_equal(a, b) else float("inf")
    return float(np.sqrt(np.mean((a - b) ** 2)) / rng)
