"""Timing utilities for the evaluation harness.

The paper reports per-kernel time costs (Figure 5) and end-to-end
throughputs (Figure 6, Table IV).  These helpers standardize how the
benchmarks measure both: monotonic wall-clock, best-of-N repetition to
suppress scheduler noise, and a named breakdown container matching the
decompress / operate / compress split of the traditional workflow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "time_call", "TimingBreakdown"]


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._t0


def time_call(fn, *args, repeats: int = 3, **kwargs):
    """Run ``fn`` ``repeats`` times; return (last result, best seconds)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return result, best


@dataclass
class TimingBreakdown:
    """Per-stage seconds of one operation workflow.

    The traditional workflow fills all three stages; the SZOps workflow
    reports its single kernel under ``operate`` (its partial decode and
    re-encode are part of the kernel, per the paper's Figure 5 caption).
    """

    decompress: float = 0.0
    operate: float = 0.0
    compress: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.decompress + self.operate + self.compress

    def as_row(self) -> dict[str, float]:
        return {
            "decompress_s": self.decompress,
            "operate_s": self.operate,
            "compress_s": self.compress,
            "total_s": self.total,
        }
