"""Entropy-coding substrate: canonical Huffman, zero-RLE, DEFLATE backend."""

from repro.encoding.deflate import DEFAULT_LEVEL, deflate, inflate
from repro.encoding.huffman import (
    MAX_CODE_LENGTH,
    HuffmanCodebook,
    huffman_decode,
    huffman_encode,
)
from repro.encoding.rle import rle_decode_zeros, rle_encode_zeros

__all__ = [
    "DEFAULT_LEVEL",
    "deflate",
    "inflate",
    "MAX_CODE_LENGTH",
    "HuffmanCodebook",
    "huffman_decode",
    "huffman_encode",
    "rle_decode_zeros",
    "rle_encode_zeros",
]
