"""Zero-run-length coding for sparse integer streams.

Quantization-code streams from very smooth or very sparse fields (the
SCALE-LETKF stand-in especially) are dominated by zeros.  This helper
collapses zero runs before entropy coding; the SZ3-class baseline applies
it when it pays (the header records whether it was used).

Encoding: the stream is rewritten as ``(values, run_lengths)`` pairs where
``values`` are the non-zero entries plus a 0 sentinel per zero-run and
``run_lengths`` hold each zero run's length.  This keeps everything as two
dense integer arrays, which the caller entropy-codes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rle_encode_zeros", "rle_decode_zeros"]


def rle_encode_zeros(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a stream into (tokens, zero-run lengths).

    ``tokens`` preserves order: non-zero values appear verbatim; each
    maximal run of zeros is replaced by a single 0 token.  ``runs`` holds
    the length of each zero run, in token order.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.size == 0:
        return v.copy(), np.zeros(0, dtype=np.int64)
    is_zero = v == 0
    # Boundaries of zero runs.
    padded = np.concatenate(([False], is_zero, [False]))
    starts = np.flatnonzero(~padded[:-1] & padded[1:])
    ends = np.flatnonzero(padded[:-1] & ~padded[1:])
    runs = (ends - starts).astype(np.int64)
    keep = ~is_zero
    keep[starts] = True  # keep one sentinel zero per run
    tokens = v[keep]
    return tokens, runs


def rle_decode_zeros(tokens: np.ndarray, runs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode_zeros`."""
    tokens = np.asarray(tokens, dtype=np.int64)
    runs = np.asarray(runs, dtype=np.int64)
    zero_slots = np.flatnonzero(tokens == 0)
    if zero_slots.size != runs.size:
        raise ValueError(
            f"token stream has {zero_slots.size} zero runs but {runs.size} "
            "run lengths were provided"
        )
    repeats = np.ones(tokens.size, dtype=np.int64)
    repeats[zero_slots] = runs
    return np.repeat(tokens, repeats)
