"""DEFLATE backend standing in for Zstd.

The SZ family finishes its pipeline with a general-purpose lossless pass
(Zstd in the reference implementations).  This offline environment only
ships the standard library, so we use zlib's DEFLATE — same role in the
pipeline, slightly lower ratio and speed than Zstd, which does not affect
any of the paper's orderings (documented in DESIGN.md's substitution table).
"""

from __future__ import annotations

import zlib

__all__ = ["deflate", "inflate", "DEFAULT_LEVEL"]

DEFAULT_LEVEL = 6


def deflate(data: bytes, level: int = DEFAULT_LEVEL) -> bytes:
    """Compress a byte string with DEFLATE."""
    return zlib.compress(data, level)


def inflate(data: bytes) -> bytes:
    """Decompress a DEFLATE byte string."""
    return zlib.decompress(data)
