"""Canonical Huffman coding over a bounded integer alphabet.

SZ-family compressors (SZ1/SZ2/SZ3) entropy-code their quantization codes
with Huffman coding followed by a general-purpose lossless pass; this module
provides that Huffman stage for the SZ2-/SZ3-class baselines.

Design notes
------------
* Codes are *canonical*: only the per-symbol code lengths are serialized;
  both sides rebuild identical codebooks from the lengths.
* Code lengths are limited to :data:`MAX_CODE_LENGTH` bits (frequency
  halving, the classic zlib trick) so decoding can use a flat
  ``2**MAX_CODE_LENGTH`` lookup table.
* Encoding is vectorized by grouping symbols by code length (at most 16
  groups) and scattering their bits at prefix-sum offsets — the same
  strategy as the SZOps fixed-length encoder.
* Decoding is necessarily sequential (variable-length codes); the inner
  loop peeks 32-bit windows out of a padded byte string and walks a flat
  Python-list LUT, which is the fastest portable pure-Python approach.
  The paper's reproduction bands flag this as the expected slow spot; it
  only affects the baseline codecs, never SZOps itself.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.bitstream import (
    AUTO_KERNEL,
    BitpackKernel,
    exclusive_cumsum,
    pack_bits,
    resolve_kernel,
)

__all__ = ["MAX_CODE_LENGTH", "HuffmanCodebook", "huffman_encode", "huffman_decode"]

MAX_CODE_LENGTH = 16


def _huffman_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol from frequencies (0 for unused symbols)."""
    freqs = np.asarray(freqs, dtype=np.int64)
    used = np.flatnonzero(freqs > 0)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if used.size == 0:
        return lengths
    if used.size == 1:
        lengths[used[0]] = 1
        return lengths
    # Standard heap construction tracking each merge's depth contribution.
    heap: list[tuple[int, int, list[int]]] = [
        (int(freqs[s]), int(s), [int(s)]) for s in used
    ]
    heapq.heapify(heap)
    depth = np.zeros(freqs.size, dtype=np.int64)
    tiebreak = int(freqs.size)
    while len(heap) > 1:
        fa, _, syms_a = heapq.heappop(heap)
        fb, _, syms_b = heapq.heappop(heap)
        merged = syms_a + syms_b
        depth[merged] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, merged))
        tiebreak += 1
    lengths[used] = depth[used]
    return lengths


def _limited_lengths(freqs: np.ndarray) -> np.ndarray:
    """Huffman lengths capped at MAX_CODE_LENGTH via frequency halving."""
    f = np.asarray(freqs, dtype=np.int64).copy()
    while True:
        lengths = _huffman_lengths(f)
        if lengths.size == 0 or int(lengths.max(initial=0)) <= MAX_CODE_LENGTH:
            return lengths
        f = (f + 1) // 2
        # keep used symbols used: halving never zeroes a positive count
        # because of the +1, so the alphabet is stable across iterations.


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes (as uint32) from code lengths."""
    lengths = np.asarray(lengths, dtype=np.uint8)
    codes = np.zeros(lengths.size, dtype=np.uint32)
    used = np.flatnonzero(lengths > 0)
    if used.size == 0:
        return codes
    # Sort by (length, symbol); assign increasing code values, shifting one
    # bit left whenever the length grows.
    order = used[np.lexsort((used, lengths[used]))]
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        cur_len = int(lengths[sym])
        code <<= cur_len - prev_len
        codes[sym] = code
        code += 1
        prev_len = cur_len
    return codes


@dataclass
class HuffmanCodebook:
    """Canonical codebook: lengths define everything."""

    lengths: np.ndarray  # uint8 per symbol (0 = unused)
    codes: np.ndarray  # uint32 per symbol

    @classmethod
    def from_frequencies(cls, freqs: np.ndarray) -> "HuffmanCodebook":
        lengths = _limited_lengths(freqs)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @classmethod
    def from_lengths(cls, lengths: np.ndarray) -> "HuffmanCodebook":
        lengths = np.asarray(lengths, dtype=np.uint8)
        return cls(lengths=lengths, codes=_canonical_codes(lengths))

    @property
    def alphabet_size(self) -> int:
        return int(self.lengths.size)

    def serialized_lengths(self) -> bytes:
        """Length table as raw bytes (callers typically DEFLATE this)."""
        return self.lengths.tobytes()

    def build_decode_table(self) -> tuple[list[int], list[int]]:
        """Flat LUT: 16-bit window -> (symbol, code length)."""
        lut_sym = [0] * (1 << MAX_CODE_LENGTH)
        lut_len = [0] * (1 << MAX_CODE_LENGTH)
        for sym in np.flatnonzero(self.lengths > 0):
            clen = int(self.lengths[sym])
            code = int(self.codes[sym])
            base = code << (MAX_CODE_LENGTH - clen)
            span = 1 << (MAX_CODE_LENGTH - clen)
            lut_sym[base : base + span] = [int(sym)] * span
            lut_len[base : base + span] = [clen] * span
        return lut_sym, lut_len


def huffman_encode(
    symbols: np.ndarray,
    book: HuffmanCodebook,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> tuple[bytes, int]:
    """Encode a symbol stream; returns (payload bytes, total bits).

    Vectorized: one scatter per distinct code length, with the per-length
    bit expansion routed through the configured bitpack kernel.
    """
    syms = np.asarray(symbols, dtype=np.int64)
    if syms.size == 0:
        return b"", 0
    lens = book.lengths[syms].astype(np.int64)
    if int(lens.min(initial=1)) == 0:
        bad = int(syms[lens == 0][0])
        raise ValueError(f"symbol {bad} has no code (zero frequency at build time)")
    kern = resolve_kernel(kernel, size=syms.size)
    offsets = exclusive_cumsum(lens)
    total = int(lens.sum())
    bits = np.zeros(total, dtype=np.uint8)
    code_vals = book.codes[syms].astype(np.uint64)
    for clen in np.unique(lens):
        clen = int(clen)
        sel = lens == clen
        group = kern.bits_of(code_vals[sel], clen).reshape(-1, clen)
        idx = (offsets[sel][:, None] + np.arange(clen, dtype=np.int64)[None, :]).ravel()
        bits[idx] = group.ravel()
    return pack_bits(bits).tobytes(), total


def huffman_decode(
    payload: bytes, n_symbols: int, book: HuffmanCodebook
) -> np.ndarray:
    """Decode ``n_symbols`` symbols from a Huffman payload.

    Sequential by nature; the hot loop peeks 32-bit big-endian windows from
    a zero-padded byte string and consults a flat LUT.
    """
    if n_symbols == 0:
        return np.zeros(0, dtype=np.int64)
    lut_sym, lut_len = book.build_decode_table()
    buf = payload + b"\x00\x00\x00\x00"
    out = [0] * n_symbols
    pos = 0
    from_bytes = int.from_bytes  # local alias for loop speed
    for i in range(n_symbols):
        bp = pos >> 3
        sh = pos & 7
        window = from_bytes(buf[bp : bp + 4], "big")
        idx = (window >> (16 - sh)) & 0xFFFF
        clen = lut_len[idx]
        if clen == 0:
            raise ValueError(f"corrupt Huffman stream at bit {pos}")
        out[i] = lut_sym[idx]
        pos += clen
    if pos > len(payload) * 8:
        raise ValueError("Huffman stream truncated")
    return np.asarray(out, dtype=np.int64)
