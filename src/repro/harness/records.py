"""Persisting experiment results to disk (results/*.md, EXPERIMENTS.md)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.runner import ExperimentResult
from repro.harness.tables import render_table

__all__ = ["render_result", "save_result", "save_bench_json"]


def render_result(result: ExperimentResult) -> str:
    """Render one experiment as a markdown section."""
    parts = [render_table(result.headers, result.rows, title=result.title)]
    if result.notes:
        parts.append("")
        parts.extend(f"> {note}" for note in result.notes)
    return "\n".join(parts) + "\n"


def save_result(result: ExperimentResult, results_dir: str | Path = "results") -> Path:
    """Write ``results/<exp_id>.md`` and return the path."""
    out_dir = Path(results_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.exp_id}.md"
    path.write_text(render_result(result), encoding="utf-8")
    return path


def save_bench_json(payload: dict, path: str | Path) -> Path:
    """Write a machine-readable benchmark record (e.g. BENCH_runtime.json)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out
