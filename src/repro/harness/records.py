"""Persisting experiment results to disk (results/*.md, EXPERIMENTS.md)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.runner import ExperimentResult
from repro.harness.tables import render_table

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "load_bench_json",
    "render_result",
    "save_result",
    "save_bench_json",
]

#: Version stamped into every ``BENCH_*.json`` snapshot.  Version 1 is the
#: historical unstamped shape (no ``schema_version`` / ``git_sha`` keys);
#: version 2 adds both.  :func:`load_bench_json` reads either.
BENCH_SCHEMA_VERSION = 2


def render_result(result: ExperimentResult) -> str:
    """Render one experiment as a markdown section."""
    parts = [render_table(result.headers, result.rows, title=result.title)]
    if result.notes:
        parts.append("")
        parts.extend(f"> {note}" for note in result.notes)
    return "\n".join(parts) + "\n"


def save_result(result: ExperimentResult, results_dir: str | Path = "results") -> Path:
    """Write ``results/<exp_id>.md`` and return the path."""
    out_dir = Path(results_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.exp_id}.md"
    path.write_text(render_result(result), encoding="utf-8")
    return path


def save_bench_json(payload: dict, path: str | Path) -> Path:
    """Write a machine-readable benchmark record (e.g. BENCH_runtime.json).

    Every snapshot is stamped with ``schema_version`` and the producing
    ``git_sha`` before hitting disk (historical snapshots carried
    neither, which made trajectory comparisons guesswork); the caller's
    payload wins if it already set either key.
    """
    from repro.harness.experiments.artifacts import git_sha

    stamped = dict(payload)
    stamped.setdefault("schema_version", BENCH_SCHEMA_VERSION)
    stamped.setdefault("git_sha", git_sha())
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out


def load_bench_json(path: str | Path) -> dict:
    """Read a ``BENCH_*.json`` snapshot, old shape or new.

    Pre-stamping snapshots (no ``schema_version`` key) are normalized to
    ``schema_version: 1`` and ``git_sha: "unknown"`` so consumers can
    treat every snapshot uniformly; unknown *newer* versions are
    rejected loudly rather than half-parsed.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict):
        raise ValueError(f"{path} does not hold a JSON benchmark object")
    version = doc.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"{path} has a malformed schema_version: {version!r}")
    if version > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} uses bench schema version {version}; this build reads "
            f"up to {BENCH_SCHEMA_VERSION}"
        )
    doc.setdefault("schema_version", 1)
    doc.setdefault("git_sha", "unknown")
    return doc
