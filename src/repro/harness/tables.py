"""ASCII/markdown table rendering for the experiment harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Human-friendly cell formatting (3 significant-ish digits)."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render a GitHub-markdown table (also readable as plain ASCII)."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def fmt_row(values: Sequence[object]) -> str:
        return "| " + " | ".join(str(v).ljust(w) for v, w in zip(values, widths)) + " |"

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(fmt_row(headers))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)
