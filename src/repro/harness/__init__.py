"""Experiment harness: drivers, rendering, and result persistence."""

from repro.harness.config import BenchConfig, config_from_env
from repro.harness.records import (
    BENCH_SCHEMA_VERSION,
    load_bench_json,
    render_result,
    save_bench_json,
    save_result,
)
from repro.harness.runner import (
    DEFAULT_SCALAR,
    ExperimentResult,
    OpMeasurement,
    largest_dataset,
    measure_ops_matrix,
    prepare_fields,
    run_ablation_constant_blocks,
    run_ablation_format,
    run_figure5,
    run_figure6,
    run_runtime_fusion,
    run_table4,
    run_table6,
    run_table7,
)
from repro.harness.tables import render_table

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchConfig",
    "config_from_env",
    "load_bench_json",
    "render_result",
    "save_result",
    "save_bench_json",
    "render_table",
    "DEFAULT_SCALAR",
    "ExperimentResult",
    "OpMeasurement",
    "measure_ops_matrix",
    "prepare_fields",
    "run_table4",
    "run_figure5",
    "run_figure6",
    "run_table6",
    "run_table7",
    "run_ablation_format",
    "run_ablation_constant_blocks",
    "run_runtime_fusion",
    "largest_dataset",
]
