"""Report rendering: ``report.json`` + markdown from a run's cells.

Output is **byte-stable** for a given run: the JSON document is rendered
with sorted keys and fixed indentation, floats are rounded to a fixed
number of significant digits before serialization, and the markdown is a
pure function of the JSON document.  The golden-file test suite pins
this — a rendering change must bump :data:`REPORT_SCHEMA_VERSION` and
regenerate the goldens, never drift silently.

Timing statistics are repetition-based: every ``*_seconds_reps`` sample
list in a cell's metrics becomes ``{mean, best, ci95, n}``, where
``ci95`` is the half-width of the 95% confidence interval on the mean
(Student's t for small n).
"""

from __future__ import annotations

import json
import math
import sqlite3
from typing import Any, Mapping

from repro.harness.experiments import index as index_mod
from repro.harness.tables import render_table

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "build_report",
    "confidence_interval",
    "render_report_json",
    "render_report_markdown",
    "report_from_index",
]

REPORT_SCHEMA_VERSION = 1

#: Two-sided 95% Student-t critical values for 1..30 degrees of freedom
#: (normal 1.96 beyond).  A static table keeps the report a deterministic
#: pure function of its inputs with no scipy version sensitivity.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def confidence_interval(samples: list[float]) -> dict[str, Any]:
    """Repetition statistics: mean, best, 95% CI half-width, sample count."""
    n = len(samples)
    if n == 0:
        return {"n": 0, "mean": 0.0, "best": 0.0, "ci95": 0.0}
    mean = sum(samples) / n
    if n == 1:
        return {"n": 1, "mean": mean, "best": samples[0], "ci95": 0.0}
    var = sum((s - mean) ** 2 for s in samples) / (n - 1)
    t = _T95[n - 2] if n - 1 <= len(_T95) else 1.96
    return {
        "n": n,
        "mean": mean,
        "best": min(samples),
        "ci95": t * math.sqrt(var / n),
    }


def _round_floats(obj: Any, digits: int = 9) -> Any:
    """Round every float to ``digits`` significant digits (byte stability)."""
    if isinstance(obj, float):
        if obj == 0.0 or not math.isfinite(obj):
            return obj
        return float(f"{obj:.{digits}g}")
    if isinstance(obj, dict):
        return {k: _round_floats(v, digits) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_round_floats(v, digits) for v in obj]
    return obj


def _cell_entry(cell: Mapping[str, Any]) -> dict[str, Any]:
    metrics = cell["metrics"]
    timing: dict[str, Any] = {}
    for key, value in metrics.items():
        if key.endswith("_seconds_reps") and isinstance(value, list):
            timing[key[: -len("_seconds_reps")]] = confidence_interval(
                [float(v) for v in value]
            )
    entry: dict[str, Any] = {
        "cell_index": cell["cell_index"],
        "cell_id": cell["cell_id"],
        "factors": dict(cell["factors"]),
        "ok": bool(cell["ok"]),
        "timing": timing,
    }
    stages = metrics.get("compress_stage_seconds")
    if isinstance(stages, dict):
        total = sum(stages.values())
        entry["stage_breakdown"] = {
            "seconds": dict(stages),
            "fraction": {
                k: (v / total if total > 0 else 0.0) for k, v in stages.items()
            },
        }
    for scalar_key in (
        "compress_throughput_mbs",
        "pack_mlanes_per_s",
        "unpack_mlanes_per_s",
        "speedup",
        "speedup_fused_vs_eager",
        "speedup_batched_vs_unbatched",
        "mean",
        "variance",
        "szops_kernel_seconds",
        "szp_total_seconds",
    ):
        if scalar_key in metrics:
            entry[scalar_key] = metrics[scalar_key]
    service = metrics.get("service")
    if isinstance(service, dict):
        entry["service"] = {
            "throughput_rps": service.get("throughput_rps", 0.0),
            "completed_requests": service.get("completed_requests", 0),
            "total_requests": service.get("total_requests", 0),
            "replies_identical": service.get("replies_identical", False),
        }
    return entry


def build_report(
    manifest: Mapping[str, Any], cells: list[Mapping[str, Any]]
) -> dict[str, Any]:
    """Assemble the ``report.json`` document for one run."""
    entries = [_cell_entry(c) for c in cells]
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "run": {
            "run_id": manifest["run_id"],
            "table": manifest["table"]["name"]
            if isinstance(manifest.get("table"), dict)
            else manifest.get("table_name"),
            "workload": manifest["table"]["workload"]
            if isinstance(manifest.get("table"), dict)
            else manifest.get("workload"),
            "config_hash": manifest["config_hash"],
            "git_sha": manifest["git_sha"],
            "created_utc": manifest["created_utc"],
            "host": dict(manifest["host"]),
            "n_cells": manifest["n_cells"],
        },
        "summary": {
            "n_cells": len(entries),
            "n_ok": sum(1 for e in entries if e["ok"]),
            "all_ok": all(e["ok"] for e in entries) if entries else False,
        },
        "cells": entries,
    }
    return _round_floats(report)


def render_report_json(report: Mapping[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _fmt_ci(stat: Mapping[str, Any]) -> str:
    return f"{1e3 * stat['mean']:.3f} ±{1e3 * stat['ci95']:.3f}"


def render_report_markdown(report: Mapping[str, Any]) -> str:
    """A human-readable rendering of :func:`build_report`'s document."""
    run = report["run"]
    lines = [
        f"# Experiment report: {run['table']} ({run['run_id']})",
        "",
        f"- workload: `{run['workload']}`",
        f"- git SHA: `{run['git_sha']}`",
        f"- config hash: `{run['config_hash']}`",
        f"- created: {run['created_utc']}",
        f"- host: {run['host'].get('platform', 'unknown')}, "
        f"{run['host'].get('cpu_count', '?')} CPU(s)",
        f"- cells: {report['summary']['n_ok']}/{report['summary']['n_cells']} ok"
        + ("" if report["summary"]["all_ok"] else "  **<-- FAILURES**"),
        "",
    ]

    timing_keys: list[str] = sorted(
        {k for e in report["cells"] for k in e["timing"]}
    )
    # Sorted so the rendering is identical whether cells were loaded from
    # an artifact directory (declaration order) or the index (sorted JSON).
    factor_keys: list[str] = sorted(
        report["cells"][0]["factors"] if report["cells"] else []
    )
    headers = (
        ["cell"]
        + factor_keys
        + [f"{k} ms (mean ±ci95)" for k in timing_keys]
        + ["ok"]
    )
    rows = []
    for e in report["cells"]:
        row: list[Any] = [e["cell_index"]]
        row += [str(e["factors"].get(k, "")) for k in factor_keys]
        for k in timing_keys:
            stat = e["timing"].get(k)
            row.append(_fmt_ci(stat) if stat else "-")
        row.append("yes" if e["ok"] else "NO")
        rows.append(row)
    lines.append(render_table(headers, rows, title="Cells"))
    lines.append("")

    staged = [e for e in report["cells"] if "stage_breakdown" in e]
    if staged:
        srows = []
        for e in staged:
            frac = e["stage_breakdown"]["fraction"]
            secs = e["stage_breakdown"]["seconds"]
            srows.append(
                [
                    e["cell_index"],
                    *(f"{1e3 * secs.get(s, 0.0):.3f}" for s in ("QZ", "LZ", "BF")),
                    *(f"{100 * frac.get(s, 0.0):.1f}%" for s in ("QZ", "LZ", "BF")),
                ]
            )
        lines.append(
            render_table(
                ["cell", "QZ ms", "LZ ms", "BF ms", "QZ %", "LZ %", "BF %"],
                srows,
                title="Compress stage breakdown (QZ/LZ/BF)",
            )
        )
        lines.append("")
    return "\n".join(lines)


def report_from_index(
    conn: sqlite3.Connection, run_id: str | None = None
) -> tuple[dict[str, Any], str]:
    """(report document, markdown) for a run stored in the index."""
    rid = run_id or index_mod.latest_run_id(conn)
    run = index_mod.get_run(conn, rid)
    cells = index_mod.get_cells(conn, rid)
    report = build_report(run, cells)
    return report, render_report_markdown(report)
