"""Cell execution: one factor assignment in, one metrics document out.

Five workloads, all routed through the *existing* layers (nothing here
re-implements a kernel):

``pipeline``
    The tentpole factorial: compress the dataset's lead field through the
    chosen :mod:`repro.parallel.backends` execution backend (QZ/LZ/BF
    stage split recorded) with the chosen bitpack ``kernel`` variant,
    decompress, run the backend-routed mean/variance reductions,
    optionally time a fused operation chain of the requested depth
    (``chain_depth``), and optionally drive a real
    :class:`repro.service.server.ThreadedServer` with ``clients``
    closed-loop clients.  Streams, reductions, chain results, and service
    replies are all checked against serial references — the identity
    flags are the regression gate's unconditional half.  Because the
    serial reference stream is compressed with the default kernel, the
    ``stream_identical`` flag doubles as the cross-kernel bit-identity
    proof.

``bitpack``
    The ``szops bench-bitpack`` microbenchmark: per (kernel, width) cell,
    pack/unpack throughput over a fixed random lane array, with payload
    byte-identity vs the ``bitarray`` reference kernel and exact
    round-trip asserted.

``ops_matrix``
    The Figures 5/6 substrate: for one (dataset, op), the SZp traditional
    workflow stage times (decompress / operate / compress) vs the SZOps
    compressed-domain kernel time.

``fusion``
    Wraps :func:`repro.harness.runner.run_runtime_fusion` (the
    BENCH_runtime.json producer) as a single cell.

``service``
    Wraps :func:`repro.service.bench.run_service_bench` (the
    BENCH_service.json producer) as a single cell.

Per-repetition timing samples are kept (``*_seconds_reps``) so the report
layer can attach confidence intervals instead of a bare best-of.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.harness.config import BenchConfig
from repro.harness.experiments.runtable import Cell, RunTable
from repro.metrics import Timer

__all__ = ["ExecutionContext", "WORKLOADS", "execute_cell", "chain_for_depth"]

_BLOCK_SIZE = 64

#: The canonical pointwise op cycle fused chains draw their prefix from.
_CHAIN_CYCLE: tuple[tuple[str, float | None], ...] = (
    ("negation", None),
    ("scalar_add", 0.25),
    ("scalar_multiply", 1.5),
)


def chain_for_depth(depth: int) -> list[tuple[str, float | None]]:
    """A deterministic pointwise chain of the requested depth."""
    if depth < 1:
        raise ValueError("chain depth must be >= 1")
    cycle = list(_CHAIN_CYCLE)
    return [cycle[i % len(cycle)] for i in range(depth)]


def _best_and_reps(
    fn: Callable[[], Any], repeats: int
) -> tuple[float, list[float], Any]:
    """Run ``fn`` ``repeats`` times; return (best_s, all samples, last value)."""
    reps: list[float] = []
    value: Any = None
    for _ in range(repeats):
        with Timer() as t:
            value = fn()
        reps.append(t.seconds)
    return min(reps), reps, value


class ExecutionContext:
    """Shared, cached state across the cells of one run.

    Fields, reference streams, and reference reductions are deterministic
    functions of (dataset, eps, workers) under a fixed
    :class:`BenchConfig`, so they are computed once and reused — the grid
    would otherwise recompress the same field for every backend level.
    """

    def __init__(self, cfg: BenchConfig) -> None:
        self.cfg = cfg
        self._fields: dict[str, tuple[str, np.ndarray]] = {}
        self._serial_streams: dict[tuple[str, float], bytes] = {}
        self._serial_reduce: dict[tuple[str, float, int], tuple[float, float]] = {}
        self._chain_refs: dict[tuple[str, float, int], bytes] = {}
        self._szp_blobs: dict[tuple[str, float], dict[str, Any]] = {}
        self._szops_blobs: dict[tuple[str, float], dict[str, Any]] = {}

    # -- pipeline references ----------------------------------------------

    def lead_field(self, dataset: str) -> tuple[str, np.ndarray]:
        """The dataset's first field at the configured scale (cached)."""
        if dataset not in self._fields:
            from repro.datasets import generate_fields, get_dataset

            fname = get_dataset(dataset).fields[0].name
            arr = generate_fields(
                dataset, scale=self.cfg.scale, seed=self.cfg.seed, fields=[fname]
            )[fname]
            self._fields[dataset] = (fname, arr)
        return self._fields[dataset]

    def serial_stream(self, dataset: str, eps: float) -> bytes:
        """Serial single-worker compressed stream: the bit-identity reference."""
        key = (dataset, eps)
        if key not in self._serial_streams:
            from repro.core.compressor import SZOps

            _, arr = self.lead_field(dataset)
            codec = SZOps(block_size=_BLOCK_SIZE, n_threads=1, backend="serial")
            self._serial_streams[key] = codec.compress(arr, eps).to_bytes()
        return self._serial_streams[key]

    def serial_reduce(
        self, dataset: str, eps: float, workers: int
    ) -> tuple[float, float]:
        """Serial-backend (mean, variance) at this worker count's chunking.

        Variance partials depend on the chunk layout, so the reference is
        per worker count — the same convention ``run_parallel_backends``
        uses.
        """
        key = (dataset, eps, workers)
        if key not in self._serial_reduce:
            from repro.core.format import SZOpsCompressed
            from repro.parallel.backends import get_backend
            from repro.runtime.reduce import parallel_mean, parallel_variance

            stream = SZOpsCompressed.from_bytes(self.serial_stream(dataset, eps))
            with get_backend("serial", workers) as be:
                self._serial_reduce[key] = (
                    parallel_mean(stream, be),
                    parallel_variance(stream, be),
                )
        return self._serial_reduce[key]

    def chain_reference(self, dataset: str, eps: float, depth: int) -> bytes:
        """Eager (unfused) chain result bytes: the fusion identity reference."""
        key = (dataset, eps, depth)
        if key not in self._chain_refs:
            from repro.core.format import SZOpsCompressed
            from repro.core.ops.dispatch import apply_chain

            stream = SZOpsCompressed.from_bytes(self.serial_stream(dataset, eps))
            out = apply_chain(stream, chain_for_depth(depth), fused=False)
            self._chain_refs[key] = out.to_bytes()
        return self._chain_refs[key]

    # -- ops-matrix blobs --------------------------------------------------

    def workflow_blobs(self, dataset: str, eps: float) -> tuple[Any, Any, Any, Any, int]:
        """(szp codec, szops codec, szp blobs, szops blobs, total bytes)."""
        key = (dataset, eps)
        if key not in self._szp_blobs:
            from repro.baselines import make_codec
            from repro.core.compressor import SZOps
            from repro.harness.runner import prepare_fields

            fields = prepare_fields(self.cfg, dataset)
            szp = make_codec("SZp", block_size=_BLOCK_SIZE)
            szops = SZOps(block_size=_BLOCK_SIZE)
            self._szp_blobs[key] = {
                "codec": szp,
                "blobs": {f: szp.compress(a, eps) for f, a in fields.items()},
                "bytes": sum(a.nbytes for a in fields.values()),
            }
            self._szops_blobs[key] = {
                "codec": szops,
                "blobs": {f: szops.compress(a, eps) for f, a in fields.items()},
            }
        szp_entry = self._szp_blobs[key]
        szops_entry = self._szops_blobs[key]
        return (
            szp_entry["codec"],
            szops_entry["codec"],
            szp_entry["blobs"],
            szops_entry["blobs"],
            szp_entry["bytes"],
        )


# --------------------------------------------------------------------------
# Workload: pipeline (the factorial tentpole)
# --------------------------------------------------------------------------


def _run_pipeline_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    from repro.core.compressor import SZOps
    from repro.core.format import SZOpsCompressed
    from repro.core.ops.dispatch import apply_chain
    from repro.parallel.backends import get_backend
    from repro.runtime.reduce import parallel_mean, parallel_variance

    f = cell.factors
    dataset = str(f["dataset"])
    eps = float(f["eps"])
    backend = str(f["backend"])
    workers = int(f["workers"])
    chain_depth = int(f.get("chain_depth", 0))
    clients = int(f.get("clients", 0))
    kernel = str(f.get("kernel", "auto"))
    repeats = max(table.repeats, 1)

    fname, arr = ctx.lead_field(dataset)
    ref_stream = ctx.serial_stream(dataset, eps)

    metrics: dict[str, Any] = {
        "dataset": dataset,
        "field": fname,
        "eps": eps,
        "backend": backend,
        "workers": workers,
        "chain_depth": chain_depth,
        "clients": clients,
        "kernel": kernel,
        "repeats": repeats,
        "n_elements": int(arr.size),
        "bytes": int(arr.nbytes),
        "block_size": _BLOCK_SIZE,
    }

    from repro.core.config import SZOpsConfig

    codec = SZOps(
        config=SZOpsConfig(
            block_size=_BLOCK_SIZE,
            n_threads=workers,
            backend=backend,
            bitpack_kernel=kernel,
        )
    )
    try:
        best_c = float("inf")
        stages: dict[str, float] = {}
        stream = None
        compress_reps: list[float] = []
        for _ in range(repeats):
            timings: dict[str, float] = {}
            with Timer() as t:
                c = codec.compress(arr, eps, timings=timings)
            compress_reps.append(t.seconds)
            if t.seconds < best_c:
                best_c, stages, stream = t.seconds, timings, c
        assert stream is not None

        best_d, decompress_reps, out = _best_and_reps(
            lambda: codec.decompress(stream), repeats
        )

        stream_bytes = stream.to_bytes()
        same_stream = stream_bytes == ref_stream
        # Error-bound check with representation slack (half-ulp at the
        # value scale, plus a float32 cast ulp) — the same slack model the
        # test suite and run_parallel_backends use.
        scale_v = float(np.abs(arr).max()) + eps
        slack = float(np.spacing(scale_v))
        if arr.dtype == np.float32:
            slack += float(np.spacing(np.float32(scale_v)))
        roundtrip_ok = bool(float(np.abs(out - arr).max()) <= eps + slack)
    finally:
        codec.close()

    with get_backend(backend, workers) as be:
        best_r, reduce_reps, _ = _best_and_reps(
            lambda: (parallel_mean(stream, be), parallel_variance(stream, be)),
            repeats,
        )
        mu = parallel_mean(stream, be)
        var = parallel_variance(stream, be)
    same_reduce = (mu, var) == ctx.serial_reduce(dataset, eps, workers)

    metrics.update(
        {
            "compress_seconds": best_c,
            "compress_seconds_reps": compress_reps,
            "compress_stage_seconds": {
                "QZ": stages.get("quantize_s", 0.0),
                "LZ": stages.get("lorenzo_s", 0.0),
                "BF": stages.get("encode_s", 0.0),
            },
            "compress_throughput_mbs": (
                arr.nbytes / 1e6 / best_c if best_c > 0 else 0.0
            ),
            "decompress_seconds": best_d,
            "decompress_seconds_reps": decompress_reps,
            "reduce_seconds": best_r,
            "reduce_seconds_reps": reduce_reps,
            "mean": mu,
            "variance": var,
            "stream_identical": bool(same_stream),
            "reductions_identical": bool(same_reduce),
            "roundtrip_ok": roundtrip_ok,
        }
    )

    ok = bool(same_stream and same_reduce and roundtrip_ok)

    if chain_depth > 0:
        chain = chain_for_depth(chain_depth)
        container = SZOpsCompressed.from_bytes(stream_bytes)
        best_chain, chain_reps, fused_out = _best_and_reps(
            lambda: apply_chain(container, chain, fused=True), repeats
        )
        chain_identical = (
            fused_out.to_bytes() == ctx.chain_reference(dataset, eps, chain_depth)
        )
        metrics.update(
            {
                "chain": [
                    n if s is None else f"{n}={s:g}" for n, s in chain
                ],
                "chain_seconds": best_chain,
                "chain_seconds_reps": chain_reps,
                "chain_identical": bool(chain_identical),
            }
        )
        ok = ok and bool(chain_identical)

    if clients > 0:
        service = _drive_service(
            cell, table, stream_bytes, chain_depth, clients,
            ctx, dataset, eps,
        )
        metrics["service"] = service
        ok = ok and service["replies_identical"] and not service["errors"]

    metrics["ok"] = ok
    return metrics


def _drive_service(
    cell: Cell,
    table: RunTable,
    blob: bytes,
    chain_depth: int,
    clients: int,
    ctx: ExecutionContext,
    dataset: str,
    eps: float,
) -> dict[str, Any]:
    """Stand up a real server and hammer it with a closed-loop client fleet."""
    import threading
    import time

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, ThreadedServer

    requests_per_client = int(table.options.get("requests_per_client", 4))
    batching = bool(cell.factors.get("batching", True))
    depth = max(chain_depth, 1)
    chain = chain_for_depth(depth)
    expected = ctx.chain_reference(dataset, eps, depth)

    config = ServiceConfig(
        batching=batching,
        max_pending=max(64, 4 * clients * requests_per_client),
    )
    latencies: list[float] = []
    errors: list[str] = []
    mismatches = [0]
    lock = threading.Lock()

    with ThreadedServer(config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            client.put("cell", blob)

        barrier = threading.Barrier(clients + 1)

        def worker(idx: int) -> None:
            try:
                with ServiceClient(handle.host, handle.port) as cl:
                    barrier.wait()
                    for _ in range(requests_per_client):
                        t0 = time.perf_counter()
                        reply = cl.op("cell", chain)
                        dt = time.perf_counter() - t0
                        with lock:
                            latencies.append(dt)
                            if reply != expected:
                                mismatches[0] += 1
            except Exception as exc:  # recorded, not raised: the cell reports
                with lock:
                    errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
                if barrier.n_waiting:
                    barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"exp-client-{i}")
            for i in range(clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t_start = time.perf_counter()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t_start

    total = clients * requests_per_client
    return {
        "batching": batching,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "completed_requests": len(latencies),
        "errors": errors,
        "wall_seconds": wall_s,
        "throughput_rps": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "replies_identical": mismatches[0] == 0 and len(latencies) == total,
    }


# --------------------------------------------------------------------------
# Workload: ops_matrix (Figures 5/6 substrate)
# --------------------------------------------------------------------------


def _run_ops_matrix_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    from repro.core.ops.dispatch import OPERATIONS
    from repro.harness.runner import DEFAULT_SCALAR
    from repro.workflow import run_compressed, run_traditional

    f = cell.factors
    dataset = str(f["dataset"])
    eps = float(f["eps"])
    op = str(f["op"])
    repeats = max(table.repeats, 1)

    szp, _szops, szp_blobs, szops_blobs, total_bytes = ctx.workflow_blobs(
        dataset, eps
    )
    scalar = DEFAULT_SCALAR if OPERATIONS[op].needs_scalar else None

    best: tuple[float, float, float, float] | None = None
    for _ in range(repeats):
        dec = opr = cmp_ = kern = 0.0
        for fname in szp_blobs:
            tres = run_traditional(szp, szp_blobs[fname], op, scalar)
            dec += tres.timing.decompress
            opr += tres.timing.operate
            cmp_ += tres.timing.compress
            cres = run_compressed(szops_blobs[fname], op, scalar)
            kern += cres.kernel_seconds
        cand = (dec, opr, cmp_, kern)
        if best is None or sum(cand) < sum(best):
            best = cand
    assert best is not None

    szp_total = best[0] + best[1] + best[2]
    return {
        "dataset": dataset,
        "eps": eps,
        "op": op,
        "repeats": repeats,
        "bytes": int(total_bytes),
        "szp_decompress_seconds": best[0],
        "szp_operate_seconds": best[1],
        "szp_compress_seconds": best[2],
        "szp_total_seconds": szp_total,
        "szops_kernel_seconds": best[3],
        "speedup": szp_total / best[3] if best[3] > 0 else float("inf"),
        "ok": best[3] > 0.0,
    }


# --------------------------------------------------------------------------
# Workload: bitpack (kernel microbenchmark, the bench-bitpack substrate)
# --------------------------------------------------------------------------


def _run_bitpack_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    from repro.bitstream import get_kernel

    f = cell.factors
    kernel_name = str(f["kernel"])
    width = int(f["width"])
    repeats = max(table.repeats, 1)
    size = int(table.options.get("size", 1 << 20))

    # Deterministic lanes per width, shared by every kernel level so the
    # byte-identity comparison is apples-to-apples.
    rng = np.random.default_rng(cfg.seed + width)
    if width == 0:
        values = np.zeros(size, dtype=np.uint64)
    else:
        values = rng.integers(0, 1 << min(width, 63), size=size, dtype=np.uint64)
        if width == 64:
            values |= rng.integers(0, 2, size=size, dtype=np.uint64) << np.uint64(63)

    kern = get_kernel(kernel_name)
    ref = get_kernel("bitarray")

    best_pack, pack_reps, packed = _best_and_reps(
        lambda: kern.pack_uints(values, width), repeats
    )
    assert packed is not None
    best_unpack, unpack_reps, out = _best_and_reps(
        lambda: kern.unpack_uints(packed, values.size, width), repeats
    )

    identical = packed.tobytes() == ref.pack_uints(values, width).tobytes()
    roundtrip_ok = bool(np.array_equal(out, values))
    return {
        "kernel": kernel_name,
        "width": width,
        "size": int(values.size),
        "repeats": repeats,
        "payload_bytes": int(packed.size),
        "pack_seconds": best_pack,
        "pack_seconds_reps": pack_reps,
        "unpack_seconds": best_unpack,
        "unpack_seconds_reps": unpack_reps,
        "pack_mlanes_per_s": (
            values.size / 1e6 / best_pack if best_pack > 0 else 0.0
        ),
        "unpack_mlanes_per_s": (
            values.size / 1e6 / best_unpack if best_unpack > 0 else 0.0
        ),
        "identical_to_bitarray": bool(identical),
        "roundtrip_ok": roundtrip_ok,
        "ok": bool(identical and roundtrip_ok),
    }


# --------------------------------------------------------------------------
# Workloads: fusion / service (the wrapped legacy BENCH producers)
# --------------------------------------------------------------------------


def _run_fusion_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    import dataclasses

    from repro.harness.runner import run_runtime_fusion

    f = cell.factors
    cell_cfg = dataclasses.replace(
        cfg, datasets=(str(f["dataset"]),), eps=float(f["eps"])
    )
    result = run_runtime_fusion(cell_cfg, min_repeats=table.repeats)
    metrics = dict(result.extras["bench"])
    metrics["ok"] = bool(metrics["identical_results"])
    return metrics


def _run_service_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    from repro.service.bench import run_service_bench

    f = cell.factors
    metrics = dict(
        run_service_bench(
            dataset=str(f["dataset"]),
            scale=cfg.scale,
            eps=float(f["eps"]),
            n_clients=int(f["clients"]),
            requests_per_client=int(table.options.get("requests_per_client", 25)),
            backend=str(table.options.get("backend", "serial")),
            n_workers=int(table.options.get("n_workers", 1)),
            seed=cfg.seed,
        )
    )
    metrics["ok"] = bool(
        metrics["total_errors"] == 0 and metrics["bit_identical_to_eager"]
    )
    return metrics


def _run_cluster_cell(
    cell: Cell, table: RunTable, cfg: BenchConfig, ctx: ExecutionContext
) -> dict[str, Any]:
    from repro.cluster.bench import run_cluster_bench

    f = cell.factors
    metrics = dict(
        run_cluster_bench(
            n_nodes=int(f["nodes"]),
            replicas=int(f["replicas"]),
            n_clients=int(f["clients"]),
            requests_per_client=int(table.options.get("requests_per_client", 25)),
            n_arrays=int(table.options.get("n_arrays", 4)),
            chunks=int(table.options.get("chunks", 6)),
            n_elements=int(table.options.get("n_elements", 30_000)),
            eps=float(table.options.get("eps", 1e-3)),
            seed=cfg.seed,
        )
    )
    # run_cluster_bench already sets "ok" (no errors, zero identity failures).
    return metrics


WORKLOADS: dict[str, Callable[..., dict[str, Any]]] = {
    "pipeline": _run_pipeline_cell,
    "bitpack": _run_bitpack_cell,
    "ops_matrix": _run_ops_matrix_cell,
    "fusion": _run_fusion_cell,
    "service": _run_service_cell,
    "cluster": _run_cluster_cell,
}


def execute_cell(
    cell: Cell,
    table: RunTable,
    cfg: BenchConfig,
    ctx: ExecutionContext,
) -> dict[str, Any]:
    """Execute one cell and return its metrics document (with an ``ok`` flag)."""
    try:
        fn = WORKLOADS[cell.workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {cell.workload!r}; available: "
            f"{', '.join(sorted(WORKLOADS))}"
        ) from None
    metrics = fn(cell, table, cfg, ctx)
    metrics.setdefault("ok", True)
    return metrics
