"""Run orchestration: expand -> execute (with resume) -> persist -> index.

:func:`run_experiment` is the one entry point the CLI, the benchmark
suite, and the migrated BENCH producers all share.  The flow:

1. expand the table to its deterministic cell list;
2. create the artifact directory (or adopt an existing one when
   resuming) and write ``manifest.json`` / ``environment.json`` up
   front;
3. execute every cell that has no completed artifact yet, writing each
   cell's raw JSON as soon as it finishes — a crash loses at most the
   in-flight cell;
4. render ``report.json`` + ``report.md`` into the run directory;
5. append the run to the cross-run SQLite index (if one was given).

``execute`` is injectable so the property-based suite can drive the
resume/skip logic with a stub instead of real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.harness.config import BenchConfig
from repro.harness.experiments import index as index_mod
from repro.harness.experiments.artifacts import RunDir
from repro.harness.experiments.executor import ExecutionContext, execute_cell
from repro.harness.experiments.report import build_report, render_report_markdown
from repro.harness.experiments.runtable import Cell, RunTable

__all__ = ["RunResult", "run_experiment"]


@dataclass
class RunResult:
    """Everything a caller needs after :func:`run_experiment` returns."""

    run_id: str
    run_dir: Path
    manifest: dict[str, Any]
    cells: list[dict[str, Any]]  # cell documents (artifact shape)
    report: dict[str, Any]
    executed: int  # cells actually run (vs resumed from disk)
    resumed: int

    @property
    def all_ok(self) -> bool:
        return bool(self.cells) and all(c["ok"] for c in self.cells)


def run_experiment(
    table: RunTable,
    cfg: BenchConfig,
    out_root: str | Path,
    index_path: str | Path | None = None,
    resume: str | Path | None = None,
    execute: Callable[[Cell, RunTable, BenchConfig, ExecutionContext], dict[str, Any]]
    | None = None,
    progress: Callable[[str], None] | None = None,
) -> RunResult:
    """Execute a run table end to end (see the module docstring)."""
    say = progress or (lambda _msg: None)
    execute = execute or execute_cell

    if resume is not None:
        run_dir = RunDir(resume)
        manifest = run_dir.manifest()
        stored = RunTable.from_json(manifest["table"])
        if stored.config_hash(cfg) != manifest["config_hash"]:
            raise ValueError(
                f"cannot resume {run_dir.path}: its config hash "
                f"{manifest['config_hash'][:12]} does not match the requested "
                "table/config (the run would mix incompatible measurements)"
            )
        table = stored
    else:
        run_dir = RunDir.create(out_root, table, cfg)
        manifest = run_dir.manifest()

    cells = table.expand()
    done = run_dir.completed_cells()
    say(
        f"run {run_dir.run_id}: {len(cells)} cell(s), "
        f"{len(done)} already complete"
    )

    ctx = ExecutionContext(cfg)
    documents: list[dict[str, Any]] = []
    executed = resumed = 0
    for cell in cells:
        prior = done.get(cell.cell_id)
        if prior is not None:
            documents.append(prior)
            resumed += 1
            continue
        say(f"  executing {cell.label()}")
        metrics = execute(cell, table, cfg, ctx)
        ok = bool(metrics.get("ok", True))
        run_dir.write_cell(cell, metrics, ok)
        documents.append(
            {
                "schema_version": manifest["schema_version"],
                "cell_index": cell.index,
                "cell_id": cell.cell_id,
                "workload": cell.workload,
                "factors": dict(cell.factors),
                "ok": ok,
                "metrics": metrics,
            }
        )
        executed += 1

    report = build_report(manifest, documents)
    run_dir.write_report(report, render_report_markdown(report))

    if index_path is not None:
        conn = index_mod.open_index(index_path, create=True)
        try:
            index_mod.append_run(conn, manifest, documents)
        finally:
            conn.close()
        say(f"  indexed {run_dir.run_id} -> {index_path}")

    return RunResult(
        run_id=run_dir.run_id,
        run_dir=run_dir.path,
        manifest=manifest,
        cells=documents,
        report=report,
        executed=executed,
        resumed=resumed,
    )
