"""Factorial run tables: the declarative half of the experiment engine.

A :class:`RunTable` names a *workload* (how one cell is executed — see
:mod:`repro.harness.experiments.executor`) and a mapping of *factors* to
level tuples.  :meth:`RunTable.expand` produces the full factorial cross
as a deterministic, ordered list of :class:`Cell` objects:

* the cell count is exactly the product of the factor level counts;
* ordering is row-major over the factors **in declaration order**, with
  levels in declaration order (the last factor varies fastest) — the same
  table always expands to the same sequence;
* every cell carries a content-addressed ``cell_id`` (hash of workload +
  factor assignment), so artifact files and index rows survive renumbering
  and a resumed run can skip exactly the completed cells.

``config_hash`` extends the same hashing to the full (table, bench-config)
pair; it is stamped into the run manifest and the index so longitudinal
queries can group runs that measured the same thing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.harness.config import BenchConfig

__all__ = [
    "Cell",
    "RunTable",
    "PREDEFINED_TABLES",
    "canonical_json",
    "get_table",
    "table_names",
]

#: Factor levels must round-trip through JSON unchanged.
_LEVEL_TYPES = (str, int, float, bool)


def canonical_json(obj: Any) -> str:
    """Stable, whitespace-free JSON used for every hash in the engine."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _digest(obj: Any) -> str:
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Cell:
    """One factor assignment of an expanded run table."""

    index: int
    cell_id: str
    workload: str
    factors: Mapping[str, Any]

    def label(self) -> str:
        parts = [f"{k}={self.factors[k]}" for k in self.factors]
        return f"[{self.index:03d}] " + " ".join(parts)


@dataclass(frozen=True)
class RunTable:
    """A named factorial design: workload x factor grid x repetitions."""

    name: str
    workload: str
    factors: Mapping[str, tuple]
    repeats: int = 3
    description: str = ""
    #: Extra workload knobs that are fixed for the whole table (not crossed).
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("a run table needs at least one factor")
        for fname, levels in self.factors.items():
            if not isinstance(levels, tuple) or not levels:
                raise ValueError(
                    f"factor {fname!r} must be a non-empty tuple of levels"
                )
            for lv in levels:
                if not isinstance(lv, _LEVEL_TYPES):
                    raise ValueError(
                        f"factor {fname!r} level {lv!r} is not JSON-scalar"
                    )
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    @property
    def n_cells(self) -> int:
        n = 1
        for levels in self.factors.values():
            n *= len(levels)
        return n

    def expand(self) -> list[Cell]:
        """The full factorial cross, row-major in factor declaration order."""
        names = list(self.factors)
        cells: list[Cell] = []
        for index, combo in enumerate(
            itertools.product(*(self.factors[n] for n in names))
        ):
            assignment = dict(zip(names, combo))
            cell_id = _digest({"workload": self.workload, "factors": assignment})[:16]
            cells.append(
                Cell(
                    index=index,
                    cell_id=cell_id,
                    workload=self.workload,
                    factors=assignment,
                )
            )
        return cells

    # -- serialization ----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "factors": {k: list(v) for k, v in self.factors.items()},
            "repeats": self.repeats,
            "description": self.description,
            "options": dict(self.options),
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "RunTable":
        return cls(
            name=doc["name"],
            workload=doc["workload"],
            factors={k: tuple(v) for k, v in doc["factors"].items()},
            repeats=int(doc.get("repeats", 3)),
            description=doc.get("description", ""),
            options=dict(doc.get("options", {})),
        )

    def config_hash(self, cfg: BenchConfig) -> str:
        """Hash of everything that determines the measurement, not the host."""
        return _digest(
            {
                "table": self.to_json(),
                "bench": {
                    "scale": cfg.scale,
                    "seed": cfg.seed,
                    "max_fields": cfg.max_fields,
                },
            }
        )


# --------------------------------------------------------------------------
# Predefined tables: the migrated BENCH_* producers plus the CI smoke table
# --------------------------------------------------------------------------


def _parallel_backends_table(
    workers: tuple[int, ...] = (1, 2, 4, 8), dataset: str = "Miranda"
) -> RunTable:
    from repro.parallel.backends import available_backends

    return RunTable(
        name="parallel-backends",
        workload="pipeline",
        factors={
            "dataset": (dataset,),
            "eps": (1e-4,),
            "backend": tuple(available_backends()),
            "workers": workers,
            "chain_depth": (0,),
            "clients": (0,),
            "kernel": ("bitarray", "wordpack"),
        },
        repeats=3,
        description=(
            "BENCH_parallel.json through the engine: compress (QZ/LZ/BF "
            "split), decompress, and backend-routed mean/variance for every "
            "backend x worker count x bitpack kernel, bit-identity asserted "
            "per cell."
        ),
    )


def _runtime_fusion_table(dataset: str = "Miranda") -> RunTable:
    return RunTable(
        name="runtime-fusion",
        workload="fusion",
        factors={"dataset": (dataset,), "eps": (1e-4,)},
        repeats=3,
        description=(
            "BENCH_runtime.json through the engine: fused negate -> xS -> "
            "mean chain vs the eager three-op replay, identical results "
            "asserted."
        ),
    )


def _service_batching_table(
    dataset: str = "Miranda",
    clients: int = 8,
    requests_per_client: int = 25,
    eps: float = 1e-3,
    backend: str = "serial",
    n_workers: int = 1,
) -> RunTable:
    return RunTable(
        name="service-batching",
        workload="service",
        factors={
            "dataset": (dataset,),
            "eps": (eps,),
            "clients": (clients,),
        },
        repeats=1,
        description=(
            "BENCH_service.json through the engine: batched vs unbatched "
            "serving throughput over a real ThreadedServer, replies "
            "bit-identical to the eager chain."
        ),
        options={
            "requests_per_client": requests_per_client,
            "backend": backend,
            "n_workers": n_workers,
        },
    )


def _ops_matrix_table(
    datasets: tuple[str, ...] = ("Hurricane", "CESM-ATM", "SCALE-LETKF", "Miranda"),
) -> RunTable:
    from repro.core.ops.dispatch import operation_names

    return RunTable(
        name="ops-matrix",
        workload="ops_matrix",
        factors={
            "dataset": datasets,
            "eps": (1e-4,),
            "op": tuple(operation_names()),
        },
        repeats=1,
        description=(
            "Figures 5/6 substrate: per (dataset, op) cell, SZp traditional "
            "decompress/operate/compress stages vs the SZOps kernel."
        ),
    )


def _perf_smoke_table() -> RunTable:
    return RunTable(
        name="perf-smoke",
        workload="pipeline",
        factors={
            "dataset": ("Miranda",),
            "eps": (1e-3,),
            "backend": ("serial", "threads"),
            "workers": (1, 2),
            "chain_depth": (0, 3),
            "clients": (0,),
            "kernel": ("bitarray", "wordpack"),
        },
        repeats=3,
        description=(
            "CI gate: 2x2x2x2 pipeline table (backend x workers x chain "
            "depth x bitpack kernel). Identity flags hard-fail; timing "
            "regressions gate behind the CPU-count policy."
        ),
    )


def _bitpack_kernels_table(
    widths: tuple[int, ...] = (1, 2, 3, 4, 5, 8, 11, 12, 16, 24, 32),
    size: int = 1 << 20,
) -> RunTable:
    from repro.bitstream import available_kernels

    return RunTable(
        name="bitpack-kernels",
        workload="bitpack",
        factors={
            "kernel": tuple(available_kernels()),
            "width": widths,
        },
        repeats=3,
        description=(
            "Bitpack kernel microbenchmark (szops bench-bitpack): pack and "
            "unpack throughput per (kernel, width) over a fixed random lane "
            "array, payload byte-identity vs the bitarray reference and "
            "exact round-trip asserted per cell."
        ),
        options={"size": size},
    )


def _cluster_scale_table(
    nodes: tuple[int, ...] = (1, 3, 5),
    replicas: tuple[int, ...] = (1, 2),
    clients: tuple[int, ...] = (2, 8),
    requests_per_client: int = 15,
    chunks: int = 6,
    n_elements: int = 30_000,
    eps: float = 1e-3,
) -> RunTable:
    return RunTable(
        name="cluster-scale",
        workload="cluster",
        factors={
            "nodes": tuple(int(n) for n in nodes),
            "replicas": tuple(int(r) for r in replicas),
            "clients": tuple(int(c) for c in clients),
        },
        repeats=1,
        description=(
            "Sharded-cluster scaling grid: nodes x replicas x concurrent "
            "clients driving mixed PUT/distributed-REDUCE load, every "
            "reduction checked for identity with the single-node value "
            "(mean/min/max bit-identical, variance to float64 rounding)."
        ),
        options={
            "requests_per_client": requests_per_client,
            "chunks": chunks,
            "n_elements": n_elements,
            "eps": eps,
        },
    )


PREDEFINED_TABLES: dict[str, Any] = {
    "cluster-scale": _cluster_scale_table,
    "parallel-backends": _parallel_backends_table,
    "bitpack-kernels": _bitpack_kernels_table,
    "runtime-fusion": _runtime_fusion_table,
    "service-batching": _service_batching_table,
    "ops-matrix": _ops_matrix_table,
    "perf-smoke": _perf_smoke_table,
}


def table_names() -> list[str]:
    return sorted(PREDEFINED_TABLES)


def get_table(name: str, **kwargs: Any) -> RunTable:
    """Instantiate a predefined run table by name."""
    try:
        factory = PREDEFINED_TABLES[name]
    except KeyError:
        raise ValueError(
            f"unknown run table {name!r}; available: {', '.join(table_names())}"
        ) from None
    return factory(**kwargs)
