"""``repro.harness.experiments``: the factorial experiment engine.

The perf substrate every speed PR reports through (see
docs/EXPERIMENTS.md):

* :mod:`~repro.harness.experiments.runtable` — declarative factorial run
  tables with deterministic expansion and content-addressed cells;
* :mod:`~repro.harness.experiments.executor` — cell execution through
  the real ``SZOps`` / ``runtime`` / ``parallel`` / ``service`` layers;
* :mod:`~repro.harness.experiments.artifacts` — per-run artifact
  directories (manifest, environment capture, raw cell JSON);
* :mod:`~repro.harness.experiments.index` — the cross-run SQLite index;
* :mod:`~repro.harness.experiments.report` — ``report.json`` / markdown
  rendering with repetition-based confidence intervals;
* :mod:`~repro.harness.experiments.compare` — the regression gate
  (identity hard-fails, CPU-count-gated timing);
* :mod:`~repro.harness.experiments.runner` — orchestration with
  crash-safe resume.
"""

from repro.harness.experiments.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    RunDir,
    git_sha,
    host_info,
)
from repro.harness.experiments.compare import (
    CompareResult,
    MIN_CPUS_FOR_TIMING_GATE,
    compare_cells,
    compare_runs,
)
from repro.harness.experiments.compat import (
    bench_parallel_payload,
    bench_runtime_payload,
    bench_service_payload,
    ops_matrix_from_cells,
)
from repro.harness.experiments.executor import (
    WORKLOADS,
    ExecutionContext,
    chain_for_depth,
    execute_cell,
)
from repro.harness.experiments.index import (
    INDEX_SCHEMA_VERSION,
    ExperimentIndexError,
    append_run,
    get_cells,
    get_run,
    latest_run_id,
    list_runs,
    open_index,
)
from repro.harness.experiments.report import (
    REPORT_SCHEMA_VERSION,
    build_report,
    confidence_interval,
    render_report_json,
    render_report_markdown,
    report_from_index,
)
from repro.harness.experiments.runner import RunResult, run_experiment
from repro.harness.experiments.runtable import (
    PREDEFINED_TABLES,
    Cell,
    RunTable,
    canonical_json,
    get_table,
    table_names,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "INDEX_SCHEMA_VERSION",
    "MIN_CPUS_FOR_TIMING_GATE",
    "PREDEFINED_TABLES",
    "REPORT_SCHEMA_VERSION",
    "Cell",
    "CompareResult",
    "ExecutionContext",
    "ExperimentIndexError",
    "RunDir",
    "RunResult",
    "RunTable",
    "WORKLOADS",
    "append_run",
    "bench_parallel_payload",
    "bench_runtime_payload",
    "bench_service_payload",
    "build_report",
    "canonical_json",
    "chain_for_depth",
    "compare_cells",
    "compare_runs",
    "confidence_interval",
    "execute_cell",
    "get_cells",
    "get_run",
    "get_table",
    "git_sha",
    "host_info",
    "latest_run_id",
    "list_runs",
    "open_index",
    "ops_matrix_from_cells",
    "render_report_json",
    "render_report_markdown",
    "report_from_index",
    "run_experiment",
    "table_names",
]
