"""Cross-run comparison: the CI perf-regression gate.

Two halves with different trust models:

* **Identity checks always hard-fail.**  Every current cell whose ``ok``
  flag is false (stream mismatch, reduction mismatch, chain/fusion
  mismatch, service reply mismatch, error-bound violation) fails the
  comparison unconditionally — correctness does not depend on the host.
* **Timing gates are CPU-count-gated** (the PR-3 policy): wall-clock
  regressions beyond ``max_regression_pct`` only fail when the host has
  enough cores for timings to be meaningful (``os.cpu_count() >= 4`` by
  default), because a 1-core CI container measures scheduler noise, not
  kernels.  ``gate_timing="always"`` forces the gate on (used by the
  gate's own tests), ``"never"`` reports regressions without failing.

Cells are matched between runs by ``cell_id`` — the content hash of
(workload, factor assignment) — so a reordered or extended table still
compares the overlapping cells.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.harness.experiments import index as index_mod

__all__ = ["CompareResult", "MIN_CPUS_FOR_TIMING_GATE", "compare_cells", "compare_runs"]

#: The PR-3 policy: timing assertions only bind with this many cores.
MIN_CPUS_FOR_TIMING_GATE = 4

#: (metric key, direction) pairs the gate inspects per workload.  ``+``
#: means higher-is-better (throughput), ``-`` lower-is-better (seconds).
_GATED_METRICS: dict[str, tuple[tuple[str, str], ...]] = {
    "pipeline": (
        ("compress_throughput_mbs", "+"),
        ("reduce_seconds", "-"),
        ("chain_seconds", "-"),
    ),
    "ops_matrix": (("szops_kernel_seconds", "-"),),
    "fusion": (("fused_seconds", "-"),),
    "service": (("speedup_batched_vs_unbatched", "+"),),
}


@dataclass
class CompareResult:
    """Outcome of one baseline-vs-current comparison."""

    baseline_run: str
    current_run: str
    max_regression_pct: float
    timing_gate_active: bool
    identity_failures: list[str] = field(default_factory=list)
    regressions: list[str] = field(default_factory=list)
    improvements: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    n_compared: int = 0

    @property
    def ok(self) -> bool:
        if self.identity_failures:
            return False
        if self.timing_gate_active and self.regressions:
            return False
        return self.n_compared > 0

    def render(self) -> str:
        lines = [
            f"compare: baseline {self.baseline_run} -> current {self.current_run}",
            f"matched cells: {self.n_compared}; timing gate "
            + (
                f"ACTIVE (fail beyond {self.max_regression_pct:g}% regression)"
                if self.timing_gate_active
                else "inactive (informational only)"
            ),
        ]
        for msg in self.identity_failures:
            lines.append(f"IDENTITY FAIL: {msg}")
        for msg in self.regressions:
            prefix = "REGRESSION" if self.timing_gate_active else "regression (ungated)"
            lines.append(f"{prefix}: {msg}")
        for msg in self.improvements:
            lines.append(f"improved: {msg}")
        for msg in self.warnings:
            lines.append(f"warning: {msg}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _cell_metric(cell: Mapping[str, Any], key: str) -> float | None:
    value = cell["metrics"].get(key)
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def _describe(cell: Mapping[str, Any]) -> str:
    return " ".join(f"{k}={v}" for k, v in cell["factors"].items())


def compare_cells(
    workload: str,
    baseline_cells: list[Mapping[str, Any]],
    current_cells: list[Mapping[str, Any]],
    *,
    max_regression_pct: float = 20.0,
    gate_timing: str = "auto",
    cpu_count: int | None = None,
    baseline_run: str = "baseline",
    current_run: str = "current",
) -> CompareResult:
    """Gate the current cells against the baseline's matching cells."""
    if gate_timing not in ("auto", "always", "never"):
        raise ValueError(f"gate_timing must be auto/always/never, not {gate_timing!r}")
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    active = gate_timing == "always" or (
        gate_timing == "auto" and cpus >= MIN_CPUS_FOR_TIMING_GATE
    )
    result = CompareResult(
        baseline_run=baseline_run,
        current_run=current_run,
        max_regression_pct=max_regression_pct,
        timing_gate_active=active,
    )

    by_id = {c["cell_id"]: c for c in baseline_cells}
    for cell in current_cells:
        desc = _describe(cell)
        if not cell["ok"]:
            result.identity_failures.append(f"cell {desc} has ok=false")
        base = by_id.get(cell["cell_id"])
        if base is None:
            result.warnings.append(f"cell {desc} has no baseline counterpart")
            continue
        result.n_compared += 1
        for key, direction in _GATED_METRICS.get(workload, ()):
            cur = _cell_metric(cell, key)
            ref = _cell_metric(base, key)
            if cur is None or ref is None:
                continue
            # Positive pct = got worse, in either direction convention.
            if direction == "+":
                pct = 100.0 * (ref - cur) / ref
            else:
                pct = 100.0 * (cur - ref) / ref
            msg = (
                f"{key} on {desc}: baseline {ref:.6g} -> current {cur:.6g} "
                f"({pct:+.1f}% {'worse' if pct > 0 else 'better'})"
            )
            if pct > max_regression_pct:
                result.regressions.append(msg)
            elif pct < -max_regression_pct:
                result.improvements.append(msg)
    if result.n_compared == 0:
        result.warnings.append(
            "no overlapping cells between baseline and current run"
        )
    return result


def compare_runs(
    conn: sqlite3.Connection,
    baseline_run: str,
    current_run: str,
    *,
    max_regression_pct: float = 20.0,
    gate_timing: str = "auto",
    cpu_count: int | None = None,
) -> CompareResult:
    """Compare two indexed runs (they must share a workload)."""
    base = index_mod.get_run(conn, baseline_run)
    cur = index_mod.get_run(conn, current_run)
    if base["workload"] != cur["workload"]:
        raise index_mod.ExperimentIndexError(
            f"cannot compare workload {base['workload']!r} (baseline) against "
            f"{cur['workload']!r} (current)"
        )
    result = compare_cells(
        cur["workload"],
        index_mod.get_cells(conn, baseline_run),
        index_mod.get_cells(conn, current_run),
        max_regression_pct=max_regression_pct,
        gate_timing=gate_timing,
        cpu_count=cpu_count,
        baseline_run=baseline_run,
        current_run=current_run,
    )
    if base["config_hash"] != cur["config_hash"]:
        result.warnings.append(
            "config hashes differ between runs "
            f"({base['config_hash'][:8]} vs {cur['config_hash'][:8]}); "
            "timing comparisons may not be like-for-like"
        )
    return result
