"""The cross-run SQLite index: longitudinal storage for experiment runs.

One index file accumulates every run's manifest and raw cell metrics, so
trajectory questions ("has compress throughput on the perf-smoke table
moved since PR N?") are one SQL query instead of a directory crawl.

Schema (version ``1``)::

    meta(key TEXT PRIMARY KEY, value TEXT)          -- schema_version, ...
    runs(run_id TEXT PRIMARY KEY, table_name, workload, config_hash,
         git_sha, created_utc, host_json, n_cells)
    cells(run_id, cell_index, cell_id, factors_json, metrics_json, ok,
          PRIMARY KEY (run_id, cell_index))

Opening is *strict*: a file that is not SQLite, lacks the ``meta`` table,
or carries a different ``schema_version`` raises
:class:`ExperimentIndexError` with a message that names what was found
and what this build expects — a half-understood index must never feed
the regression gate.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "ExperimentIndexError",
    "append_run",
    "get_cells",
    "get_run",
    "latest_run_id",
    "list_runs",
    "open_index",
]

INDEX_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      TEXT PRIMARY KEY,
    table_name  TEXT NOT NULL,
    workload    TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    git_sha     TEXT NOT NULL,
    created_utc TEXT NOT NULL,
    host_json   TEXT NOT NULL,
    n_cells     INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    run_id       TEXT NOT NULL REFERENCES runs(run_id),
    cell_index   INTEGER NOT NULL,
    cell_id      TEXT NOT NULL,
    factors_json TEXT NOT NULL,
    metrics_json TEXT NOT NULL,
    ok           INTEGER NOT NULL,
    PRIMARY KEY (run_id, cell_index)
);
CREATE INDEX IF NOT EXISTS cells_by_cell_id ON cells(cell_id);
CREATE INDEX IF NOT EXISTS runs_by_table ON runs(table_name, created_utc);
"""


class ExperimentIndexError(RuntimeError):
    """The index file is corrupt, foreign, or from another schema version."""


def open_index(path: str | Path, create: bool = False) -> sqlite3.Connection:
    """Open (or with ``create=True`` initialize) an experiment index.

    Raises :class:`ExperimentIndexError` on anything that is not a
    readable index at exactly :data:`INDEX_SCHEMA_VERSION`.
    """
    path = Path(path)
    if not create and not path.exists():
        raise ExperimentIndexError(f"experiment index {path} does not exist")
    fresh = create and (not path.exists() or path.stat().st_size == 0)
    if create:
        path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path))
    conn.row_factory = sqlite3.Row
    try:
        if fresh:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES ('schema_version', ?)",
                (str(INDEX_SCHEMA_VERSION),),
            )
            conn.commit()
        _validate(conn, path)
    except ExperimentIndexError:
        conn.close()
        raise
    except sqlite3.DatabaseError as exc:
        conn.close()
        raise ExperimentIndexError(
            f"{path} is not a valid experiment index (not a SQLite database: {exc})"
        ) from exc
    return conn


def _validate(conn: sqlite3.Connection, path: Path) -> None:
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
    except sqlite3.DatabaseError as exc:
        raise ExperimentIndexError(
            f"{path} is not a valid experiment index: {exc}"
        ) from exc
    if row is None:
        raise ExperimentIndexError(
            f"{path} has no schema_version in its meta table; it is not an "
            "experiment index (or was truncated mid-write)"
        )
    found = row["value"]
    if found != str(INDEX_SCHEMA_VERSION):
        raise ExperimentIndexError(
            f"{path} uses index schema version {found}; this build reads "
            f"version {INDEX_SCHEMA_VERSION} only. Re-run `experiment run` "
            "against a fresh index (old artifact directories can be "
            "re-indexed) instead of mixing schema generations."
        )


def append_run(
    conn: sqlite3.Connection,
    manifest: Mapping[str, Any],
    cells: Iterable[Mapping[str, Any]],
) -> None:
    """Insert one run and its cell documents (idempotent per run_id)."""
    table = manifest["table"]
    conn.execute(
        "INSERT OR REPLACE INTO runs"
        " (run_id, table_name, workload, config_hash, git_sha, created_utc,"
        "  host_json, n_cells)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        (
            manifest["run_id"],
            table["name"],
            table["workload"],
            manifest["config_hash"],
            manifest["git_sha"],
            manifest["created_utc"],
            json.dumps(manifest["host"], sort_keys=True),
            int(manifest["n_cells"]),
        ),
    )
    conn.execute("DELETE FROM cells WHERE run_id = ?", (manifest["run_id"],))
    for cell in cells:
        conn.execute(
            "INSERT INTO cells"
            " (run_id, cell_index, cell_id, factors_json, metrics_json, ok)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                manifest["run_id"],
                int(cell["cell_index"]),
                cell["cell_id"],
                json.dumps(cell["factors"], sort_keys=True),
                json.dumps(cell["metrics"], sort_keys=True),
                1 if cell["ok"] else 0,
            ),
        )
    conn.commit()


def list_runs(
    conn: sqlite3.Connection, table_name: str | None = None
) -> list[dict[str, Any]]:
    """Run summaries, oldest first."""
    if table_name is None:
        rows = conn.execute(
            "SELECT * FROM runs ORDER BY created_utc, run_id"
        ).fetchall()
    else:
        rows = conn.execute(
            "SELECT * FROM runs WHERE table_name = ? ORDER BY created_utc, run_id",
            (table_name,),
        ).fetchall()
    return [_run_row(r) for r in rows]


def _run_row(row: sqlite3.Row) -> dict[str, Any]:
    return {
        "run_id": row["run_id"],
        "table_name": row["table_name"],
        "workload": row["workload"],
        "config_hash": row["config_hash"],
        "git_sha": row["git_sha"],
        "created_utc": row["created_utc"],
        "host": json.loads(row["host_json"]),
        "n_cells": row["n_cells"],
    }


def get_run(conn: sqlite3.Connection, run_id: str) -> dict[str, Any]:
    row = conn.execute("SELECT * FROM runs WHERE run_id = ?", (run_id,)).fetchone()
    if row is None:
        known = [r["run_id"] for r in list_runs(conn)]
        raise ExperimentIndexError(
            f"run {run_id!r} is not in the index; known runs: "
            f"{', '.join(known) if known else '(none)'}"
        )
    return _run_row(row)


def latest_run_id(
    conn: sqlite3.Connection, table_name: str | None = None
) -> str:
    runs = list_runs(conn, table_name)
    if not runs:
        where = f" for table {table_name!r}" if table_name else ""
        raise ExperimentIndexError(f"the index holds no runs{where}")
    return runs[-1]["run_id"]


def get_cells(conn: sqlite3.Connection, run_id: str) -> list[dict[str, Any]]:
    """The run's cell documents in cell order (validates the run exists)."""
    get_run(conn, run_id)
    rows = conn.execute(
        "SELECT * FROM cells WHERE run_id = ? ORDER BY cell_index", (run_id,)
    ).fetchall()
    return [
        {
            "cell_index": r["cell_index"],
            "cell_id": r["cell_id"],
            "factors": json.loads(r["factors_json"]),
            "metrics": json.loads(r["metrics_json"]),
            "ok": bool(r["ok"]),
        }
        for r in rows
    ]
