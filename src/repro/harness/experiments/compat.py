"""Legacy ``BENCH_*.json`` shapes emitted from engine runs.

The three historical snapshot producers (``repro bench`` ->
``BENCH_parallel.json``, the runtime-fusion benchmark ->
``BENCH_runtime.json``, ``repro bench-serve`` -> ``BENCH_service.json``)
now execute through the experiment engine; these adapters rebuild their
documented payload shapes from engine cell documents so every downstream
consumer keeps working while the engine's artifact/index representation
stays canonical.

The Figures 5/6 benchmarks consume the engine the other way around:
:func:`ops_matrix_from_cells` lifts indexed ``ops_matrix`` cells back
into the :class:`~repro.harness.runner.OpMeasurement` rows the figure
renderers take.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.harness.runner import OpMeasurement

__all__ = [
    "bench_parallel_payload",
    "bench_runtime_payload",
    "bench_service_payload",
    "ops_matrix_from_cells",
]


def bench_parallel_payload(
    manifest: Mapping[str, Any], cells: list[Mapping[str, Any]]
) -> dict[str, Any]:
    """Rebuild the ``BENCH_parallel.json`` payload from pipeline cells."""
    if not cells:
        raise ValueError("cannot build a parallel bench payload from zero cells")
    first = cells[0]["metrics"]
    backends: list[str] = []
    workers: list[int] = []
    kernels: list[str] = []
    out_cells: list[dict[str, Any]] = []
    all_identical = True
    for cell in cells:
        m = cell["metrics"]
        if m["backend"] not in backends:
            backends.append(m["backend"])
        if m["workers"] not in workers:
            workers.append(m["workers"])
        if m.get("kernel", "auto") not in kernels:
            kernels.append(m.get("kernel", "auto"))
        all_identical = all_identical and bool(cell["ok"])
        out_cells.append(
            {
                "backend": m["backend"],
                "workers": m["workers"],
                "kernel": m.get("kernel", "auto"),
                "compress_seconds": m["compress_seconds"],
                "compress_stage_seconds": dict(m["compress_stage_seconds"]),
                "decompress_seconds": m["decompress_seconds"],
                "reduce_seconds": m["reduce_seconds"],
                "mean": m["mean"],
                "variance": m["variance"],
                "stream_identical": m["stream_identical"],
                "reductions_identical": m["reductions_identical"],
            }
        )
    return {
        "experiment": "parallel_backends",
        "dataset": first["dataset"],
        "field": first["field"],
        "n_elements": first["n_elements"],
        "bytes": first["bytes"],
        "eps": first["eps"],
        "block_size": first["block_size"],
        "repeats": first["repeats"],
        "workers": sorted(workers),
        "backends": backends,
        "kernels": kernels,
        "cpus": int(manifest["host"]["cpu_count"]),
        "all_identical": bool(all_identical),
        "cells": out_cells,
        "run_id": manifest["run_id"],
    }


def bench_runtime_payload(cells: list[Mapping[str, Any]]) -> dict[str, Any]:
    """The ``BENCH_runtime.json`` payload (one fusion cell, passed through)."""
    if len(cells) != 1:
        raise ValueError(f"runtime-fusion runs hold one cell, got {len(cells)}")
    payload = dict(cells[0]["metrics"])
    payload.pop("ok", None)
    return payload


def bench_service_payload(cells: list[Mapping[str, Any]]) -> dict[str, Any]:
    """The ``BENCH_service.json`` payload (one service cell, passed through)."""
    if len(cells) != 1:
        raise ValueError(f"service-batching runs hold one cell, got {len(cells)}")
    payload = dict(cells[0]["metrics"])
    payload.pop("ok", None)
    return payload


def ops_matrix_from_cells(cells: list[Mapping[str, Any]]) -> list[OpMeasurement]:
    """Indexed ``ops_matrix`` cells -> Figure 5/6 measurement rows."""
    out: list[OpMeasurement] = []
    for cell in cells:
        m = cell["metrics"]
        out.append(
            OpMeasurement(
                dataset=m["dataset"],
                op_name=m["op"],
                bytes=int(m["bytes"]),
                szp_decompress_s=float(m["szp_decompress_seconds"]),
                szp_operate_s=float(m["szp_operate_seconds"]),
                szp_compress_s=float(m["szp_compress_seconds"]),
                szops_kernel_s=float(m["szops_kernel_seconds"]),
            )
        )
    return out
