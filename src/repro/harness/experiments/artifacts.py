"""Per-run artifact directories: manifest, environment capture, raw cells.

Every ``experiment run`` owns one directory under the runs root::

    runs/<run_id>/
        manifest.json       # table, config hash, git SHA, host, schema
        environment.json    # python/numpy versions, REPRO_* env knobs
        cells/<index>_<cell_id>.json   # one raw result per executed cell
        report.json         # rendered after the last cell completes
        report.md

The manifest is written *before* the first cell executes, so a crashed or
interrupted run still leaves enough context to resume: a later run with
``--resume`` re-expands the same table, keeps every cell file whose
``cell_id`` matches, and executes only the missing ones.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

from repro.harness.config import BenchConfig
from repro.harness.experiments.runtable import Cell, RunTable

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "RunDir",
    "capture_environment",
    "git_sha",
    "host_info",
    "new_run_id",
    "utc_now",
]

#: Bumped whenever the manifest / cell-file layout changes shape.
ARTIFACT_SCHEMA_VERSION = 1


def utc_now() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def git_sha(cwd: str | Path | None = None) -> str:
    """The repository HEAD, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_info() -> dict[str, Any]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "hostname": platform.node(),
    }


def capture_environment() -> dict[str, Any]:
    import numpy

    return {
        "python": sys.version,
        "executable": sys.executable,
        "numpy": numpy.__version__,
        "env": {
            k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
        },
    }


def new_run_id(table: RunTable, config_hash: str, when: str | None = None) -> str:
    stamp = (when or utc_now()).replace(":", "").replace("-", "")
    return f"{table.name}-{stamp}-{config_hash[:8]}"


def _write_json(path: Path, doc: Mapping[str, Any]) -> None:
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


class RunDir:
    """One run's artifact directory (see the module docstring for layout)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def run_id(self) -> str:
        return self.path.name

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    @property
    def cells_dir(self) -> Path:
        return self.path / "cells"

    @classmethod
    def create(
        cls,
        root: str | Path,
        table: RunTable,
        cfg: BenchConfig,
        run_id: str | None = None,
    ) -> "RunDir":
        config_hash = table.config_hash(cfg)
        created = utc_now()
        rid = run_id or new_run_id(table, config_hash, created)
        # A fresh run must never adopt an existing directory: two runs of
        # the same table in the same second would otherwise collide and
        # the second would silently "resume" the first.
        base_rid, n = rid, 1
        while (Path(root) / rid).exists():
            n += 1
            rid = f"{base_rid}-{n}"
        run_dir = cls(Path(root) / rid)
        run_dir.cells_dir.mkdir(parents=True)
        manifest = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "run_id": rid,
            "created_utc": created,
            "table": table.to_json(),
            "config_hash": config_hash,
            "git_sha": git_sha(),
            "host": host_info(),
            "bench_config": {
                "scale": cfg.scale,
                "seed": cfg.seed,
                "max_fields": cfg.max_fields,
                "repeats": cfg.repeats,
            },
            "n_cells": table.n_cells,
        }
        _write_json(run_dir.manifest_path, manifest)
        _write_json(run_dir.path / "environment.json", capture_environment())
        return run_dir

    def manifest(self) -> dict[str, Any]:
        try:
            doc = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{self.path} is not a run directory (no manifest.json)"
            ) from None
        if doc.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                f"run manifest {self.manifest_path} has schema_version "
                f"{doc.get('schema_version')!r}; this build expects "
                f"{ARTIFACT_SCHEMA_VERSION}"
            )
        return doc

    def cell_path(self, cell: Cell) -> Path:
        return self.cells_dir / f"{cell.index:04d}_{cell.cell_id}.json"

    def write_cell(self, cell: Cell, metrics: Mapping[str, Any], ok: bool) -> Path:
        path = self.cell_path(cell)
        _write_json(
            path,
            {
                "schema_version": ARTIFACT_SCHEMA_VERSION,
                "cell_index": cell.index,
                "cell_id": cell.cell_id,
                "workload": cell.workload,
                "factors": dict(cell.factors),
                "ok": bool(ok),
                "metrics": dict(metrics),
            },
        )
        return path

    def completed_cells(self) -> dict[str, dict[str, Any]]:
        """Map ``cell_id`` -> stored cell document for every finished cell.

        Unreadable or wrong-schema cell files are ignored (they will simply
        be re-executed on resume) — a torn write from a crashed run must
        not poison the retry.
        """
        done: dict[str, dict[str, Any]] = {}
        if not self.cells_dir.is_dir():
            return done
        for path in sorted(self.cells_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if doc.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
                continue
            if not isinstance(doc.get("cell_id"), str):
                continue
            done[doc["cell_id"]] = doc
        return done

    def write_report(self, report: Mapping[str, Any], markdown: str) -> None:
        _write_json(self.path / "report.json", report)
        (self.path / "report.md").write_text(markdown, encoding="utf-8")
