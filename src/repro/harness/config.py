"""Benchmark configuration, overridable through the environment.

The paper's full workloads (1.25-4.9 GB per dataset) are impractical for a
pure-Python reproduction, so the harness runs the same experiments on the
catalog's scaled-down default grids.  Two knobs rescale the work:

``REPRO_BENCH_SCALE``
    Linear per-axis scale factor on the working shapes (default 1.0, i.e.
    the catalog defaults of roughly 0.2-0.6 M elements per field).
``REPRO_BENCH_FIELDS``
    Max fields per dataset (default 4; 0 = all fields).  The slowest
    baselines (Huffman decode) dominate the runtime, so this bounds it.
``REPRO_BENCH_REPEATS``
    Timing repetitions per cell, best-of (default 1 for the full tables;
    the pytest-benchmark micro-cases do their own statistics).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["BenchConfig", "config_from_env"]


@dataclass(frozen=True)
class BenchConfig:
    eps: float = 1e-4
    scale: float = 1.0
    max_fields: int = 4
    repeats: int = 1
    datasets: tuple[str, ...] = ("Hurricane", "CESM-ATM", "SCALE-LETKF", "Miranda")
    results_dir: str = "results"
    seed: int = 20240624

    def limit_fields(self, names: list[str]) -> list[str]:
        if self.max_fields <= 0:
            return names
        return names[: self.max_fields]


def config_from_env(**overrides) -> BenchConfig:
    """Build a :class:`BenchConfig` from the environment plus overrides."""
    kwargs = dict(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        max_fields=int(os.environ.get("REPRO_BENCH_FIELDS", "4")),
        repeats=int(os.environ.get("REPRO_BENCH_REPEATS", "1")),
    )
    kwargs.update(overrides)
    return BenchConfig(**kwargs)
