"""Experiment drivers that regenerate every table and figure of the paper.

Each ``run_*`` function measures one artifact (see DESIGN.md's experiment
index) and returns an :class:`ExperimentResult` whose rows mirror the
paper's layout.  The benchmark modules under ``benchmarks/`` call these
drivers and persist their renderings; ``repro.harness.records`` assembles
EXPERIMENTS.md from the same objects.

Workload preparation is shared: fields come from the synthetic SDRBench
stand-ins at the configured scale, and every codec runs with the paper's
block geometry (64-element blocks, Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines import make_codec
from repro.core.compressor import SZOps
from repro.core.format import SZOpsCompressed
from repro.core.ops.dispatch import OPERATIONS, operation_names
from repro.datasets import generate_fields, get_dataset
from repro.harness.config import BenchConfig
from repro.metrics import Timer, mb_per_s, gb_per_s, mean_ratio
from repro.parallel import kernels
from repro.parallel.backends import ExecutionBackend, available_backends, get_backend
from repro.workflow import run_compressed, run_traditional

__all__ = [
    "ExperimentResult",
    "OpMeasurement",
    "prepare_fields",
    "compress_fields",
    "measure_ops_matrix",
    "run_table4",
    "run_figure5",
    "run_figure6",
    "run_table6",
    "run_table7",
    "run_ablation_format",
    "run_ablation_constant_blocks",
    "run_runtime_fusion",
    "run_parallel_backends",
    "largest_dataset",
    "DEFAULT_SCALAR",
]

#: Scalar operand used for scalar add/sub/mul across the evaluation
#: (mirrors the paper's Section V examples).
DEFAULT_SCALAR = 3.14

#: The paper's block geometry (Table VI implies 64-element blocks).
BLOCK_SIZE = 64


@dataclass
class ExperimentResult:
    """One regenerated table or figure, ready to render."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    extras: dict = field(default_factory=dict)


def prepare_fields(cfg: BenchConfig, dataset: str) -> dict[str, np.ndarray]:
    """Generate the configured subset of a dataset's fields."""
    spec = get_dataset(dataset)
    names = cfg.limit_fields([f.name for f in spec.fields])
    return generate_fields(dataset, scale=cfg.scale, seed=cfg.seed, fields=names)


def compress_fields(
    fields: dict[str, np.ndarray],
    eps: float,
    backend: str | ExecutionBackend = "serial",
    n_workers: int = 1,
    block_size: int = BLOCK_SIZE,
    mode: str = "abs",
) -> dict[str, SZOpsCompressed]:
    """Compress a timestep's worth of fields through an execution backend.

    This is the multi-field in-situ shape: one whole field per work item,
    distributed field-granular across the backend's workers (the process
    backend ships fields through shared memory and returns only the
    compressed streams over the pickle channel; its per-worker codecs are
    built lazily and reused across calls).  Streams are bit-identical to
    serial per-field compression on every backend.
    """
    chunks = [
        {
            "field": name,
            "eps": float(eps),
            "mode": mode,
            "block_size": int(block_size),
            "lo": 0,
            "hi": int(arr.size),
        }
        for name, arr in fields.items()
    ]
    owns = isinstance(backend, str)
    be = get_backend(backend, n_workers)
    try:
        run = be.run_kernel(kernels.compress_field_chunk, dict(fields), chunks)
    finally:
        if owns:
            be.close()
    return {
        chunk["field"]: SZOpsCompressed.from_bytes(blob)
        for chunk, blob in zip(chunks, run.results)
    }


# --------------------------------------------------------------------------
# Table IV — traditional-workflow throughput of the baseline codecs
# --------------------------------------------------------------------------


def run_table4(cfg: BenchConfig) -> ExperimentResult:
    """Throughput (MB/s) of every operation via the traditional workflow.

    Matches the paper's setup: Hurricane dataset, absolute eps 1e-4, the
    operation executed on decompressed data with recompression for
    compression-as-output operations (Section VI-B1's cost definition).
    """
    fields = prepare_fields(cfg, "Hurricane")
    codec_names = ["SZp", "SZ2", "SZ3", "SZx", "ZFP"]
    codecs = {name: make_codec(name) for name in codec_names}

    blobs = {
        name: {f: codecs[name].compress(arr, cfg.eps) for f, arr in fields.items()}
        for name in codec_names
    }
    total_bytes = sum(arr.nbytes for arr in fields.values())

    rows = []
    for op in operation_names():
        scalar = DEFAULT_SCALAR if OPERATIONS[op].needs_scalar else None
        row: list = [op]
        for name in codec_names:
            best = float("inf")
            for _ in range(cfg.repeats):
                seconds = 0.0
                for fname in fields:
                    res = run_traditional(codecs[name], blobs[name][fname], op, scalar)
                    seconds += res.timing.total
                best = min(best, seconds)
            row.append(mb_per_s(total_bytes, best))
        rows.append(row)

    return ExperimentResult(
        exp_id="table4",
        title=(
            "Table IV: throughput (MB/s) for operations on Hurricane via the "
            "traditional workflow (decompress + operate [+ recompress]), eps=1e-4"
        ),
        headers=["Operation", *codec_names],
        rows=rows,
        notes=[
            f"{len(fields)} fields, {total_bytes / 1e6:.1f} MB total, "
            f"scale={cfg.scale}",
            "Expected shape (paper): SZp fastest, ~1.5x over SZx; SZ2/SZ3/ZFP "
            "well behind.",
        ],
    )


# --------------------------------------------------------------------------
# Figures 5 & 6 — SZOps kernels vs the traditional SZp workflow
# --------------------------------------------------------------------------


@dataclass
class OpMeasurement:
    """One (dataset, operation) cell shared by Figures 5 and 6."""

    dataset: str
    op_name: str
    bytes: int
    szp_decompress_s: float
    szp_operate_s: float
    szp_compress_s: float
    szops_kernel_s: float

    @property
    def szp_total_s(self) -> float:
        return self.szp_decompress_s + self.szp_operate_s + self.szp_compress_s

    @property
    def reduction_pct(self) -> float:
        if self.szp_total_s <= 0:
            return 0.0
        return 100.0 * (1.0 - self.szops_kernel_s / self.szp_total_s)

    @property
    def speedup(self) -> float:
        if self.szops_kernel_s <= 0:
            return float("inf")
        return self.szp_total_s / self.szops_kernel_s


def measure_ops_matrix(cfg: BenchConfig) -> list[OpMeasurement]:
    """Measure every (dataset, operation) for SZp-traditional vs SZOps."""
    szp = make_codec("SZp", block_size=BLOCK_SIZE)
    szops = SZOps(block_size=BLOCK_SIZE)
    out: list[OpMeasurement] = []
    for dataset in cfg.datasets:
        fields = prepare_fields(cfg, dataset)
        total_bytes = sum(arr.nbytes for arr in fields.values())
        szp_blobs = {f: szp.compress(arr, cfg.eps) for f, arr in fields.items()}
        szops_blobs = {f: szops.compress(arr, cfg.eps) for f, arr in fields.items()}
        for op in operation_names():
            scalar = DEFAULT_SCALAR if OPERATIONS[op].needs_scalar else None
            best = None
            for _ in range(cfg.repeats):
                dec = opr = cmp_ = kern = 0.0
                for fname in fields:
                    tres = run_traditional(szp, szp_blobs[fname], op, scalar)
                    dec += tres.timing.decompress
                    opr += tres.timing.operate
                    cmp_ += tres.timing.compress
                    cres = run_compressed(szops_blobs[fname], op, scalar)
                    kern += cres.kernel_seconds
                cand = (dec, opr, cmp_, kern)
                if best is None or sum(cand) < sum(best):
                    best = cand
            out.append(
                OpMeasurement(
                    dataset=dataset,
                    op_name=op,
                    bytes=total_bytes,
                    szp_decompress_s=best[0],
                    szp_operate_s=best[1],
                    szp_compress_s=best[2],
                    szops_kernel_s=best[3],
                )
            )
    return out


def run_figure5(cfg: BenchConfig, matrix: list[OpMeasurement] | None = None) -> ExperimentResult:
    """Time-cost breakdown: SZp decompress/operate/compress vs SZOps total."""
    matrix = measure_ops_matrix(cfg) if matrix is None else matrix
    rows = [
        [
            m.dataset,
            m.op_name,
            m.szp_decompress_s,
            m.szp_operate_s,
            m.szp_compress_s,
            m.szp_total_s,
            m.szops_kernel_s,
            m.reduction_pct,
        ]
        for m in matrix
    ]
    return ExperimentResult(
        exp_id="figure5",
        title=(
            "Figure 5: time cost (s) of SZp traditional workflow stages vs the "
            "SZOps kernel, eps=1e-4"
        ),
        headers=[
            "Dataset",
            "Operation",
            "SZp decompress",
            "SZp operate",
            "SZp compress",
            "SZp total",
            "SZOps total",
            "reduction %",
        ],
        rows=rows,
        notes=[
            "Paper shape: SZOps time below SZp for every operation; largest "
            "reductions for negation / scalar add / scalar sub (fully "
            "compressed space)."
        ],
        extras={"matrix": matrix},
    )


def run_figure6(cfg: BenchConfig, matrix: list[OpMeasurement] | None = None) -> ExperimentResult:
    """Kernel throughput of SZOps vs end-to-end throughput of SZp."""
    matrix = measure_ops_matrix(cfg) if matrix is None else matrix
    rows = [
        [
            m.dataset,
            m.op_name,
            gb_per_s(m.bytes, m.szops_kernel_s),
            gb_per_s(m.bytes, m.szp_total_s),
            m.speedup,
        ]
        for m in matrix
    ]
    return ExperimentResult(
        exp_id="figure6",
        title=(
            "Figure 6: SZOps kernel throughput vs SZp end-to-end throughput "
            "(GB/s), eps=1e-4; rightmost column is the per-op speedup ratio "
            "printed above each bar in the paper"
        ),
        headers=["Dataset", "Operation", "SZOps GB/s", "SZp GB/s", "speedup x"],
        rows=rows,
        notes=[
            "Paper shape: SZOps above SZp everywhere (2x-200x); reductions "
            "are the slowest SZOps operations."
        ],
        extras={"matrix": matrix},
    )


# --------------------------------------------------------------------------
# Table VI — constant blocks per dataset
# --------------------------------------------------------------------------


def run_table6(cfg: BenchConfig, eps: float = 1e-2) -> ExperimentResult:
    """Constant / total block counts at the Table VI error bound.

    The paper states eps = 1e-2; on the synthetic stand-ins we interpret it
    as value-range-relative (the absolute reading degenerates for the
    small-amplitude fields — recorded in EXPERIMENTS.md).
    """
    szops = SZOps(block_size=BLOCK_SIZE)
    # Block statistics are cheap (SZOps compression only), so this table
    # always counts every field regardless of the max_fields cap — the
    # constant fraction is a per-dataset property, not a per-subset one.
    full_cfg = BenchConfig(
        eps=cfg.eps, scale=cfg.scale, max_fields=0, repeats=cfg.repeats,
        datasets=cfg.datasets, results_dir=cfg.results_dir, seed=cfg.seed,
    )
    rows = []
    for dataset in cfg.datasets:
        fields = prepare_fields(full_cfg, dataset)
        const = total = 0
        for arr in fields.values():
            c = szops.compress(arr, eps, mode="rel")
            const += c.n_constant_blocks
            total += c.n_blocks
        rows.append([dataset, const, total, 100.0 * const / max(total, 1)])
    return ExperimentResult(
        exp_id="table6",
        title="Table VI: constant blocks vs total blocks per dataset (eps=1e-2, value-range relative)",
        headers=["Dataset", "Const. blocks", "Total blocks", "% (Const./Total)"],
        rows=rows,
        notes=[
            "Paper: Hurricane 13%, CESM-ATM 1.5%, SCALE-LETKF 4%, Miranda 14%.",
            "Known deviation: synthetic SCALE-LETKF hydrometeors are exactly "
            "zero outside cloud blobs, so its constant fraction is higher "
            "than the paper's 4% (real fields carry denormal-scale noise).",
        ],
    )


# --------------------------------------------------------------------------
# Table VII — compression ratios
# --------------------------------------------------------------------------


def run_table7(cfg: BenchConfig) -> ExperimentResult:
    """Average compression ratios per dataset and codec at eps 1e-4."""
    codec_names = ["SZp", "SZ2", "SZ3", "SZx", "ZFP"]
    codecs = {name: make_codec(name) for name in codec_names}
    szops = SZOps(block_size=BLOCK_SIZE)
    rows = []
    for dataset in cfg.datasets:
        fields = prepare_fields(cfg, dataset)
        ratios: dict[str, list[float]] = {n: [] for n in ["SZOps", *codec_names]}
        for arr in fields.values():
            ratios["SZOps"].append(szops.compress(arr, cfg.eps).compression_ratio)
            for name in codec_names:
                ratios[name].append(
                    codecs[name].compress(arr, cfg.eps).compression_ratio
                )
        rows.append([dataset, *(mean_ratio(ratios[n]) for n in ["SZOps", *codec_names])])
    return ExperimentResult(
        exp_id="table7",
        title="Table VII: average compression ratios (eps=1e-4, absolute)",
        headers=["Dataset", "SZOps", "SZp", "SZ (SZ2)", "SZ3", "SZx", "ZFP"],
        rows=rows,
        notes=[
            "Aggregation: arithmetic mean of per-field ratios.",
            "Paper shape: SZOps > SZp on every dataset; SZ/SZ3 far above both; "
            "SZx/ZFP between.",
        ],
    )


# --------------------------------------------------------------------------
# Ablations backing the paper's Section VI-B claims
# --------------------------------------------------------------------------


def run_ablation_format(cfg: BenchConfig) -> ExperimentResult:
    """Section VI-B3: which SZp format overhead costs how much ratio.

    Toggles each SZp stream overhead off one at a time; with all three off
    the stream is SZOps-shaped and the ratio should approach SZOps's.
    """
    fields = prepare_fields(cfg, "Hurricane")
    variants = [
        ("SZp (faithful format)", dict()),
        ("- byte-length plane", dict(store_block_lengths=False)),
        ("- full sign bitmap", dict(full_sign_bitmap=False)),
        ("- word alignment", dict(word_align_payload=False)),
        (
            "all three off (SZOps-shaped)",
            dict(
                store_block_lengths=False,
                full_sign_bitmap=False,
                word_align_payload=False,
            ),
        ),
    ]
    rows = []
    for label, kwargs in variants:
        codec = make_codec("SZp", block_size=BLOCK_SIZE, **kwargs)
        ratios = [codec.compress(arr, cfg.eps).compression_ratio for arr in fields.values()]
        rows.append([label, mean_ratio(ratios)])
    szops = SZOps(block_size=BLOCK_SIZE)
    rows.append(
        [
            "SZOps container",
            mean_ratio(
                [szops.compress(arr, cfg.eps).compression_ratio for arr in fields.values()]
            ),
        ]
    )
    return ExperimentResult(
        exp_id="ablation_format",
        title="Ablation: SZp stream-format overheads vs compression ratio (Hurricane, eps=1e-4)",
        headers=["Variant", "mean ratio"],
        rows=rows,
        notes=[
            "Backs Section VI-B3: removing the per-block byte-length limits "
            "and related overheads recovers the SZOps ratio."
        ],
    )


# --------------------------------------------------------------------------
# Runtime fusion — fused op chain vs eager ops (repro.runtime)
# --------------------------------------------------------------------------


def largest_dataset(cfg: BenchConfig) -> str:
    """The configured dataset with the most elements per field."""
    return max(
        cfg.datasets,
        key=lambda name: int(np.prod(get_dataset(name).shape_at(cfg.scale))),
    )


def run_runtime_fusion(
    cfg: BenchConfig, scalar: float = 0.1, min_repeats: int = 3
) -> ExperimentResult:
    """Benchmark the fused 3-op chain (negate → ×scalar → mean) vs eager ops.

    Three variants on the largest synthetic dataset's first field:

    * **eager** — three ``apply_operation`` calls with the decoded-block
      cache disabled (the pre-runtime behavior: every partial op decodes);
    * **eager+cache** — the same three calls with the cache on (the decode
      inside ``scalar_multiply`` and ``mean`` hit when streams repeat);
    * **fused** — one ``apply_chain`` through :class:`LazyStream`: a single
      cold decode, pending transform folded into the reduction, no encode.

    The fused and eager results must be identical (asserted into the
    ``identical`` extra).  ``extras["bench"]`` carries the JSON payload that
    ``BENCH_runtime.json`` persists.
    """
    from repro.core.ops.dispatch import apply_chain
    from repro.runtime import cache_disabled, clear_cache

    dataset = largest_dataset(cfg)
    spec = get_dataset(dataset)
    fname = spec.fields[0].name
    arr = generate_fields(dataset, scale=cfg.scale, seed=cfg.seed, fields=[fname])[fname]
    szops = SZOps(block_size=BLOCK_SIZE)
    c = szops.compress(arr, cfg.eps)
    chain = [("negation", None), ("scalar_multiply", scalar), ("mean", None)]
    reps = max(cfg.repeats, min_repeats)

    def best(
        fn: Callable[[], float], prepare: Callable[[], object] | None = None
    ) -> tuple[float, float]:
        best_s, value = float("inf"), float("nan")
        for _ in range(reps):
            if prepare is not None:
                prepare()
            with Timer() as t:
                value = fn()
            best_s = min(best_s, t.seconds)
        return best_s, value

    with cache_disabled():
        eager_s, eager_value = best(lambda: apply_chain(c, chain, fused=False))
        # Per-op breakdown of the eager chain (Figure 5 style).
        breakdown = {}
        stream = c
        for name, s in chain:
            with Timer() as t:
                out = apply_chain(stream, [(name, s)], fused=False)
            breakdown[name] = t.seconds
            stream = out if not isinstance(out, float) else stream
    cached_s, cached_value = best(
        lambda: apply_chain(c, chain, fused=False), prepare=clear_cache
    )
    fused_s, fused_value = best(
        lambda: apply_chain(c, chain, fused=True), prepare=clear_cache
    )
    warm_s, warm_value = best(lambda: apply_chain(c, chain, fused=True))

    identical = eager_value == fused_value == cached_value == warm_value
    speedup = eager_s / fused_s if fused_s > 0 else float("inf")
    rows = [
        ["eager (no cache)", 1e3 * eager_s, 1.0, repr(eager_value)],
        ["eager + decoded-block cache", 1e3 * cached_s, eager_s / cached_s, repr(cached_value)],
        ["fused (cold cache)", 1e3 * fused_s, speedup, repr(fused_value)],
        ["fused (warm cache)", 1e3 * warm_s, eager_s / warm_s, repr(warm_value)],
    ]
    bench = {
        "experiment": "runtime_fusion",
        "chain": [name if s is None else f"{name}={s}" for name, s in chain],
        "dataset": dataset,
        "field": fname,
        "shape": list(arr.shape),
        "n_elements": int(arr.size),
        "eps": cfg.eps,
        "block_size": BLOCK_SIZE,
        "repeats": reps,
        "eager_seconds": eager_s,
        "eager_breakdown_seconds": breakdown,
        "eager_cached_seconds": cached_s,
        "fused_seconds": fused_s,
        "fused_warm_seconds": warm_s,
        "speedup_fused_vs_eager": speedup,
        "speedup_warm_vs_eager": eager_s / warm_s if warm_s > 0 else float("inf"),
        "result_mean": eager_value,
        "identical_results": bool(identical),
    }
    return ExperimentResult(
        exp_id="runtime_fusion",
        title=(
            f"Runtime fusion: negate → ×{scalar:g} → mean on {dataset}/{fname} "
            f"({arr.size} elements, eps={cfg.eps:g})"
        ),
        headers=["variant", "best of reps (ms)", "speedup vs eager", "mean"],
        rows=rows,
        notes=[
            "eager = three apply_operation calls, decoded-block cache off;",
            "fused = one LazyStream chain: one decode, no encode, transform "
            "folded into the reduction;",
            f"identical results across all variants: {identical}.",
        ],
        extras={"bench": bench},
    )


# --------------------------------------------------------------------------
# Parallel backends — serial vs threads vs processes on the chunked hot paths
# --------------------------------------------------------------------------


def run_parallel_backends(
    cfg: BenchConfig,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    dataset: str = "Miranda",
    min_repeats: int = 3,
) -> ExperimentResult:
    """Benchmark the execution backends on compression and reductions.

    For every backend × worker count on the synthetic Miranda density
    field: compress (with the QZ/LZ/BF stage split), decompress, and the
    backend-routed mean/variance reductions — best of ``repeats``.  Streams
    and reduction values are asserted identical to the serial baseline
    (bit-identity is the contract, not a tolerance), and the verdicts land
    in ``extras["bench"]`` for ``BENCH_parallel.json``.
    """
    import os

    spec = get_dataset(dataset)
    fname = spec.fields[0].name
    arr = generate_fields(dataset, scale=cfg.scale, seed=cfg.seed, fields=[fname])[fname]
    reps = max(cfg.repeats, min_repeats)
    cpus = os.cpu_count() or 1

    baseline = SZOps(block_size=BLOCK_SIZE, n_threads=1, backend="serial")
    ref_stream = baseline.compress(arr, cfg.eps).to_bytes()

    from repro.runtime.reduce import parallel_mean, parallel_variance

    rows: list[list] = []
    cells: list[dict] = []
    identical = True
    serial_compress: dict[int, float] = {}
    ref_reduce: dict[int, tuple[float, float]] = {}
    for backend_name in available_backends():
        for nw in workers:
            codec = SZOps(block_size=BLOCK_SIZE, n_threads=nw, backend=backend_name)
            try:
                best_c = float("inf")
                stages = {"quantize_s": 0.0, "lorenzo_s": 0.0, "encode_s": 0.0}
                stream = None
                for _ in range(reps):
                    timings: dict[str, float] = {}
                    with Timer() as t:
                        c = codec.compress(arr, cfg.eps, timings=timings)
                    if t.seconds < best_c:
                        best_c, stages, stream = t.seconds, timings, c
                best_d = float("inf")
                for _ in range(reps):
                    with Timer() as t:
                        out = codec.decompress(stream)
                    best_d = min(best_d, t.seconds)
                same_stream = stream.to_bytes() == ref_stream
                # Error-bound check with representation slack: half-ulp
                # rounding at the value scale, plus a float32 cast ulp
                # when the container stores float32 (same slack model as
                # the test suite's assert_within_bound fixture).
                scale_v = float(np.abs(arr).max()) + cfg.eps
                slack = float(np.spacing(scale_v))
                if arr.dtype == np.float32:
                    slack += float(np.spacing(np.float32(scale_v)))
                same_roundtrip = bool(
                    float(np.abs(out - arr).max()) <= cfg.eps + slack
                )
            finally:
                codec.close()

            best_r = float("inf")
            with get_backend(backend_name, nw) as be:
                for _ in range(reps):
                    with Timer() as t:
                        mu = parallel_mean(stream, be)
                        var = parallel_variance(stream, be)
                    best_r = min(best_r, t.seconds)
            if backend_name == "serial":
                serial_compress[nw] = best_c
                # Variance partials depend on the chunking, so the serial
                # reference is per worker count, never cross-count.
                ref_reduce[nw] = (mu, var)
            same_reduce = (mu, var) == ref_reduce[nw]
            identical = identical and same_stream and same_reduce and same_roundtrip

            speedup = serial_compress.get(nw, best_c) / best_c if best_c > 0 else 0.0
            rows.append(
                [
                    backend_name,
                    nw,
                    1e3 * best_c,
                    1e3 * best_d,
                    1e3 * best_r,
                    speedup,
                    "yes" if (same_stream and same_reduce) else "NO",
                ]
            )
            cells.append(
                {
                    "backend": backend_name,
                    "workers": nw,
                    "compress_seconds": best_c,
                    "compress_stage_seconds": {
                        "QZ": stages.get("quantize_s", 0.0),
                        "LZ": stages.get("lorenzo_s", 0.0),
                        "BF": stages.get("encode_s", 0.0),
                    },
                    "decompress_seconds": best_d,
                    "reduce_seconds": best_r,
                    "mean": mu,
                    "variance": var,
                    "stream_identical": bool(same_stream),
                    "reductions_identical": bool(same_reduce),
                }
            )

    bench = {
        "experiment": "parallel_backends",
        "dataset": dataset,
        "field": fname,
        "shape": list(arr.shape),
        "n_elements": int(arr.size),
        "bytes": int(arr.nbytes),
        "eps": cfg.eps,
        "block_size": BLOCK_SIZE,
        "repeats": reps,
        "workers": list(workers),
        "backends": list(available_backends()),
        "cpus": cpus,
        "all_identical": bool(identical),
        "cells": cells,
    }
    return ExperimentResult(
        exp_id="parallel_backends",
        title=(
            f"Execution backends on {dataset}/{fname} ({arr.size} elements, "
            f"eps={cfg.eps:g}, {cpus} CPU(s)): compress / decompress / "
            f"mean+variance, best of {reps}"
        ),
        headers=[
            "backend",
            "workers",
            "compress (ms)",
            "decompress (ms)",
            "mean+var (ms)",
            "speedup vs serial",
            "identical",
        ],
        rows=rows,
        notes=[
            "All backends share one chunking and one kernel set; streams and "
            "reductions are bit-identical by construction (asserted).",
            f"Host has {cpus} CPU(s); process/thread scaling is bounded by "
            "physical cores, so single-core hosts show overhead, not speedup.",
        ],
        extras={"bench": bench},
    )


def run_ablation_constant_blocks(cfg: BenchConfig) -> ExperimentResult:
    """Section VI-B2: reduction kernel time tracks the constant fraction."""
    from repro.datasets.synthetic import FieldSpec, synthesize_field
    from repro.core.ops import mean as c_mean

    shape = (64, 96, 96)
    szops = SZOps(block_size=BLOCK_SIZE)
    rows = []
    for plateau in (0.0, 0.2, 0.4, 0.6, 0.8):
        spec = FieldSpec("sweep", beta=6.3, amplitude=0.03, plateau=plateau, noise=5e-5)
        arr = synthesize_field(spec, shape, seed=cfg.seed)
        c = szops.compress(arr, cfg.eps)
        best = float("inf")
        for _ in range(max(cfg.repeats, 3)):
            with Timer() as t:
                c_mean(c)
            best = min(best, t.seconds)
        rows.append([plateau, c.constant_fraction * 100.0, best * 1e3])
    return ExperimentResult(
        exp_id="ablation_constant_blocks",
        title="Ablation: constant-block fraction vs mean-reduction kernel time",
        headers=["plateau fraction", "const blocks %", "mean kernel (ms)"],
        rows=rows,
        notes=[
            "Backs Section VI-B2: more constant blocks -> fewer decoded "
            "payload bits -> faster reductions."
        ],
    )
