"""Transform substrate: ZFP's integer lifting scheme."""

from repro.transforms.zfp_lifting import (
    fwd_lift,
    fwd_transform_block,
    inv_lift,
    inv_transform_block,
)

__all__ = ["fwd_lift", "inv_lift", "fwd_transform_block", "inv_transform_block"]
