"""ZFP's reversible integer lifting transform on length-4 vectors.

ZFP decorrelates each 4^d block with a separable, near-orthogonal transform
implemented as an integer lifting scheme (Lindstrom 2014).  The forward and
inverse passes below are the exact integer sequences from the reference
implementation (``fwd_lift`` / ``inv_lift``); they are mutually inverse in
exact integer arithmetic, which the property tests verify.

Both functions operate in place on the *last axis* of an int64 array whose
last dimension is 4, vectorized over all leading axes — one call transforms
every block row of every block simultaneously.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fwd_lift", "inv_lift", "fwd_transform_block", "inv_transform_block"]


def fwd_lift(a: np.ndarray) -> None:
    """Forward lifting along the last axis (length 4), in place.

    Mirrors zfp's ``fwd_lift``: a sequence of adds, halvings and subtracts
    that approximates the orthonormal 4-point transform while staying
    exactly invertible in integer arithmetic.
    """
    if a.shape[-1] != 4:
        raise ValueError("lifting operates on length-4 vectors")
    x = a[..., 0]
    y = a[..., 1]
    z = a[..., 2]
    w = a[..., 3]
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1


def inv_lift(a: np.ndarray) -> None:
    """Inverse lifting along the last axis (length 4), in place."""
    if a.shape[-1] != 4:
        raise ValueError("lifting operates on length-4 vectors")
    x = a[..., 0]
    y = a[..., 1]
    z = a[..., 2]
    w = a[..., 3]
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w


def fwd_transform_block(blocks: np.ndarray) -> None:
    """Separable forward transform of 4^d blocks, in place.

    ``blocks`` has shape ``(n_blocks, 4, ..., 4)`` with ``d`` trailing axes
    of length 4; the lifting is applied along every one of them.
    """
    d = blocks.ndim - 1
    for axis in range(1, d + 1):
        moved = np.moveaxis(blocks, axis, -1)
        fwd_lift(moved)


def inv_transform_block(blocks: np.ndarray) -> None:
    """Separable inverse transform of 4^d blocks, in place (reverse order)."""
    d = blocks.ndim - 1
    for axis in range(d, 0, -1):
        moved = np.moveaxis(blocks, axis, -1)
        inv_lift(moved)
