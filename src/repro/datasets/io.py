"""Raw binary field I/O in the SDRBench convention.

SDRBench distributes fields as headerless little-endian ``.f32`` / ``.dat``
files in C order; the geometry comes from the dataset documentation (our
catalog).  ``save_field`` / ``load_field`` implement that convention so
users with real SDRBench data can run every experiment on it: point
``REPRO_SDRBENCH_DIR`` at a directory laid out as
``<dir>/<dataset>/<field>.f32`` and the generators pick the real fields up
automatically (resampled by striding if larger than the working shape).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = ["save_field", "load_field", "try_load_real_field", "SDRBENCH_DIR_ENV"]

SDRBENCH_DIR_ENV = "REPRO_SDRBENCH_DIR"


def save_field(path: str | Path, field: np.ndarray) -> None:
    """Write a field as headerless little-endian float32, C order."""
    arr = np.ascontiguousarray(field, dtype="<f4")
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    arr.tofile(path)


def load_field(path: str | Path, shape: tuple[int, ...]) -> np.ndarray:
    """Read a headerless little-endian float32 field of the given shape."""
    arr = np.fromfile(path, dtype="<f4")
    expected = int(np.prod(shape, dtype=np.int64))
    if arr.size != expected:
        raise ValueError(
            f"{path}: {arr.size} float32 values on disk, expected {expected} "
            f"for shape {shape}"
        )
    return arr.reshape(shape)


def _strided_resample(arr: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Subsample a larger grid down to ``shape`` by regular striding."""
    if arr.ndim != len(shape):
        raise ValueError(f"rank mismatch: data {arr.ndim}-D, target {len(shape)}-D")
    slices = []
    for have, want in zip(arr.shape, shape):
        if have < want:
            raise ValueError(f"real field smaller than working shape: {arr.shape} < {shape}")
        step = have // want
        slices.append(slice(0, step * want, step))
    return np.ascontiguousarray(arr[tuple(slices)])


def try_load_real_field(spec, field_name: str, shape: tuple[int, ...]):
    """Load ``<REPRO_SDRBENCH_DIR>/<dataset>/<field>.f32`` if present.

    Returns None (falling back to synthesis) when the env var is unset or
    the file is missing; raises only on malformed files, so a typo'd
    directory degrades gracefully to synthetic data.
    """
    root = os.environ.get(SDRBENCH_DIR_ENV)
    if not root:
        return None
    base = Path(root) / spec.name
    for suffix in (".f32", ".dat"):
        path = base / f"{field_name}{suffix}"
        if path.is_file():
            full = load_field(path, spec.paper_shape)
            return _strided_resample(full, shape)
    return None
