"""Synthetic scientific-field generators.

The paper evaluates on four SDRBench datasets (Hurricane ISABEL, CESM-ATM,
SCALE-LETKF, Miranda).  Those multi-gigabyte archives are not available
offline, so this module synthesizes stand-in fields with the *statistical
properties the evaluation depends on*:

* spatial smoothness (power-law spectra -> controls the Lorenzo delta
  widths and therefore every compressor's ratio),
* flat/calm regions (-> controls the constant-block fraction of Table VI
  and the reduction fast path of Table V),
* near-zero sparse fields (hydrometeor-style -> the extreme
  compressibility of SCALE-LETKF in Table VII),
* small-scale measurement noise (-> bounds the achievable ratio the way
  real sensor/simulation noise does).

Fields are produced by spectral synthesis: white Gaussian noise is shaped
in Fourier space by ``(k + k0)^(-beta/2)``, inverse-transformed, normalized
to a target amplitude, then optionally soft-thresholded into zero plateaus
and dusted with white noise.  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FieldSpec", "gaussian_random_field", "synthesize_field"]


@dataclass(frozen=True)
class FieldSpec:
    """Statistical recipe for one synthetic field.

    Parameters
    ----------
    name : field name (mirrors the real dataset's variable names).
    beta : spectral slope; larger = smoother (Miranda ~3.5, climate ~2).
    amplitude : half-range of the normalized field before thresholding.
    plateau : fraction (0..1) of the domain flattened to exactly the
        plateau level — models calm/no-cloud/no-rain regions and directly
        feeds the constant-block statistics.
    sparse : if True the field is one-sided (ReLU-like), concentrating
        most of the domain at exactly 0 — hydrometeor-style fields.
    noise : white-noise amplitude relative to ``amplitude``.
    offset : additive constant (fields are rarely zero-centred in reality).
    envelope : lognormal intermittency strength.  Real scientific fields
        are not statistically homogeneous — activity is concentrated in
        fronts/eddies/storms, making the delta distribution heavy-tailed.
        This is what entropy coders (SZ2/SZ3's Huffman) and
        exponent-adaptive codecs (SZx, ZFP) exploit beyond blockwise
        fixed-length encoding, so it is essential for reproducing Table
        VII's codec ordering.  0 disables; ~1.2 gives a realistic ~20x
        local-activity dynamic range.
    """

    name: str
    beta: float = 2.5
    amplitude: float = 1.0
    plateau: float = 0.0
    sparse: bool = False
    noise: float = 0.0
    offset: float = 0.0
    envelope: float = 0.0


def gaussian_random_field(
    shape: tuple[int, ...], beta: float, rng: np.random.Generator, k0: float = 3.0
) -> np.ndarray:
    """Gaussian random field with isotropic spectrum ``(k + k0)^(-beta/2)``.

    Returned normalized to zero mean and unit max-abs.
    """
    freqs = [np.fft.fftfreq(s) * s for s in shape[:-1]]
    freqs.append(np.fft.rfftfreq(shape[-1]) * shape[-1])
    grids = np.meshgrid(*freqs, indexing="ij")
    k = np.sqrt(sum(g * g for g in grids))
    amp = (k + k0) ** (-beta / 2.0)
    noise = rng.normal(size=k.shape) + 1j * rng.normal(size=k.shape)
    spec = amp * noise
    field = np.fft.irfftn(spec, s=shape, axes=tuple(range(len(shape))))
    field -= field.mean()
    peak = np.abs(field).max()
    if peak > 0:
        field /= peak
    return field


def synthesize_field(
    spec: FieldSpec, shape: tuple[int, ...], seed: int
) -> np.ndarray:
    """Materialize a :class:`FieldSpec` at the given shape (float32)."""
    rng = np.random.default_rng(seed)
    field = gaussian_random_field(shape, spec.beta, rng)

    if spec.envelope > 0:
        mod = gaussian_random_field(shape, spec.beta + 1.0, rng)
        sd = mod.std()
        if sd > 0:
            field = field * np.exp(spec.envelope * (mod / sd))
        peak = np.abs(field).max()
        if peak > 0:
            field /= peak

    if spec.sparse:
        # One-sided field: only the strongest excursions survive, the rest
        # of the domain is exactly zero (rain/cloud water style).
        threshold = np.quantile(field, 0.5 + 0.5 * max(spec.plateau, 0.5))
        field = np.maximum(field - threshold, 0.0)
        peak = field.max()
        if peak > 0:
            field /= peak
    elif spec.plateau > 0:
        # Fill-value slab: the leading `plateau` fraction of the first axis
        # is set to a single constant.  Real datasets get their constant
        # blocks from exactly this structure — terrain/land masks and fill
        # values (Hurricane), quiescent unmixed layers (Miranda), inactive
        # altitudes (SCALE W) — regions that hold one fill value and
        # therefore quantize to constant blocks in flattened order.
        k = int(round(spec.plateau * shape[0]))
        if k:
            field[:k] = 0.0

    field *= spec.amplitude
    if spec.noise > 0:
        keep_zero = field == 0.0
        field = field + rng.normal(
            scale=spec.noise * spec.amplitude, size=field.shape
        )
        # Plateaus stay exactly flat: real calm regions are flat because the
        # physics is inactive there, not because noise is absent — but the
        # constant-block statistics the paper reports require genuinely
        # quantization-constant regions, so noise is masked out of them.
        field[keep_zero] = 0.0
    field += spec.offset
    return field.astype(np.float32)
