"""Catalog of the paper's four evaluation datasets (Table III).

Each entry records the real dataset's geometry (field count, dimensions,
size) and the synthetic recipe that stands in for it (see
:mod:`repro.datasets.synthetic` and the substitution table in DESIGN.md).
The default working shapes shrink the grids so the pure-Python baseline
codecs stay tractable; ``scale`` rescales linearly per axis and
``shape=None, scale=1.0`` gives the defaults below.  If the environment
variable ``REPRO_SDRBENCH_DIR`` points at a directory containing real
SDRBench ``.f32`` files, those are loaded instead (see
:mod:`repro.datasets.io`).

Recipe calibration targets (validated by ``tests/datasets``):

* Table VII compression-ratio ordering: SCALE-LETKF >> Miranda > Hurricane
  ~ CESM-ATM for every codec, with SZOps > SZp everywhere;
* Table VI constant-block ordering: Miranda ~ Hurricane >> SCALE-LETKF >
  CESM-ATM (the paper's 14 / 13 / 4 / 1.5 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import FieldSpec, synthesize_field

__all__ = ["DatasetSpec", "SDRBENCH", "dataset_names", "get_dataset", "generate_fields"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the paper's Table III plus its synthetic recipe."""

    name: str
    paper_shape: tuple[int, ...]
    default_shape: tuple[int, ...]
    fields: tuple[FieldSpec, ...]
    description: str = ""

    @property
    def n_fields(self) -> int:
        return len(self.fields)

    def shape_at(self, scale: float) -> tuple[int, ...]:
        """Default working shape rescaled by ``scale`` per axis (min 8)."""
        return tuple(max(8, int(round(s * scale))) for s in self.default_shape)


SDRBENCH: dict[str, DatasetSpec] = {
    "Hurricane": DatasetSpec(
        name="Hurricane",
        paper_shape=(100, 500, 500),
        default_shape=(20, 100, 100),
        description="Hurricane ISABEL weather simulation (IEEE Vis 2004)",
        fields=(
            FieldSpec("U", beta=4.5, amplitude=1239.5488803, plateau=0.084, noise=0.0003, envelope=1.3),
            FieldSpec("V", beta=4.5, amplitude=552.29627319, plateau=0.084, noise=0.0003, envelope=1.3),
            FieldSpec("W", beta=4.2, amplitude=1481.14999672, plateau=0.168, noise=0.0003, envelope=1.3),
            FieldSpec("TC", beta=5.0, amplitude=344.4066708, plateau=0.056, noise=0.0002, offset=10.0, envelope=1.3),
            FieldSpec("P", beta=5.5, amplitude=1222.12592836, noise=0.0002, envelope=1.3),
            FieldSpec("QVAPOR", beta=4.5, amplitude=0.79343294, plateau=0.175, noise=0.0002, envelope=1.3),
            FieldSpec("PRECIP", beta=4.5, amplitude=0.01897707, sparse=True, plateau=0.8, noise=0.0001),
        ),
    ),
    "CESM-ATM": DatasetSpec(
        name="CESM-ATM",
        paper_shape=(1800, 3600),
        default_shape=(360, 720),
        description="CESM atmosphere component, 2-D climate fields",
        fields=(
            FieldSpec("CLDHGH", beta=3.2, amplitude=22.19865394, plateau=0.015, noise=0.0004, offset=0.4, envelope=1.3),
            FieldSpec("CLDLOW", beta=3.2, amplitude=31.54344998, plateau=0.015, noise=0.0004, offset=0.4, envelope=1.3),
            FieldSpec("FLDSC", beta=3.5, amplitude=209.3706427, noise=0.0003, offset=300.0, envelope=1.3),
            FieldSpec("FREQSH", beta=3.0, amplitude=19.09239443, plateau=0.018, noise=0.0004, offset=0.3, envelope=1.3),
            FieldSpec("PHIS", beta=3.8, amplitude=0.56442539, noise=0.0002, envelope=1.3),
        ),
    ),
    "SCALE-LETKF": DatasetSpec(
        name="SCALE-LETKF",
        paper_shape=(98, 1200, 1200),
        default_shape=(13, 150, 150),
        description="SCALE-LETKF regional weather ensemble",
        fields=(
            FieldSpec("QC", beta=5.0, amplitude=0.00085624, sparse=True, plateau=0.92),
            FieldSpec("QR", beta=5.0, amplitude=0.0011139, sparse=True, plateau=0.94),
            FieldSpec("QI", beta=5.0, amplitude=0.00090529, sparse=True, plateau=0.93),
            FieldSpec("QS", beta=5.0, amplitude=0.00057417, sparse=True, plateau=0.91),
            FieldSpec("QG", beta=5.0, amplitude=0.00094, sparse=True, plateau=0.95),
            FieldSpec("QV", beta=5.2, amplitude=0.05509669, plateau=0.048, noise=0.0001, envelope=1.3),
            FieldSpec("RH", beta=5.0, amplitude=0.9539749, noise=0.0002, offset=50.0, envelope=1.3),
            FieldSpec("T", beta=5.5, amplitude=1.40650478, noise=0.0001, offset=273.0, envelope=1.3),
            FieldSpec("U", beta=5.0, amplitude=0.45436477, noise=0.0002, envelope=1.3),
            FieldSpec("V", beta=5.0, amplitude=0.35451578, noise=0.0002, envelope=1.3),
            FieldSpec("W", beta=4.8, amplitude=0.19865489, plateau=0.09, noise=0.0002, envelope=1.3),
            FieldSpec("PRES", beta=6.0, amplitude=0.10771646, noise=5e-05, offset=90000.0, envelope=1.3),
        ),
    ),
    "Miranda": DatasetSpec(
        name="Miranda",
        paper_shape=(256, 384, 384),
        default_shape=(64, 96, 96),
        description="Miranda large-eddy turbulence simulation",
        fields=(
            FieldSpec("density", beta=6.5, amplitude=0.30645327, plateau=0.077, noise=5e-05, offset=2.0, envelope=1.3),
            FieldSpec("diffusivity", beta=6.3, amplitude=0.03868517, plateau=0.09, noise=5e-05, envelope=1.3),
            FieldSpec("pressure", beta=6.8, amplitude=0.0755471, plateau=0.05, noise=3e-05, offset=30.0, envelope=1.3),
            FieldSpec("velocityx", beta=6.2, amplitude=0.48660299, plateau=0.045, noise=6e-05, envelope=1.3),
            FieldSpec("velocityy", beta=6.2, amplitude=0.61058008, plateau=0.045, noise=6e-05, envelope=1.3),
            FieldSpec("velocityz", beta=6.2, amplitude=0.85257911, plateau=0.059, noise=6e-05, envelope=1.3),
            FieldSpec("viscocity", beta=6.3, amplitude=0.04465665, plateau=0.09, noise=5e-05, envelope=1.3),
        ),
    ),
}


def dataset_names() -> list[str]:
    """Dataset names in the paper's Table III order."""
    return list(SDRBENCH)


def get_dataset(name: str) -> DatasetSpec:
    try:
        return SDRBENCH[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; valid: {', '.join(SDRBENCH)}"
        ) from None


def generate_fields(
    name: str,
    scale: float = 1.0,
    shape: tuple[int, ...] | None = None,
    seed: int = 20240624,
    fields: list[str] | None = None,
) -> dict[str, np.ndarray]:
    """Synthesize (or load, see :mod:`repro.datasets.io`) a dataset's fields.

    Returns an ordered mapping field name -> float32 array.  ``fields``
    restricts to a subset; ``shape`` overrides the scaled default shape.
    The per-field seed mixes the dataset seed with the field index so each
    field is an independent realization.
    """
    from repro.datasets.io import try_load_real_field  # cycle-free local import

    spec = get_dataset(name)
    target_shape = shape if shape is not None else spec.shape_at(scale)
    wanted = set(fields) if fields is not None else None
    out: dict[str, np.ndarray] = {}
    for i, fspec in enumerate(spec.fields):
        if wanted is not None and fspec.name not in wanted:
            continue
        real = try_load_real_field(spec, fspec.name, target_shape)
        if real is not None:
            out[fspec.name] = real
        else:
            out[fspec.name] = synthesize_field(
                fspec, target_shape, seed=seed + 1009 * i
            )
    if wanted is not None and len(out) != len(wanted):
        missing = wanted - set(out)
        raise KeyError(f"dataset {name!r} has no fields named {sorted(missing)}")
    return out
