"""Dataset substrate: synthetic SDRBench stand-ins and raw binary I/O."""

from repro.datasets.io import load_field, save_field
from repro.datasets.sdrbench import (
    SDRBENCH,
    DatasetSpec,
    dataset_names,
    generate_fields,
    get_dataset,
)
from repro.datasets.synthetic import FieldSpec, gaussian_random_field, synthesize_field

__all__ = [
    "SDRBENCH",
    "DatasetSpec",
    "FieldSpec",
    "dataset_names",
    "generate_fields",
    "get_dataset",
    "gaussian_random_field",
    "synthesize_field",
    "load_field",
    "save_field",
]
