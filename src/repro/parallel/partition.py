"""Work partitioning helpers for the blockwise executors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["even_ranges", "block_aligned_ranges", "BlockChunk", "block_chunks"]


def even_ranges(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n_items)`` into up to ``n_parts`` near-equal ranges.

    Empty ranges are dropped, so fewer parts are returned when
    ``n_items < n_parts``.
    """
    if n_items < 0 or n_parts <= 0:
        raise ValueError("n_items must be >= 0 and n_parts > 0")
    parts = min(n_parts, max(n_items, 1))
    bounds = np.linspace(0, n_items, parts + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


@dataclass(frozen=True)
class BlockChunk:
    """One contiguous run of compression blocks plus its element bounds.

    ``[block_lo, block_hi)`` indexes blocks; ``[elem_lo, elem_hi)`` are the
    corresponding element positions in the flattened array.  Every chunk
    starts on a block boundary, so when the block size is a multiple of 8
    the per-chunk sign/payload sections of all non-final chunks are whole
    bytes — the alignment contract that lets independently encoded chunks
    be written at precomputed byte offsets.
    """

    block_lo: int
    block_hi: int
    elem_lo: int
    elem_hi: int

    @property
    def n_blocks(self) -> int:
        return self.block_hi - self.block_lo

    @property
    def n_elements(self) -> int:
        return self.elem_hi - self.elem_lo


def block_chunks(n_elements: int, block_size: int, n_parts: int) -> list[BlockChunk]:
    """Partition an array into up to ``n_parts`` block-aligned chunks.

    This is the one block-aligned element-bounds derivation shared by the
    compressor's chunked encode/decode paths and
    :func:`block_aligned_ranges`; only the globally last chunk may end on a
    ragged (partial) block.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n_blocks = (n_elements + block_size - 1) // block_size
    return [
        BlockChunk(
            block_lo=lo,
            block_hi=hi,
            elem_lo=lo * block_size,
            elem_hi=min(hi * block_size, n_elements),
        )
        for lo, hi in even_ranges(n_blocks, n_parts)
    ]


def block_aligned_ranges(
    n_elements: int, block_size: int, n_parts: int
) -> list[tuple[int, int]]:
    """Element ranges aligned to compression-block boundaries.

    Each returned (start, stop) covers whole blocks except possibly the
    final range, which absorbs the ragged tail.  This is the partitioning
    contract that keeps independently encoded chunks byte-aligned.
    """
    return [
        (c.elem_lo, c.elem_hi)
        for c in block_chunks(n_elements, block_size, n_parts)
    ]
