"""Work partitioning helpers for the blockwise executors."""

from __future__ import annotations

import numpy as np

__all__ = ["even_ranges", "block_aligned_ranges"]


def even_ranges(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, n_items)`` into up to ``n_parts`` near-equal ranges.

    Empty ranges are dropped, so fewer parts are returned when
    ``n_items < n_parts``.
    """
    if n_items < 0 or n_parts <= 0:
        raise ValueError("n_items must be >= 0 and n_parts > 0")
    parts = min(n_parts, max(n_items, 1))
    bounds = np.linspace(0, n_items, parts + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


def block_aligned_ranges(
    n_elements: int, block_size: int, n_parts: int
) -> list[tuple[int, int]]:
    """Element ranges aligned to compression-block boundaries.

    Each returned (start, stop) covers whole blocks except possibly the
    final range, which absorbs the ragged tail.  This is the partitioning
    contract that keeps independently encoded chunks byte-aligned.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    n_blocks = (n_elements + block_size - 1) // block_size
    return [
        (lo * block_size, min(hi * block_size, n_elements))
        for lo, hi in even_ranges(n_blocks, n_parts)
    ]
