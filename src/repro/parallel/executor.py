"""Thread-pool executor over block ranges.

Stand-in for the 12-thread OpenMP execution of the paper's CPU SZp:
compression blocks are independent, so chunked kernels can run on a thread
pool (NumPy's packing kernels release the GIL for the bulk of their work).
The :class:`~repro.core.compressor.SZOps` class embeds the same pattern;
this standalone executor is for user kernels — e.g. applying a
compressed-domain operation to many fields concurrently, as the in-situ
statistics example does.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.parallel.partition import even_ranges

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ChunkedExecutor", "parallel_map"]


class ChunkedExecutor:
    """Reusable thread pool running range-chunked kernels.

    >>> ex = ChunkedExecutor(n_threads=2)
    >>> ex.map_ranges(lambda lo, hi: hi - lo, n_items=10)
    [5, 5]
    >>> ex.close()
    """

    # Lock discipline (verified lexically by `repro.cli lint`'s lockcheck
    # pass): every mutation of these attributes must hold self._lock.  An
    # executor may be shared across threads — e.g. several in-situ fields
    # reducing concurrently — and an unguarded lazy `_ensure_pool` can
    # create two pools and leak one.
    _GUARDED_ATTRS = ("_pool",)

    def __init__(self, n_threads: int = 1) -> None:
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        self.n_threads = n_threads
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
            return self._pool

    def map_ranges(
        self, fn: Callable[[int, int], R], n_items: int
    ) -> list[R]:
        """Apply ``fn(lo, hi)`` over an even partition of ``[0, n_items)``.

        Results come back in range order, so callers can concatenate them.
        """
        ranges = even_ranges(n_items, self.n_threads)
        if len(ranges) == 1:
            lo, hi = ranges[0]
            return [fn(lo, hi)]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, lo, hi) for lo, hi in ranges]
        return [f.result() for f in futures]

    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to each item concurrently, preserving order."""
        if self.n_threads == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # Shut down outside the lock: worker threads may re-enter
            # map_* methods while draining.
            pool.shutdown(wait=True)

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_map(fn: Callable[[T], R], items: Iterable[T], n_threads: int) -> list[R]:
    """One-shot ordered parallel map (convenience wrapper)."""
    with ChunkedExecutor(n_threads) as ex:
        return ex.map_items(fn, list(items))
