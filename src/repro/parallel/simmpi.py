"""In-process simulated MPI communicator.

The paper's introduction motivates compressed-domain operations with
error-bounded MPI collectives ([18]): every participating process currently
has to fully decompress incoming streams, reduce, and recompress.  Real MPI
is not available offline, so this module provides a deterministic
in-process rank simulator with the mpi4py-style subset the examples and the
collective substrate need: ``send``/``recv``, ``bcast``, ``gather``,
``allgather``, ``allreduce``, and ``barrier``.

Each rank runs as a thread executing the same SPMD function; point-to-point
channels are queues keyed by (src, dst, tag).  The simulator is for
*correct semantics*, not for network-performance modelling — the collective
benchmarks measure compute cost (decompression vs compressed-domain
kernels), which is exactly the component SZOps claims to reduce.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

__all__ = ["SimComm", "run_spmd"]


class _World:
    """Shared state of one SPMD run."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.channels: dict[tuple[int, int, int], queue.Queue] = {}
        self.channel_lock = threading.Lock()
        self.barrier = threading.Barrier(size)

    def channel(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.channel_lock:
            if key not in self.channels:
                self.channels[key] = queue.Queue()
            return self.channels[key]


class SimComm:
    """Communicator handle passed to each SPMD rank function."""

    #: Seconds a blocked receive waits before declaring deadlock.
    TIMEOUT = 60.0

    def __init__(self, world: _World, rank: int) -> None:
        self._world = world
        self.rank = rank
        self.size = world.size

    # ------------------------------------------------------------------ p2p

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        self._world.channel(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        try:
            return self._world.channel(source, self.rank, tag).get(
                timeout=self.TIMEOUT
            )
        except queue.Empty:
            raise RuntimeError(
                f"rank {self.rank} deadlocked waiting for rank {source} "
                f"(tag {tag})"
            ) from None

    # ------------------------------------------------------------------ collectives

    def barrier(self) -> None:
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.send(obj, dst, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag=-2)
            return out
        self.send(obj, root, tag=-2)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce with a binary ``op`` at rank 0, then broadcast."""
        gathered = self.gather(obj, root=0)
        if self.rank == 0:
            acc = gathered[0]
            for item in gathered[1:]:
                acc = op(acc, item)
        else:
            acc = None
        return self.bcast(acc, root=0)


def run_spmd(size: int, fn: Callable[[SimComm], Any]) -> list[Any]:
    """Run ``fn(comm)`` on ``size`` simulated ranks; return per-rank results.

    Exceptions in any rank are re-raised in the caller (first failing rank
    wins), so tests see real tracebacks instead of hangs.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    world = _World(size)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(SimComm(world, rank))
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            # Unblock anyone waiting on the barrier.
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Prefer the root-cause exception: a rank that died aborts the barrier,
    # which surfaces as BrokenBarrierError in the *other* ranks.
    broken = None
    for exc in errors:
        if isinstance(exc, threading.BrokenBarrierError):
            broken = exc
        elif exc is not None:
            raise exc
    if broken is not None:
        raise broken
    return results
