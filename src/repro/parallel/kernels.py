"""Module-level chunk kernels for the execution backends.

Every kernel here is picklable by qualified name (the process backend's
requirement) and follows the one calling convention of
:data:`repro.parallel.backends.base.ChunkKernel`: ``kernel(arrays, chunk)``
where ``arrays`` maps names to NumPy views (inputs plus in-place outputs)
and ``chunk`` is a small dict of plain values.  Kernels write bulk results
into the preallocated output arrays at chunk-specific offsets and return
only small summaries, so nothing large ever crosses the pickle boundary.

The same kernels serve all three backends — serial and threads call them
against the caller's own arrays, processes against shared-memory views —
which is what makes cross-backend bit-identity a structural property
rather than a test hope.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bitstream import BitpackKernel, resolve_kernel
from repro.core.encode import decode_block_sections, encode_block_sections

__all__ = [
    "encode_chunk",
    "decode_chunk",
    "reduce_sum_chunk",
    "reduce_sq_dev_chunk",
    "reduce_extreme_chunk",
    "compress_field_chunk",
]


#: Lazy per-worker bitpack-kernel cache, keyed by requested kernel name.
#: Pool workers are long-lived, so each resolves its kernel variant once
#: and reuses the instance across chunks — for the numba variant this is
#: what keeps the JIT compilation a one-time per-worker cost.
_BITPACK_KERNELS: dict[str, BitpackKernel] = {}


def _bitpack_kernel(name: str) -> BitpackKernel:
    kern = _BITPACK_KERNELS.get(name)
    if kern is None:
        kern = resolve_kernel(name)
        _BITPACK_KERNELS[name] = kern
    return kern


# ---------------------------------------------------------------------------
# compressor kernels (BF stage over a block-aligned chunk)
# ---------------------------------------------------------------------------


def encode_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> tuple[int, int]:
    """Encode one block-aligned chunk's sign + payload sections in place.

    Expects ``mags``/``signs`` (per element), ``widths``/``lens`` (per
    block), and the ``sign_out``/``payload_out`` output sections; the
    chunk carries block bounds (``lo``/``hi``), element bounds
    (``elem_lo``/``elem_hi``) and the byte offsets where this chunk's
    sections land (``sign_off``/``payload_off`` — byte-exact because
    chunks are block-aligned and the block size is a multiple of 8).
    """
    lo, hi = chunk["lo"], chunk["hi"]
    elo, ehi = chunk["elem_lo"], chunk["elem_hi"]
    sign_bytes, payload_bytes = encode_block_sections(
        arrays["mags"][elo:ehi],
        arrays["signs"][elo:ehi],
        arrays["widths"][lo:hi],
        arrays["lens"][lo:hi],
        kernel=_bitpack_kernel(chunk.get("kernel", "auto")),
    )
    so, po = chunk["sign_off"], chunk["payload_off"]
    arrays["sign_out"][so : so + sign_bytes.size] = sign_bytes
    arrays["payload_out"][po : po + payload_bytes.size] = payload_bytes
    return int(sign_bytes.size), int(payload_bytes.size)


def decode_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> int:
    """Decode one chunk's blocks back to signed deltas, written in place.

    Expects ``sign_bytes``/``payload_bytes`` (whole sections),
    ``widths``/``lens`` (per block) and the ``deltas_out`` output; the
    chunk carries block/element bounds plus this chunk's byte ranges into
    the two sections (``sign_b0``/``sign_b1``, ``payload_b0``/``payload_b1``).
    """
    lo, hi = chunk["lo"], chunk["hi"]
    elo, ehi = chunk["elem_lo"], chunk["elem_hi"]
    deltas = decode_block_sections(
        arrays["sign_bytes"][chunk["sign_b0"] : chunk["sign_b1"]],
        arrays["payload_bytes"][chunk["payload_b0"] : chunk["payload_b1"]],
        arrays["widths"][lo:hi],
        arrays["lens"][lo:hi],
        kernel=_bitpack_kernel(chunk.get("kernel", "auto")),
    )
    arrays["deltas_out"][elo:ehi] = deltas
    return ehi - elo


# ---------------------------------------------------------------------------
# reduction kernels (partial aggregates over the stored quantized values)
# ---------------------------------------------------------------------------


def reduce_sum_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> float:
    """Partial sum of ``q[lo:hi]`` in float64 (exact for |q| < 2^53)."""
    return float(arrays["q"][chunk["lo"] : chunk["hi"]].sum(dtype=np.float64))


def reduce_sq_dev_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> float:
    """Partial sum of squared deviations from ``chunk['mu_q']``."""
    dev = arrays["q"][chunk["lo"] : chunk["hi"]].astype(np.float64) - chunk["mu_q"]
    return float(np.dot(dev, dev))


def reduce_extreme_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> int:
    """Partial min or max (``chunk['kind']``) of ``q[lo:hi]``."""
    q = arrays["q"][chunk["lo"] : chunk["hi"]]
    return int(q.min() if chunk["kind"] == "min" else q.max())


# ---------------------------------------------------------------------------
# in-situ multi-field kernel (one whole field per chunk)
# ---------------------------------------------------------------------------

#: Lazy per-worker codec cache, keyed by block size.  Pool workers are
#: long-lived, so each builds its codec state once and reuses it across
#: fields and timesteps (warm-pool amortization).
_FIELD_CODECS: dict[int, Any] = {}


def _field_codec(block_size: int) -> Any:
    codec = _FIELD_CODECS.get(block_size)
    if codec is None:
        from repro.core.compressor import SZOps

        codec = SZOps(block_size=block_size, n_threads=1, backend="serial")
        _FIELD_CODECS[block_size] = codec
    return codec


def compress_field_chunk(arrays: dict[str, np.ndarray], chunk: dict[str, Any]) -> bytes:
    """Compress one named field end to end; returns the serialized stream.

    The chunk names the field (``field``), the error bound (``eps``), its
    interpretation (``mode``) and the block size.  The returned bytes are
    the *compressed* stream — small relative to the field — so this is the
    one kernel whose result legitimately rides the pickle channel.
    """
    codec = _field_codec(int(chunk["block_size"]))
    c = codec.compress(arrays[chunk["field"]], chunk["eps"], mode=chunk.get("mode", "abs"))
    return bytes(c.to_bytes())
