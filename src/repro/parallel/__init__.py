"""Execution substrate: thread executor and simulated-MPI collectives."""

from repro.parallel.collectives import (
    compressed_mean_allreduce,
    compressed_stats_allreduce,
    local_quantized_moments,
    traditional_stats_allreduce,
)
from repro.parallel.executor import ChunkedExecutor, parallel_map
from repro.parallel.partition import block_aligned_ranges, even_ranges
from repro.parallel.simmpi import SimComm, run_spmd

__all__ = [
    "ChunkedExecutor",
    "parallel_map",
    "even_ranges",
    "block_aligned_ranges",
    "SimComm",
    "run_spmd",
    "local_quantized_moments",
    "compressed_mean_allreduce",
    "compressed_stats_allreduce",
    "traditional_stats_allreduce",
]
