"""Execution substrate: pluggable backends, thread executor, simulated MPI.

The collectives layer imports the compressor (ranks hold compressed
streams), while the compressor routes its chunked hot paths through
:mod:`repro.parallel.backends`; the collectives/simmpi names are therefore
exported lazily so ``repro.core`` ↔ ``repro.parallel`` stays acyclic.
"""

from __future__ import annotations

from typing import Any

from repro.parallel.backends import (
    BackendError,
    BackendWorkerError,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
)
from repro.parallel.executor import ChunkedExecutor, parallel_map
from repro.parallel.partition import (
    BlockChunk,
    block_aligned_ranges,
    block_chunks,
    even_ranges,
)

__all__ = [
    "BackendError",
    "BackendWorkerError",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "get_backend",
    "ChunkedExecutor",
    "parallel_map",
    "even_ranges",
    "block_aligned_ranges",
    "BlockChunk",
    "block_chunks",
    "SimComm",
    "run_spmd",
    "local_quantized_moments",
    "compressed_mean_allreduce",
    "compressed_stats_allreduce",
    "traditional_stats_allreduce",
]

_LAZY = {
    "SimComm": "repro.parallel.simmpi",
    "run_spmd": "repro.parallel.simmpi",
    "local_quantized_moments": "repro.parallel.collectives",
    "compressed_mean_allreduce": "repro.parallel.collectives",
    "compressed_stats_allreduce": "repro.parallel.collectives",
    "traditional_stats_allreduce": "repro.parallel.collectives",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
