"""Pluggable execution backends: ``serial``, ``threads``, ``processes``.

One interface (:class:`ExecutionBackend`), three substrates.  Every
chunked hot path — ``SZOps`` encode/decode, the compressed-domain
reductions, the multi-field in-situ harness — selects its substrate via
:func:`get_backend`, so moving a workload from a GIL-bound thread pool to
true multi-core execution is a configuration change::

    from repro.parallel.backends import get_backend

    with get_backend("processes", n_workers=8) as backend:
        codec = SZOps(n_threads=8, backend=backend)
        c = codec.compress(field, 1e-4)

See ``docs/PARALLEL.md`` for the descriptor protocol, selection guidance,
and the shared-memory ownership rules.
"""

from __future__ import annotations

from typing import Any

from repro.parallel.backends.base import (
    BackendError,
    BackendWorkerError,
    ChunkKernel,
    ExecutionBackend,
    KernelRun,
    format_chunk,
)
from repro.parallel.backends.local import SerialBackend, ThreadBackend
from repro.parallel.backends.process import ProcessBackend
from repro.parallel.backends.shm import ArrayDescriptor, ShmArena, attach_arrays

__all__ = [
    "BackendError",
    "BackendWorkerError",
    "ChunkKernel",
    "ExecutionBackend",
    "KernelRun",
    "format_chunk",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ArrayDescriptor",
    "ShmArena",
    "attach_arrays",
    "BACKENDS",
    "available_backends",
    "get_backend",
]

#: Registry of constructible backends, by config/CLI name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> tuple[str, ...]:
    """The backend names accepted by configs and the CLI."""
    return tuple(BACKENDS)


def get_backend(
    spec: str | ExecutionBackend,
    n_workers: int = 1,
    **kwargs: Any,
) -> ExecutionBackend:
    """Resolve a backend spec into an :class:`ExecutionBackend`.

    ``spec`` is either a registered name (``"serial"`` / ``"threads"`` /
    ``"processes"``) — a fresh backend with ``n_workers`` workers is
    constructed, owned by the caller — or an existing backend instance,
    returned as-is (the caller does *not* take ownership).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = BACKENDS[spec]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {spec!r}; valid: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls(n_workers, **kwargs)
