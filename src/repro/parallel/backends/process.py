"""True multi-core execution: a warm process pool over shared memory.

The Python-level group loops inside ``encode_magnitudes`` /
``decode_magnitudes`` hold the GIL, so the thread backend's speedup caps
out well below the paper's 12-way OpenMP CPU SZp.  This backend runs the
same chunk kernels in a **warm, reusable** ``ProcessPoolExecutor``:

* array payloads travel by :class:`~repro.parallel.backends.shm.ShmArena`
  — workers receive only tiny descriptors (segment name, offset, shape,
  dtype) and build zero-copy views, so a chunk round-trip costs no array
  serialization;
* workers keep **lazy per-process state** (attached-segment cache, codec
  instances) so repeated calls against a warm pool pay no setup;
* every ``Future.result`` is **bounded** by ``timeout`` and a dead or
  hung worker surfaces a :class:`BackendWorkerError` naming the chunk
  range — never a deadlock — after which the pool **self-heals**: the
  broken pool is torn down (hung workers killed) and the next call gets
  a fresh one.

The ``fork`` start method is preferred (workers inherit the imported
NumPy stack instead of re-importing it); ``spawn`` is the fallback where
fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro.parallel.backends.base import (
    BackendWorkerError,
    ChunkKernel,
    ExecutionBackend,
    KernelRun,
    format_chunk,
)
from repro.parallel.backends.shm import ArrayDescriptor, ShmArena, attach_arrays
from repro.parallel.partition import even_ranges

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ProcessBackend", "DEFAULT_TIMEOUT"]

#: Per-chunk result deadline (seconds).  Generous — chunks are sub-second
#: in practice — but *bounded*, which is what turns a hung worker into a
#: clean BackendWorkerError instead of a deadlock.
DEFAULT_TIMEOUT = 120.0


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _invoke_kernel(
    kernel: ChunkKernel,
    descriptors: dict[str, ArrayDescriptor],
    chunk: dict[str, Any],
) -> Any:
    """Worker-side trampoline: attach shared arrays, run the kernel."""
    return kernel(attach_arrays(descriptors), chunk)


class ProcessBackend(ExecutionBackend):
    """Warm multi-process pool with shared-memory block transport."""

    name = "processes"

    # Lock discipline (verified by the lockcheck pass): every mutation of
    # these attributes must hold self._lock — run_kernel may be called
    # from several threads (e.g. concurrent in-situ fields).
    _GUARDED_ATTRS = ("_pool",)

    def __init__(
        self,
        n_workers: int = 1,
        timeout: float = DEFAULT_TIMEOUT,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        super().__init__(n_workers)
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._ctx = mp_context if mp_context is not None else _preferred_context()
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=self._ctx
                )
            return self._pool

    def _discard_pool(self, kill: bool) -> None:
        """Drop the current pool so the next call builds a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            # A hung worker never drains its call queue; terminate the
            # processes so shutdown below cannot block.
            for proc in list(getattr(pool, "_processes", {}).values()):
                if proc.is_alive():  # pragma: no branch - racy liveness
                    proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ kernels

    def run_kernel(
        self,
        kernel: ChunkKernel,
        arrays: Mapping[str, np.ndarray],
        chunks: Sequence[Mapping[str, Any]],
        out_specs: Mapping[str, tuple[Sequence[int], Any]] | None = None,
    ) -> KernelRun:
        arena = ShmArena(arrays, out_specs)
        try:
            pool = self._ensure_pool()
            pending = [
                (
                    dict(chunk),
                    pool.submit(_invoke_kernel, kernel, arena.descriptors, dict(chunk)),
                )
                for chunk in chunks
            ]
            results = self._collect(pending)
            outputs = {
                name: arena.fetch(name) for name in (out_specs or {})
            }
            return KernelRun(results=results, outputs=outputs)
        finally:
            arena.destroy()

    # ------------------------------------------------------------------ maps

    def map_ranges(self, fn: Callable[[int, int], R], n_items: int) -> list[R]:
        """Pickles ``fn`` — only module-level callables work here."""
        ranges = even_ranges(n_items, self.n_workers)
        pool = self._ensure_pool()
        pending = [
            ({"lo": lo, "hi": hi}, pool.submit(fn, lo, hi)) for lo, hi in ranges
        ]
        return self._collect(pending)

    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Pickles ``fn`` and every item — keep both small."""
        pool = self._ensure_pool()
        pending = [
            ({"item": i}, pool.submit(fn, item)) for i, item in enumerate(items)
        ]
        return self._collect(pending)

    def _collect(self, pending: list[tuple[dict[str, Any], Any]]) -> list[Any]:
        results: list[Any] = []
        for chunk, future in pending:
            try:
                results.append(future.result(timeout=self.timeout))
            except BrokenProcessPool as exc:
                self._discard_pool(kill=False)
                raise BackendWorkerError(
                    f"process worker died while running {format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
            except FutureTimeoutError as exc:
                self._discard_pool(kill=True)
                raise BackendWorkerError(
                    f"process worker exceeded {self.timeout:g}s on "
                    f"{format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
        return results

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessBackend(n_workers={self.n_workers}, "
            f"timeout={self.timeout:g}, pid={os.getpid()})"
        )
