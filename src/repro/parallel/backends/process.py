"""True multi-core execution: a warm process pool over shared memory.

The Python-level group loops inside ``encode_magnitudes`` /
``decode_magnitudes`` hold the GIL, so the thread backend's speedup caps
out well below the paper's 12-way OpenMP CPU SZp.  This backend runs the
same chunk kernels in a **warm, reusable** ``ProcessPoolExecutor``:

* array payloads travel by :class:`~repro.parallel.backends.shm.ShmArena`
  — workers receive only tiny descriptors (segment name, offset, shape,
  dtype) and build zero-copy views, so a chunk round-trip costs no array
  serialization;
* workers keep **lazy per-process state** (attached-segment cache, codec
  instances, resolved bitpack kernels — including any one-time numba JIT
  compilation) so repeated calls against a warm pool pay no setup;
* chunk dispatch is **autotuned**: the backend probes the pool's
  per-future IPC overhead once, tracks an EWMA of per-chunk runtime per
  kernel, and batches multiple chunks into one round-trip whenever chunks
  are cheap relative to dispatch (``OVERHEAD_AMORTIZATION``);
* every ``Future.result`` is **bounded** by ``timeout`` and a dead or
  hung worker surfaces a :class:`BackendWorkerError` naming the chunk
  range — never a deadlock — after which the pool **self-heals**: the
  broken pool is torn down (hung workers killed) and the next call gets
  a fresh one.

The ``fork`` start method is preferred (workers inherit the imported
NumPy stack instead of re-importing it); ``spawn`` is the fallback where
fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro.parallel.backends.base import (
    BackendWorkerError,
    ChunkKernel,
    ExecutionBackend,
    KernelRun,
    format_chunk,
)
from repro.parallel.backends.shm import ArrayDescriptor, ShmArena, attach_arrays
from repro.parallel.partition import even_ranges

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ProcessBackend", "DEFAULT_TIMEOUT"]

#: Per-chunk result deadline (seconds).  Generous — chunks are sub-second
#: in practice — but *bounded*, which is what turns a hung worker into a
#: clean BackendWorkerError instead of a deadlock.
DEFAULT_TIMEOUT = 120.0

#: Chunk-batch autotuning: batch chunks per future until the estimated
#: batch runtime is at least this multiple of the measured per-dispatch
#: overhead, so IPC round-trips stay a bounded fraction of the work.
OVERHEAD_AMORTIZATION = 8.0

#: EWMA smoothing for the per-kernel per-chunk runtime estimate.
_EWMA_ALPHA = 0.4


def _preferred_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _noop_probe() -> int:
    """Round-trip probe used to measure per-dispatch pool overhead."""
    return 0


def _invoke_kernel(
    kernel: ChunkKernel,
    descriptors: dict[str, ArrayDescriptor],
    chunk: dict[str, Any],
) -> Any:
    """Worker-side trampoline: attach shared arrays, run the kernel."""
    return kernel(attach_arrays(descriptors), chunk)


def _invoke_kernel_batch(
    kernel: ChunkKernel,
    descriptors: dict[str, ArrayDescriptor],
    chunks: list[dict[str, Any]],
) -> list[Any]:
    """Batched trampoline: one attach + IPC round-trip for many chunks.

    Worker-side state (attached segments, resolved bitpack kernels, codec
    caches) persists across batches because pool processes are warm.
    """
    arrays = attach_arrays(descriptors)
    return [kernel(arrays, chunk) for chunk in chunks]


class ProcessBackend(ExecutionBackend):
    """Warm multi-process pool with shared-memory block transport."""

    name = "processes"

    # Lock discipline (verified by the lockcheck pass): every mutation of
    # these attributes must hold self._lock — run_kernel may be called
    # from several threads (e.g. concurrent in-situ fields).
    _GUARDED_ATTRS = ("_pool", "_dispatch_overhead_s", "_chunk_ewma_s")

    def __init__(
        self,
        n_workers: int = 1,
        timeout: float = DEFAULT_TIMEOUT,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        super().__init__(n_workers)
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._ctx = mp_context if mp_context is not None else _preferred_context()
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        #: Measured per-future dispatch overhead (seconds); probed once per
        #: pool lifetime against a warm pool.
        self._dispatch_overhead_s: float | None = None
        #: EWMA of per-chunk runtime, keyed by kernel qualname — the
        #: autotuner's estimate of how much work one chunk carries.
        self._chunk_ewma_s: dict[str, float] = {}

    # ------------------------------------------------------------------ pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=self._ctx
                )
            return self._pool

    def _discard_pool(self, kill: bool) -> None:
        """Drop the current pool so the next call builds a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._dispatch_overhead_s = None  # fresh pool -> re-probe
        if pool is None:
            return
        if kill:
            # A hung worker never drains its call queue; terminate the
            # processes so shutdown below cannot block.
            for proc in list(getattr(pool, "_processes", {}).values()):
                if proc.is_alive():  # pragma: no branch - racy liveness
                    proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ autotuning

    def _measure_overhead(self, pool: ProcessPoolExecutor) -> float:
        """Per-future dispatch overhead against a warm pool (probed once).

        The first probe also forces the pool to actually fork its workers,
        so subsequent timing reflects steady-state IPC cost, not startup.
        """
        with self._lock:
            cached = self._dispatch_overhead_s
        if cached is not None:
            return cached
        # Warm every worker, then time a second wave of no-op round-trips.
        for f in [pool.submit(_noop_probe) for _ in range(self.n_workers)]:
            f.result(timeout=self.timeout)
        t0 = perf_counter()
        probes = [pool.submit(_noop_probe) for _ in range(self.n_workers)]
        for f in probes:
            f.result(timeout=self.timeout)
        overhead = max((perf_counter() - t0) / max(1, self.n_workers), 1e-6)
        with self._lock:
            self._dispatch_overhead_s = overhead
        return overhead

    def _plan_batches(
        self, kernel_name: str, chunks: list[dict[str, Any]], overhead: float
    ) -> list[list[dict[str, Any]]]:
        """Group chunks into per-future batches that amortize dispatch cost.

        With no runtime estimate yet (first call for this kernel) every
        chunk ships alone so the EWMA can observe real per-chunk cost.
        Afterwards, batch size targets ``OVERHEAD_AMORTIZATION x`` the
        measured dispatch overhead per future, capped so all workers stay
        busy.
        """
        n = len(chunks)
        if n <= self.n_workers:
            return [[c] for c in chunks]
        with self._lock:
            avg = self._chunk_ewma_s.get(kernel_name)
        if avg is None:
            return [[c] for c in chunks]
        target_s = overhead * OVERHEAD_AMORTIZATION
        per_batch = max(1, int(target_s / max(avg, 1e-9)))
        per_batch = min(per_batch, -(-n // self.n_workers))
        return [chunks[i : i + per_batch] for i in range(0, n, per_batch)]

    def _note_chunk_time(self, kernel_name: str, n_chunks: int, elapsed: float) -> None:
        if n_chunks <= 0:
            return
        sample = elapsed / n_chunks
        with self._lock:
            prev = self._chunk_ewma_s.get(kernel_name)
            self._chunk_ewma_s[kernel_name] = (
                sample
                if prev is None
                else _EWMA_ALPHA * sample + (1.0 - _EWMA_ALPHA) * prev
            )

    # ------------------------------------------------------------------ kernels

    def run_kernel(
        self,
        kernel: ChunkKernel,
        arrays: Mapping[str, np.ndarray],
        chunks: Sequence[Mapping[str, Any]],
        out_specs: Mapping[str, tuple[Sequence[int], Any]] | None = None,
    ) -> KernelRun:
        arena = ShmArena(arrays, out_specs)
        try:
            pool = self._ensure_pool()
            overhead = self._measure_overhead(pool)
            kernel_name = getattr(kernel, "__qualname__", repr(kernel))
            batches = self._plan_batches(
                kernel_name, [dict(chunk) for chunk in chunks], overhead
            )
            t0 = perf_counter()
            pending = [
                (
                    batch,
                    pool.submit(
                        _invoke_kernel_batch, kernel, arena.descriptors, batch
                    ),
                )
                for batch in batches
            ]
            results = [
                result
                for batch_results in self._collect_batches(pending)
                for result in batch_results
            ]
            self._note_chunk_time(kernel_name, len(results), perf_counter() - t0)
            outputs = {
                name: arena.fetch(name) for name in (out_specs or {})
            }
            return KernelRun(results=results, outputs=outputs)
        finally:
            arena.destroy()

    def _collect_batches(
        self, pending: list[tuple[list[dict[str, Any]], Any]]
    ) -> list[list[Any]]:
        """Like :meth:`_collect`, but deadlines scale with batch size."""
        results: list[list[Any]] = []
        for batch, future in pending:
            chunk = batch[0] if batch else {}
            deadline = self.timeout * max(1, len(batch))
            try:
                results.append(future.result(timeout=deadline))
            except BrokenProcessPool as exc:
                self._discard_pool(kill=False)
                raise BackendWorkerError(
                    f"process worker died while running a batch of "
                    f"{len(batch)} chunk(s) starting at {format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
            except FutureTimeoutError as exc:
                self._discard_pool(kill=True)
                raise BackendWorkerError(
                    f"process worker exceeded {deadline:g}s on a batch of "
                    f"{len(batch)} chunk(s) starting at {format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
        return results

    # ------------------------------------------------------------------ maps

    def map_ranges(self, fn: Callable[[int, int], R], n_items: int) -> list[R]:
        """Pickles ``fn`` — only module-level callables work here."""
        ranges = even_ranges(n_items, self.n_workers)
        pool = self._ensure_pool()
        pending = [
            ({"lo": lo, "hi": hi}, pool.submit(fn, lo, hi)) for lo, hi in ranges
        ]
        return self._collect(pending)

    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Pickles ``fn`` and every item — keep both small."""
        pool = self._ensure_pool()
        pending = [
            ({"item": i}, pool.submit(fn, item)) for i, item in enumerate(items)
        ]
        return self._collect(pending)

    def _collect(self, pending: list[tuple[dict[str, Any], Any]]) -> list[Any]:
        results: list[Any] = []
        for chunk, future in pending:
            try:
                results.append(future.result(timeout=self.timeout))
            except BrokenProcessPool as exc:
                self._discard_pool(kill=False)
                raise BackendWorkerError(
                    f"process worker died while running {format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
            except FutureTimeoutError as exc:
                self._discard_pool(kill=True)
                raise BackendWorkerError(
                    f"process worker exceeded {self.timeout:g}s on "
                    f"{format_chunk(chunk)}",
                    chunk=chunk,
                ) from exc
        return results

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessBackend(n_workers={self.n_workers}, "
            f"timeout={self.timeout:g}, pid={os.getpid()})"
        )
