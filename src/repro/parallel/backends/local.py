"""In-process backends: ``serial`` (inline) and ``threads`` (pool).

Both run kernels against the caller's own arrays — no transport at all —
which makes them the reference implementations the process backend must
match bit for bit.  The thread backend follows the same ``_GUARDED_ATTRS``
lock discipline as :class:`~repro.parallel.executor.ChunkedExecutor`
(verified by the lockcheck pass): the lazily created pool handle is only
ever mutated under ``self._lock``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro.parallel.backends.base import (
    ChunkKernel,
    ExecutionBackend,
    KernelRun,
)
from repro.parallel.partition import even_ranges

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["SerialBackend", "ThreadBackend", "alloc_outputs"]


def alloc_outputs(
    out_specs: Mapping[str, tuple[Sequence[int], Any]] | None,
) -> dict[str, np.ndarray]:
    """Zero-initialized plain-memory output arrays for local backends."""
    if not out_specs:
        return {}
    return {
        name: np.zeros(tuple(int(s) for s in shape), dtype=np.dtype(dtype))
        for name, (shape, dtype) in out_specs.items()
    }


class SerialBackend(ExecutionBackend):
    """Inline execution; ``n_workers`` only controls the chunk partition.

    Running the *same* chunking as the parallel backends (rather than one
    monolithic chunk) is deliberate: float reductions are sensitive to
    partial-sum boundaries, so identical chunking is what makes serial,
    thread, and process results comparable bit for bit.
    """

    name = "serial"

    def run_kernel(
        self,
        kernel: ChunkKernel,
        arrays: Mapping[str, np.ndarray],
        chunks: Sequence[Mapping[str, Any]],
        out_specs: Mapping[str, tuple[Sequence[int], Any]] | None = None,
    ) -> KernelRun:
        outputs = alloc_outputs(out_specs)
        merged = {**dict(arrays), **outputs}
        results = [kernel(merged, dict(chunk)) for chunk in chunks]
        return KernelRun(results=results, outputs=outputs)

    def map_ranges(self, fn: Callable[[int, int], R], n_items: int) -> list[R]:
        return [fn(lo, hi) for lo, hi in even_ranges(n_items, self.n_workers)]

    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Shared-address-space pool; fastest when kernels release the GIL."""

    name = "threads"

    # Lock discipline (verified by the lockcheck pass): every mutation of
    # these attributes must hold self._lock.
    _GUARDED_ATTRS = ("_pool",)

    def __init__(self, n_workers: int = 1) -> None:
        super().__init__(n_workers)
        self._lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            return self._pool

    def run_kernel(
        self,
        kernel: ChunkKernel,
        arrays: Mapping[str, np.ndarray],
        chunks: Sequence[Mapping[str, Any]],
        out_specs: Mapping[str, tuple[Sequence[int], Any]] | None = None,
    ) -> KernelRun:
        outputs = alloc_outputs(out_specs)
        merged = {**dict(arrays), **outputs}
        if len(chunks) <= 1:
            results = [kernel(merged, dict(chunk)) for chunk in chunks]
            return KernelRun(results=results, outputs=outputs)
        pool = self._ensure_pool()
        futures = [pool.submit(kernel, merged, dict(chunk)) for chunk in chunks]
        return KernelRun(results=[f.result() for f in futures], outputs=outputs)

    def map_ranges(self, fn: Callable[[int, int], R], n_items: int) -> list[R]:
        ranges = even_ranges(n_items, self.n_workers)
        if len(ranges) == 1:
            lo, hi = ranges[0]
            return [fn(lo, hi)]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, lo, hi) for lo, hi in ranges]
        return [f.result() for f in futures]

    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self.n_workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # Shut down outside the lock: draining workers may re-enter.
            pool.shutdown(wait=True)
