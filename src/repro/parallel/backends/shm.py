"""Shared-memory zero-copy transport for the process backend.

A :class:`ShmArena` packs every array a chunked kernel needs — inputs and
preallocated outputs — into **one** ``multiprocessing.shared_memory``
segment.  What crosses the process boundary is only an
:class:`ArrayDescriptor` per array (segment name, byte offset, shape,
dtype): a few dozen bytes of pickle, never the array payload.  Workers map
the segment once (cached per process), build zero-copy NumPy views at the
descriptor offsets, and write chunk outputs straight into the shared
buffer; the parent reads results out of its own mapping of the same
segment.

Ownership rules (enforced here, documented in ``docs/PARALLEL.md``):

* the **parent** creates the segment and is the only process that ever
  ``unlink``\\ s it — always in a ``finally``, so a failed kernel cannot
  leak a ``/dev/shm`` entry;
* **workers** only attach; pool workers share the parent's
  ``resource_tracker`` process (its fd is inherited through fork and
  passed through spawn), so the attach-time registration dedupes against
  the parent's and the parent's single ``unlink`` is the one cleanup —
  workers must *not* unregister, or they would erase the parent's claim;
* worker-side mappings are cached by segment name (segment names are
  never reused) with a small LRU so long-lived pool workers do not
  accumulate file descriptors.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ArrayDescriptor", "ShmArena", "attach_array", "attach_arrays"]

#: Byte alignment of each array inside the arena segment (cache-line).
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return -(-nbytes // _ALIGN) * _ALIGN


@dataclass(frozen=True)
class ArrayDescriptor:
    """Picklable handle to one array inside a shared-memory segment."""

    segment: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmArena:
    """Parent-side owner of one shared segment holding named arrays.

    Parameters
    ----------
    arrays : input arrays, copied into the segment at construction.
    out_specs : ``name -> (shape, dtype)`` outputs to preallocate
        (zero-initialized by the OS); workers write into them in place.
    """

    def __init__(
        self,
        arrays: Mapping[str, np.ndarray],
        out_specs: Mapping[str, tuple[Sequence[int], np.dtype | str]] | None = None,
    ) -> None:
        layout: dict[str, tuple[int, tuple[int, ...], np.dtype]] = {}
        offset = 0
        staged: dict[str, np.ndarray] = {}
        for name, arr in arrays.items():
            contig = np.ascontiguousarray(arr)
            staged[name] = contig
            layout[name] = (offset, tuple(contig.shape), contig.dtype)
            offset += _aligned(max(contig.nbytes, 1))
        for name, (shape, dtype) in (out_specs or {}).items():
            if name in layout:
                raise ValueError(f"output name {name!r} collides with an input")
            dt = np.dtype(dtype)
            shape_t = tuple(int(s) for s in shape)
            nbytes = int(np.prod(shape_t, dtype=np.int64)) * dt.itemsize
            layout[name] = (offset, shape_t, dt)
            offset += _aligned(max(nbytes, 1))

        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            create=True, size=max(offset, 1)
        )
        # From here on the segment exists in /dev/shm under our name; any
        # failure while populating it (a bad descriptor, a copy raising)
        # must unlink it or it outlives the process.
        try:
            self.descriptors: dict[str, ArrayDescriptor] = {
                name: ArrayDescriptor(self._shm.name, off, shape, np.dtype(dt).str)
                for name, (off, shape, dt) in layout.items()
            }
            for name, contig in staged.items():
                if contig.nbytes:
                    self.view(name)[...] = contig
        except BaseException:
            self.destroy()
            raise

    # ------------------------------------------------------------------ access

    def view(self, name: str) -> np.ndarray:
        """Zero-copy parent-side view of a named array."""
        if self._shm is None:
            raise ValueError("arena already destroyed")
        d = self.descriptors[name]
        return np.ndarray(
            d.shape, dtype=np.dtype(d.dtype), buffer=self._shm.buf, offset=d.offset
        )

    def fetch(self, name: str) -> np.ndarray:
        """Private copy of a named array (safe to use after ``destroy``)."""
        return self.view(name).copy()

    # ------------------------------------------------------------------ teardown

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; parent-only)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:  # szops: ignore[SZL006] -- view cleanup, not a codec path
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # szops: ignore[SZL006] -- double-destroy is legal
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.destroy()


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-process cache of attached segments, keyed by segment name.  Names
#: are unique per arena, so stale entries are only ever evicted, not hit.
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
_MAX_ATTACHED = 4


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    # Attaching registers the name with the resource tracker the worker
    # shares with the parent — a set-dedup no-op against the parent's own
    # registration, whose unlink is the single cleanup.  Unregistering
    # here would erase that claim and make the parent's unlink crash the
    # tracker with a KeyError.
    shm = shared_memory.SharedMemory(name=name)
    _ATTACHED[name] = shm
    while len(_ATTACHED) > _MAX_ATTACHED:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except BufferError:  # szops: ignore[SZL006] -- LRU eviction with a live view
            pass
    return shm


def attach_array(desc: ArrayDescriptor) -> np.ndarray:
    """Worker-side zero-copy view of a described array."""
    shm = _attach_segment(desc.segment)
    return np.ndarray(
        desc.shape, dtype=np.dtype(desc.dtype), buffer=shm.buf, offset=desc.offset
    )


def attach_arrays(descriptors: Mapping[str, ArrayDescriptor]) -> dict[str, np.ndarray]:
    """Worker-side views of every described array."""
    return {name: attach_array(d) for name, d in descriptors.items()}
