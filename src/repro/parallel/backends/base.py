"""The pluggable execution-backend interface.

SZOps workloads are embarrassingly block-parallel (SZx and the cuSZ line
exploit exactly this), but *how* the chunks execute is a deployment
decision: inline for small arrays, a thread pool when NumPy kernels
release the GIL, a warm process pool when Python-level group loops
dominate.  Every chunked hot path — compression, partial decode, the
compressed-domain reductions, the multi-field in-situ harness — goes
through this one interface, so swapping the substrate is a config knob,
never a code change.

The universal primitive is :meth:`ExecutionBackend.run_kernel`: a *named,
module-level* kernel applied to chunk descriptors over a set of shared
arrays.  Kernels mutate preallocated output arrays in place and return
only small picklable summaries, which is what lets the process backend
move array payloads through shared memory instead of pickle (see
:mod:`repro.parallel.backends.shm`).

``map_ranges``/``map_items`` mirror the old
:class:`~repro.parallel.executor.ChunkedExecutor` surface for closure
-friendly substrates (serial, threads); the process backend supports them
only for picklable callables.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, NamedTuple, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "BackendError",
    "BackendWorkerError",
    "ChunkKernel",
    "KernelRun",
    "ExecutionBackend",
    "format_chunk",
]

#: ``kernel(arrays, chunk) -> small picklable result``.  ``arrays`` maps
#: names to NumPy arrays (inputs plus in-place outputs); ``chunk`` is a
#: small dict of ints/floats/strings describing the slice of work.
ChunkKernel = Callable[[dict[str, np.ndarray], dict[str, Any]], Any]


class BackendError(RuntimeError):
    """A backend could not execute the submitted work."""


class BackendWorkerError(BackendError):
    """A worker died, hung, or broke the pool while running a chunk.

    Carries the chunk descriptor whose result was being awaited, so the
    failure names the block range instead of surfacing as a bare
    ``BrokenProcessPool`` (or worse, a deadlock).
    """

    def __init__(self, message: str, chunk: Mapping[str, Any] | None = None) -> None:
        super().__init__(message)
        self.chunk = dict(chunk) if chunk is not None else None


def format_chunk(chunk: Mapping[str, Any] | None) -> str:
    """Human-readable chunk range for error messages."""
    if not chunk:
        return "<unknown chunk>"
    if "lo" in chunk and "hi" in chunk:
        return f"chunk [{chunk['lo']}, {chunk['hi']})"
    return f"chunk {dict(chunk)!r}"


class KernelRun(NamedTuple):
    """The outcome of :meth:`ExecutionBackend.run_kernel`."""

    #: Per-chunk kernel return values, in chunk order.
    results: list[Any]
    #: Materialized output arrays (private copies, safe to keep).
    outputs: dict[str, np.ndarray]


class ExecutionBackend(ABC):
    """One execution substrate for chunked blockwise kernels.

    Concrete backends: ``serial`` (inline), ``threads`` (shared-address
    -space pool), ``processes`` (warm worker pool + shared-memory
    transport).  All of them guarantee: chunk results come back in
    submission order, output arrays hold every chunk's writes, and a
    failed worker surfaces :class:`BackendWorkerError` rather than a
    hang.  ``n_workers`` doubles as the default partition width so that
    two backends configured alike produce *identical* chunkings — the
    property the cross-backend bit-identity suite pins down.
    """

    #: Registry name ("serial" / "threads" / "processes").
    name: str = "abstract"

    def __init__(self, n_workers: int = 1) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers

    # ------------------------------------------------------------------ kernels

    @abstractmethod
    def run_kernel(
        self,
        kernel: ChunkKernel,
        arrays: Mapping[str, np.ndarray],
        chunks: Sequence[Mapping[str, Any]],
        out_specs: Mapping[str, tuple[Sequence[int], Any]] | None = None,
    ) -> KernelRun:
        """Apply ``kernel`` to every chunk over the shared ``arrays``.

        ``out_specs`` (``name -> (shape, dtype)``) declares arrays the
        backend must allocate for the kernels to fill; they come back in
        :attr:`KernelRun.outputs` as ordinary NumPy arrays owned by the
        caller.  The kernel must be a module-level callable for the
        process backend (it crosses the pickle boundary by name).
        """

    # ------------------------------------------------------------------ maps

    @abstractmethod
    def map_ranges(self, fn: Callable[[int, int], R], n_items: int) -> list[R]:
        """Apply ``fn(lo, hi)`` over an even ``n_workers``-way partition."""

    @abstractmethod
    def map_items(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to each item, preserving order."""

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release pooled workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"
