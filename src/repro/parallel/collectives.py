"""Compressed collective reductions over the simulated communicator.

The paper's motivating MPI use case (Section I, ref [18]): processes hold
error-bounded *compressed* data and need global statistics.  The
traditional path fully decompresses every stream before reducing.  With
SZOps, each rank extracts its *quantized partial sums* directly from the
compressed stream (constant blocks in closed form) and only the tiny
(sum, sum-of-squared-deviation proxies, count) triples travel through the
collective — no rank ever materializes a full decompressed array.

Both paths are provided so the MPI example and its benchmark can compare
them; both produce identical statistics up to float64 summation order
because the compressed-domain reductions are exact over the represented
values (Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.core.compressor import SZOps
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import stored_quantized
from repro.parallel.simmpi import SimComm

__all__ = [
    "local_quantized_moments",
    "add_moments",
    "compressed_mean_allreduce",
    "compressed_stats_allreduce",
    "traditional_stats_allreduce",
]


def local_quantized_moments(c: SZOpsCompressed) -> tuple[float, float, int]:
    """(sum, sum of squares, count) of the represented values.

    Computed in the quantized integer domain with constant blocks in closed
    form; the value-domain moments are recovered by scaling with ``2*eps``.
    """
    blocks = stored_quantized(c)
    s = 0.0
    s2 = 0.0
    if blocks.q.size:
        qf = blocks.q.astype(np.float64)
        s += float(qf.sum())
        s2 += float(np.dot(qf, qf))
    if blocks.const_outliers.size:
        of = blocks.const_outliers.astype(np.float64)
        s += float((of * blocks.const_lens).sum())
        s2 += float((of * of * blocks.const_lens).sum())
    scale = 2.0 * c.eps
    return scale * s, scale * scale * s2, c.n_elements


def _add_moments(a: tuple[float, float, int], b: tuple[float, float, int]):
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


#: Public name for the moment-combining step, used by ``repro.cluster``'s
#: router to tree-combine per-shard PREDUCE partials with exactly the
#: algebra the in-process collectives use.
add_moments = _add_moments


def compressed_mean_allreduce(comm: SimComm, c: SZOpsCompressed) -> float:
    """Global mean across ranks, no rank decompressing anything fully."""
    s, _s2, n = comm.allreduce(local_quantized_moments(c), _add_moments)
    return s / n


def compressed_stats_allreduce(comm: SimComm, c: SZOpsCompressed) -> dict[str, float]:
    """Global mean/variance/std across ranks from compressed streams.

    Each rank contributes exact value-domain moments (the ranks may carry
    different error bounds; the moments are already in value units).
    """
    s, s2, n = comm.allreduce(local_quantized_moments(c), _add_moments)
    mean = s / n
    var = max(s2 / n - mean * mean, 0.0)
    return {"mean": mean, "variance": var, "std": float(np.sqrt(var)), "count": n}


def traditional_stats_allreduce(
    comm: SimComm, codec: SZOps, c: SZOpsCompressed
) -> dict[str, float]:
    """The baseline path: every rank fully decompresses before reducing."""
    data = codec.decompress(c).astype(np.float64)
    local = (float(data.sum()), float(np.dot(data.ravel(), data.ravel())), data.size)
    s, s2, n = comm.allreduce(local, _add_moments)
    mean = s / n
    var = max(s2 / n - mean * mean, 0.0)
    return {"mean": mean, "variance": var, "std": float(np.sqrt(var)), "count": n}
