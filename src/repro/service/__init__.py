"""repro.service — a compressed-array store and op server.

The serving layer over the SZOps stack: arrays live on the server as
*compressed* streams (:mod:`repro.service.store`), clients ask for
pointwise chains and reductions over a small binary protocol
(:mod:`repro.service.protocol`), and the asyncio server
(:mod:`repro.service.server`) answers them without ever materializing
the decompressed array — reductions fold through the PR-1 fusion
runtime in the quantized domain.

Concurrency is where serving earns its keep: the micro-batcher
(:mod:`repro.service.batching`) coalesces concurrent requests against
the same hot array into single fused executions (bit-identical to the
eager path), admission control sheds overload as ``BUSY``, per-request
deadlines produce ``TIMEOUT``, and live counters/latency histograms
(:mod:`repro.service.telemetry`) are served on the ``STATS`` endpoint.

Entry points::

    repro serve --port 7201            # run a server
    repro bench-serve                  # batched-vs-unbatched benchmark

    from repro.service import ServiceClient
    with ServiceClient("127.0.0.1", 7201) as c:
        c.put("U", stream_bytes)
        c.reduce("U", "mean", chain=["negation", "scalar_multiply=1.5"])

See docs/SERVICE.md for the wire format and operational semantics.
"""

from repro.service.batching import MicroBatcher
from repro.service.bench import run_service_bench
from repro.service.client import (
    AsyncServiceClient,
    ConnectionLost,
    RemoteError,
    RequestTimedOut,
    ServerBusy,
    ServiceClient,
    ServiceError,
    StaleEpoch,
)
from repro.service.protocol import FrameError, Moments, Status, Step
from repro.service.server import ServiceConfig, ServiceServer, ThreadedServer
from repro.service.store import CompressedArrayStore, StoreError, StoreMiss
from repro.service.telemetry import Telemetry

__all__ = [
    "AsyncServiceClient",
    "CompressedArrayStore",
    "ConnectionLost",
    "FrameError",
    "MicroBatcher",
    "Moments",
    "RemoteError",
    "RequestTimedOut",
    "ServerBusy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "StaleEpoch",
    "Status",
    "Step",
    "StoreError",
    "StoreMiss",
    "Telemetry",
    "ThreadedServer",
    "run_service_bench",
]
