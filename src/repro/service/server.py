"""The asyncio compressed-array op server.

One :class:`ServiceServer` owns a :class:`CompressedArrayStore`, a
kernel thread pool, an optional PR-3 execution backend for chunked
reductions, a :class:`MicroBatcher`, and a :class:`Telemetry` instance,
and serves the six-endpoint protocol of :mod:`repro.service.protocol`
over TCP.  The event loop never runs a kernel: PUT verification/parsing,
chain materialization, and reductions are all offloaded through
``loop.run_in_executor`` onto the kernel pool, whose jobs route their
chunked partial sums through the configured
:class:`~repro.parallel.backends.ExecutionBackend`.

Operational semantics (the parts a client must know):

* **Backpressure** — at most ``max_pending`` requests may be admitted
  (queued + executing) at once; request ``max_pending + 1`` gets an
  immediate ``BUSY`` reply instead of unbounded queueing.  The client
  retries; the server's memory does not grow with offered load.
* **Deadlines** — every request runs under ``min(server default, client
  deadline)``; expiry produces a ``TIMEOUT`` reply.  The underlying
  kernel (if already running on the pool) is not interrupted — Python
  threads cannot be killed — but its slot is released only when it
  finishes, so a flood of doomed requests still sheds as ``BUSY``.
* **Error containment** — malformed frames, corrupt containers, unknown
  arrays, and invalid chains produce an ``ERROR`` reply; only a broken
  frame *boundary* (unreadable length prefix, oversized declaration)
  closes the connection, because byte sync is unrecoverable.  Nothing a
  client sends kills the accept loop.
* **Graceful shutdown** — :meth:`ServiceServer.shutdown` stops accepting,
  flushes the batcher, waits for in-flight requests to reply (bounded by
  ``drain_timeout_s``), then tears down the pool and backend.  The CLI
  wires SIGTERM/SIGINT to it, so an orchestrator's stop signal drains
  instead of dropping requests mid-batch.

REDUCE requests never materialize the decompressed array: they fold the
pointwise prefix into quantized block partials via
:class:`~repro.runtime.lazy.LazyStream` (one decode, zero encodes — the
test suite pins this with a decode spy).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import suppress
from dataclasses import dataclass

from repro.core.errors import SZOpsError
from repro.core.format import SZOpsCompressed
from repro.core.ops.dispatch import CHAIN_REDUCTIONS, OPERATIONS, normalize_chain
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.runtime.lazy import LazyStream
from repro.service import protocol
from repro.service.batching import BatchKey, MicroBatcher
from repro.service.protocol import (
    BodyKind,
    FrameError,
    GetRequest,
    HealthRequest,
    Opcode,
    OpRequest,
    PutRequest,
    ReduceRequest,
    Reply,
    Request,
    StatsRequest,
    Status,
    Step,
)
from repro.service.store import CompressedArrayStore, StoreError, StoreMiss
from repro.service.telemetry import Telemetry

__all__ = ["ServiceConfig", "ServiceServer", "ThreadedServer"]

#: Exceptions converted into ERROR replies (everything else is reported
#: as an internal error, also via ERROR — the loop survives regardless).
_CLIENT_ERRORS = (SZOpsError, StoreError, StoreMiss, FrameError, ValueError, KeyError)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one server instance (see docs/SERVICE.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; ServiceServer.port reports the bound one
    #: Execution backend for chunked reduction partials ("serial" keeps
    #: them inline on the kernel pool thread).
    backend: str = "serial"
    n_workers: int = 1
    #: Kernel pool width (defaults to n_workers, min 2).
    pool_threads: int = 0
    byte_budget: int = 256 << 20
    #: Admission cap: queued + executing requests beyond this shed as BUSY.
    max_pending: int = 64
    #: Server-side default deadline per request.
    request_timeout_s: float = 30.0
    #: Micro-batching window; 0 disables coalescing delay but keeps dedup.
    batch_window_s: float = 0.002
    batching: bool = True
    max_frame: int = protocol.DEFAULT_MAX_FRAME
    #: Gate every PUT through the static stream verifier.
    verify_streams: bool = True
    #: How long shutdown waits for in-flight requests to finish.
    drain_timeout_s: float = 10.0
    #: Cap on one reply write's ``drain()``: a peer that stops reading
    #: (zero receive window) otherwise parks the sending coroutine —
    #: and the connection's request slot — forever.
    send_timeout_s: float = 30.0
    #: Ops/test knob: artificial kernel delay per OP/REDUCE, for load and
    #: drain drills (exposed as ``repro serve --debug-delay-s``).
    debug_delay_s: float = 0.0


def _materialize_chain(
    container: SZOpsCompressed, steps: tuple[Step, ...]
) -> SZOpsCompressed:
    """Fused pointwise chain -> new container (one decode, one encode)."""
    chain = LazyStream(container)
    for name, scalar in (s.as_pair() for s in steps):
        chain = chain.apply(name, scalar)
    return chain.materialize()


def _reduce_chain(
    container: SZOpsCompressed,
    steps: tuple[Step, ...],
    reduction: str,
    executor: ExecutionBackend | None,
) -> float:
    """Fused pointwise prefix + reduction, entirely in the quantized domain."""
    chain = LazyStream(container)
    for name, scalar in (s.as_pair() for s in steps):
        chain = chain.apply(name, scalar)
    if reduction in ("minimum", "maximum"):
        return float(getattr(chain, reduction)())
    fn = getattr(chain, reduction)
    return float(fn(executor=executor) if executor is not None else fn())


def _validate_pointwise(steps: tuple[Step, ...]) -> None:
    """Reject OP chains that are not purely fusable pointwise operations."""
    if not steps:
        raise FrameError("OP requires at least one chain step")
    for step in steps:
        if step.name in CHAIN_REDUCTIONS:
            raise FrameError(
                f"step {step.name!r} is a reduction; use the REDUCE endpoint"
            )
    # Arity/name validation with the same diagnostics as the CLI chain path.
    normalize_chain([s.as_pair() for s in steps])
    for step in steps:
        if OPERATIONS[step.name].result != "compression":
            raise FrameError(f"step {step.name!r} does not produce a stream")


class ServiceServer:
    """The long-running compressed-array op server (asyncio, one loop)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.store = CompressedArrayStore(
            byte_budget=cfg.byte_budget, verify=cfg.verify_streams
        )
        self.telemetry = Telemetry()
        pool_threads = cfg.pool_threads or max(2, cfg.n_workers)
        self.pool = ThreadPoolExecutor(
            max_workers=pool_threads, thread_name_prefix="repro-service"
        )
        #: Chunked-reduction backend; None keeps reductions single-chunk.
        self.backend: ExecutionBackend | None = (
            get_backend(cfg.backend, cfg.n_workers) if cfg.n_workers > 1 else None
        )
        self.batcher = MicroBatcher(
            self.pool,
            window_s=cfg.batch_window_s,
            telemetry=self.telemetry,
        )
        self._server: asyncio.AbstractServer | None = None
        self._inflight = 0
        self._active: set["asyncio.Task[None]"] = set()
        self._closing = False
        self.port: int = cfg.port

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections."""
        cfg = self.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = int(sockets[0].getsockname()[1])

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            return

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, release resources."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self.batcher.flush(), self.config.drain_timeout_s)
        except asyncio.TimeoutError:
            self.telemetry.increment("drain_timeouts")
        if self._active:
            _done, pending = await asyncio.wait(
                set(self._active), timeout=self.config.drain_timeout_s
            )
            for task in pending:
                task.cancel()
        # Pool/backend teardown joins worker threads: blocking calls that
        # must not run on the event loop (a sibling server on the same
        # loop would stall mid-request).  to_thread, not run_in_executor
        # on self.pool — the pool cannot run the job that joins itself.
        await asyncio.to_thread(self.pool.shutdown, True)
        if self.backend is not None:
            await asyncio.to_thread(self.backend.close)

    # ------------------------------------------------------------------ connection loop

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_frame = self.config.max_frame
        try:
            while not self._closing:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # clean or mid-header disconnect: just drop it
                try:
                    length = protocol.split_frame(header, max_frame)
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    # Frame truncated mid-payload: byte sync is gone, so
                    # reply (best effort) and close.
                    await self._send(
                        writer,
                        Reply(
                            status=Status.ERROR,
                            kind=BodyKind.MESSAGE,
                            message="truncated frame: connection out of sync",
                        ),
                    )
                    break
                except FrameError as exc:
                    # The declared length itself is hostile; same story.
                    await self._send(
                        writer,
                        Reply(
                            status=Status.ERROR,
                            kind=BodyKind.MESSAGE,
                            message=str(exc),
                        ),
                    )
                    break
                task = asyncio.ensure_future(self._serve_request(writer, payload))
                self._active.add(task)
                task.add_done_callback(self._active.discard)
                # One request at a time per connection: replies stay in
                # request order and a slow client cannot interleave frames.
                await task
        finally:
            with suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, reply: Reply) -> None:
        try:
            writer.write(
                protocol.pack_frame(
                    protocol.encode_reply(reply), self.config.max_frame
                )
            )
            # drain() has no intrinsic bound: a peer advertising a zero
            # receive window parks this coroutine (and the connection's
            # serve slot) forever, escaping the request deadline.
            await asyncio.wait_for(writer.drain(), self.config.send_timeout_s)
        except asyncio.TimeoutError:
            self.telemetry.increment("send_timeouts")
            writer.close()  # byte sync is gone; the reader loop unwinds
        except (ConnectionError, OSError):
            self.telemetry.increment("send_failures")  # peer went away

    # ------------------------------------------------------------------ request handling

    async def _serve_request(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        t0 = time.perf_counter()
        endpoint = "malformed"
        try:
            request, deadline_ms, epoch = protocol.decode_request(payload)
        except FrameError as exc:
            self.telemetry.record_request("malformed", "ERROR", 0.0)
            await self._send(
                writer,
                Reply(status=Status.ERROR, kind=BodyKind.MESSAGE, message=str(exc)),
            )
            return
        endpoint = Opcode(request.opcode).name
        if self._inflight >= self.config.max_pending:
            self.telemetry.record_request(endpoint, "BUSY", 0.0)
            await self._send(
                writer,
                Reply(
                    status=Status.BUSY,
                    kind=BodyKind.MESSAGE,
                    message=(
                        f"admission queue full ({self.config.max_pending} "
                        "in flight); retry with backoff"
                    ),
                ),
            )
            return
        self._inflight += 1
        self.telemetry.set_gauge("inflight", float(self._inflight))
        timeout = self.config.request_timeout_s
        if deadline_ms:
            timeout = min(timeout, deadline_ms / 1e3)
        try:
            reply = await asyncio.wait_for(self._dispatch(request, epoch), timeout)
        except asyncio.TimeoutError:
            reply = Reply(
                status=Status.TIMEOUT,
                kind=BodyKind.MESSAGE,
                message=f"request exceeded its deadline of {timeout:.3f}s",
            )
        except _CLIENT_ERRORS as exc:
            reply = Reply(
                status=Status.ERROR, kind=BodyKind.MESSAGE, message=str(exc)
            )
        except Exception as exc:  # containment: the loop must survive bugs
            self.telemetry.increment("internal_errors")
            reply = Reply(
                status=Status.ERROR,
                kind=BodyKind.MESSAGE,
                message=f"internal error: {type(exc).__name__}: {exc}",
            )
        finally:
            self._inflight -= 1
            self.telemetry.set_gauge("inflight", float(self._inflight))
        self.telemetry.record_request(
            endpoint, reply.status.name, time.perf_counter() - t0
        )
        await self._send(writer, reply)

    async def _dispatch(self, request: Request, epoch: int = 0) -> Reply:
        if isinstance(request, PutRequest):
            return await self._handle_put(request)
        if isinstance(request, GetRequest):
            return self._handle_get(request)
        if isinstance(request, OpRequest):
            return await self._handle_op(request)
        if isinstance(request, ReduceRequest):
            return await self._handle_reduce(request)
        if isinstance(request, StatsRequest):
            return self._handle_stats()
        if isinstance(request, HealthRequest):
            return self._handle_health()
        return await self._dispatch_extra(request, epoch)

    async def _dispatch_extra(self, request: Request, epoch: int) -> Reply:
        """Hook for subclasses serving post-v1 opcodes (cluster nodes)."""
        return Reply(
            status=Status.ERROR,
            kind=BodyKind.MESSAGE,
            message=(
                f"opcode {Opcode(request.opcode).name} is only served by "
                "cluster nodes (repro.cluster)"
            ),
        )

    # -- endpoints ----------------------------------------------------------

    async def _handle_put(self, request: PutRequest) -> Reply:
        loop = asyncio.get_running_loop()
        # Verify + parse + insert on the pool: assert_stream_ok walks the
        # whole payload and must not stall the event loop.
        version = await loop.run_in_executor(
            self.pool, self.store.put, request.name, request.blob
        )
        return Reply(status=Status.OK, kind=BodyKind.STORED, version=version)

    def _handle_get(self, request: GetRequest) -> Reply:
        entry = self.store.get(request.name, request.version)
        return Reply(
            status=Status.OK,
            kind=BodyKind.BLOB,
            version=entry.version,
            blob=entry.blob,
        )

    def _batch_key(
        self, fingerprint: str, steps: tuple[Step, ...], tail: str
    ) -> BatchKey:
        parts: list[str] = [fingerprint]
        for step in steps:
            parts.append(step.name)
            parts.append(repr(step.scalar))
        parts.append(tail)
        return tuple(parts)

    async def _handle_op(self, request: OpRequest) -> Reply:
        _validate_pointwise(request.steps)
        entry = self.store.get(request.name, request.version)
        delay = self.config.debug_delay_s

        def compute() -> bytes:
            if delay:
                time.sleep(delay)
            return _materialize_chain(entry.container, request.steps).to_bytes()

        if self.config.batching:
            key = self._batch_key(entry.fingerprint, request.steps, "op")
            blob = await self.batcher.submit(key, entry.fingerprint, compute)
        else:
            loop = asyncio.get_running_loop()
            blob = await loop.run_in_executor(self.pool, compute)
        if request.result_name:
            loop = asyncio.get_running_loop()
            version = await loop.run_in_executor(
                self.pool, self.store.put, request.result_name, blob
            )
            return Reply(status=Status.OK, kind=BodyKind.STORED, version=version)
        return Reply(
            status=Status.OK, kind=BodyKind.BLOB, version=entry.version, blob=blob
        )

    async def _handle_reduce(self, request: ReduceRequest) -> Reply:
        if request.reduction not in CHAIN_REDUCTIONS:
            raise FrameError(
                f"unknown reduction {request.reduction!r}; valid: "
                f"{', '.join(CHAIN_REDUCTIONS)}"
            )
        if request.steps:
            _validate_pointwise(request.steps)
        entry = self.store.get(request.name, request.version)
        backend = self.backend
        delay = self.config.debug_delay_s

        def compute() -> float:
            if delay:
                time.sleep(delay)
            return _reduce_chain(
                entry.container, request.steps, request.reduction, backend
            )

        if self.config.batching:
            key = self._batch_key(
                entry.fingerprint, request.steps, f"reduce:{request.reduction}"
            )
            value = await self.batcher.submit(key, entry.fingerprint, compute)
        else:
            loop = asyncio.get_running_loop()
            value = await loop.run_in_executor(self.pool, compute)
        return Reply(status=Status.OK, kind=BodyKind.VALUE, value=float(value))

    def _identity(self) -> dict[str, object]:
        """The ops-facing identity block shared by STATS and HEALTH."""
        cfg = self.config
        store = self.store.snapshot()
        return {
            "status": "draining" if self._closing else "ok",
            "uptime_seconds": self.telemetry.uptime_seconds,
            "backend": self.backend.name if self.backend else "serial",
            "n_workers": cfg.n_workers,
            "batching": cfg.batching,
            "batch_window_ms": 1e3 * cfg.batch_window_s,
            "max_pending": cfg.max_pending,
            "inflight": self._inflight,
            "arrays": store["arrays"],
            "bytes_used": store["bytes_used"],
            "byte_budget": store["byte_budget"],
        }

    def _handle_stats(self) -> Reply:
        from repro.runtime.cache import cache_stats

        cache = cache_stats()
        extra: dict[str, object] = {
            "server": self._identity(),
            "store": self.store.snapshot(),
            "decoded_block_cache": (
                {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                    "hit_rate": cache.hit_rate,
                }
                if cache is not None
                else None
            ),
        }
        doc = self.telemetry.snapshot(extra=extra)
        return Reply(
            status=Status.OK, kind=BodyKind.JSON, json_text=json.dumps(doc)
        )

    def _handle_health(self) -> Reply:
        return Reply(
            status=Status.OK,
            kind=BodyKind.JSON,
            json_text=json.dumps(self._identity()),
        )


class ThreadedServer:
    """A :class:`ServiceServer` hosted on a dedicated event-loop thread.

    The sync harness around the asyncio server: tests, ``bench-serve``'s
    self-hosted mode, and interactive use all need "start a server, get
    its port, stop it later" without owning an event loop themselves.

    >>> handle = ThreadedServer(ServiceConfig())
    >>> handle.start()
    >>> handle.port  # doctest: +SKIP
    49321
    >>> handle.stop()
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        server: ServiceServer | None = None,
    ) -> None:
        # A pre-built server (e.g. a cluster node) may be hosted directly;
        # otherwise one is constructed from the config.
        self.server = server if server is not None else ServiceServer(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def start(self, timeout_s: float = 10.0) -> "ThreadedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("service event loop failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.shutdown())
            loop.close()

    def stop(self, timeout_s: float = 15.0) -> None:
        """Request graceful shutdown and join the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout_s)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
