"""Service telemetry: request counters, latency histograms, gauges.

Everything the ``STATS`` endpoint serves lives here.  The design follows
the usual production-metrics shape (think Prometheus client, shrunk to
the stdlib): monotonically increasing counters, log-spaced latency
histograms with quantile estimation, and point-in-time gauges — all
behind one lock so the snapshot the endpoint serves is internally
consistent.

The histogram buckets are geometric (factor 2) from 0.05 ms to ~104 s,
which brackets everything from an in-memory STATS hit to a worst-case
cold reduction on a large array.  Quantiles are estimated by linear
interpolation inside the winning bucket — the standard histogram-quantile
estimate, accurate to a factor of 2 by construction and far cheaper than
retaining raw samples on a server meant to run indefinitely.

Thread-safety: the server's event loop, the executor pool threads, and
the micro-batcher all record into one :class:`Telemetry`; every mutation
holds ``self._lock`` (the lockcheck pass verifies this lexically via
``_GUARDED_ATTRS``).
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

__all__ = ["LatencyHistogram", "Telemetry"]

#: Histogram bucket upper bounds in seconds: 0.05 ms * 2^k, 21 buckets
#: (the last finite bound is ~52 s; beyond that counts in +inf).
_BUCKET_BOUNDS: tuple[float, ...] = tuple(5e-5 * (2.0**k) for k in range(21))


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation.

    Not locked — the owning :class:`Telemetry` serializes access.
    """

    __slots__ = ("counts", "overflow", "total", "sum_seconds", "max_seconds")

    def __init__(self) -> None:
        self.counts = [0] * len(_BUCKET_BOUNDS)
        self.overflow = 0
        self.total = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def quantile(self, frac: float) -> float:
        """Estimated ``frac``-quantile in seconds (0 when empty)."""
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {frac}")
        if self.total == 0:
            return 0.0
        rank = frac * self.total
        seen = 0.0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lo = _BUCKET_BOUNDS[i - 1] if i else 0.0
                hi = _BUCKET_BOUNDS[i]
                frac = (rank - seen) / count
                return lo + frac * (hi - lo)
            seen += count
        return self.max_seconds

    def snapshot(self) -> dict[str, float]:
        mean = self.sum_seconds / self.total if self.total else 0.0
        return {
            "count": float(self.total),
            "mean_ms": 1e3 * mean,
            "p50_ms": 1e3 * self.quantile(0.50),
            "p90_ms": 1e3 * self.quantile(0.90),
            "p99_ms": 1e3 * self.quantile(0.99),
            "max_ms": 1e3 * self.max_seconds,
        }


class Telemetry:
    """Aggregated operational metrics for one server instance."""

    # Lock discipline (verified lexically by `repro.cli lint`'s lockcheck
    # pass): every mutation of these attributes must hold self._lock.
    _GUARDED_ATTRS = ("_requests", "_histograms", "_counters", "_gauges", "_keyed")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        #: endpoint -> status name -> count.
        self._requests: dict[str, dict[str, int]] = {}
        #: endpoint -> latency histogram (OK requests only).
        self._histograms: dict[str, LatencyHistogram] = {}
        #: free-form monotonic counters (batches, dedup hits, ...).
        self._counters: dict[str, int] = {}
        #: point-in-time values (queue depth at last sample, ...).
        self._gauges: dict[str, float] = {}
        #: group -> key -> count: counters with a dynamic label dimension
        #: (per-shard request counts, per-node failover tallies, ...).
        self._keyed: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------ record

    def record_request(self, endpoint: str, status: str, seconds: float) -> None:
        """Count one finished request and (if OK) observe its latency."""
        with self._lock:
            per_status = self._requests.setdefault(endpoint, {})
            per_status[status] = per_status.get(status, 0) + 1
            if status == "OK":
                hist = self._histograms.get(endpoint)
                if hist is None:
                    hist = LatencyHistogram()
                    self._histograms[endpoint] = hist
                hist.observe(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def increment_keyed(self, group: str, key: str, amount: int = 1) -> None:
        """Count one event under a dynamic label (e.g. per-shard traffic)."""
        with self._lock:
            per_key = self._keyed.setdefault(group, {})
            per_key[key] = per_key.get(key, 0) + amount

    # ------------------------------------------------------------------ read

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def keyed_counter(self, group: str, key: str) -> int:
        with self._lock:
            return self._keyed.get(group, {}).get(key, 0)

    def snapshot(self, extra: Mapping[str, object] | None = None) -> dict[str, object]:
        """One consistent JSON-able view of every metric.

        ``extra`` merges caller-provided sections (store/cache/queue
        state) into the document under their own keys.
        """
        with self._lock:
            endpoints: dict[str, object] = {}
            for endpoint, per_status in sorted(self._requests.items()):
                entry: dict[str, object] = {"by_status": dict(sorted(per_status.items()))}
                hist = self._histograms.get(endpoint)
                if hist is not None:
                    entry["latency"] = hist.snapshot()
                endpoints[endpoint] = entry
            doc: dict[str, object] = {
                "uptime_seconds": self.uptime_seconds,
                "endpoints": endpoints,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "keyed_counters": {
                    group: dict(sorted(per_key.items()))
                    for group, per_key in sorted(self._keyed.items())
                },
            }
        if extra:
            doc.update(extra)
        return doc
