"""The ``repro.service`` wire protocol: length-prefixed binary frames.

The server speaks a minimal binary protocol over TCP, designed for the
same audience as the container format itself (:mod:`repro.core.format`):
little-endian, explicit lengths everywhere, no implicit framing.  Every
message — request or response — is one *frame*::

    u32  payload length (little-endian, excludes these 4 bytes)
    ...  payload

A payload begins with a one-byte protocol version so that a server can
reject a future client with a clean ``ERROR`` instead of a parse
failure.  Two versions are live:

* **version 1** — the original six opcodes (PUT/GET/OP/REDUCE/STATS/
  HEALTH), no epoch field.
* **version 2** — adds the cluster opcodes (SHARDMAP/PREDUCE/PING), a
  ``u32 epoch`` header field for shard-map fencing, the ``MOMENTS``
  reply body, and the ``RETRY`` status.

Requests follow with an opcode, a deadline, and an opcode-specific
body; responses follow with a status and a typed body::

    request  (v1) = u8 version | u8 opcode | u32 deadline_ms | body
    request  (v2) = u8 version | u8 opcode | u32 deadline_ms | u32 epoch | body
    response      = u8 version | u8 status | u8 body_kind    | body

**Version negotiation** is downgrade-friendly in both directions: a v2
server decodes v1 frames exactly as a v1 server would (epoch 0), and
:func:`encode_request` emits the *lowest* version able to express a
request — a v1 opcode with no epoch still goes out as a v1 frame, so a
new client can talk to an old server.  Replies likewise carry the
lowest version able to express them: only ``MOMENTS`` bodies and
``RETRY`` statuses are stamped v2, so an old client never receives a
version byte it cannot parse for an endpoint it knows.

``deadline_ms`` is the client's per-request deadline (0 = use the
server's default); a request that cannot finish inside it gets a
``TIMEOUT`` response.  ``epoch`` is the sender's shard-map epoch (0 =
unfenced); a cluster node at a different epoch answers ``RETRY`` with
its current map instead of silently misrouting.  All multi-byte
integers are little-endian; strings are ``u16 length + UTF-8 bytes``;
blobs are ``u32 length + bytes``.  Frames larger than the negotiated
maximum (:data:`DEFAULT_MAX_FRAME`) are rejected before the payload is
read — a hostile length prefix never allocates.

Decoding is strict: every decoder consumes its exact byte budget and
raises :class:`FrameError` on truncation, trailing bytes, unknown
opcodes/statuses, or out-of-range counts.  The server converts
``FrameError`` into an ``ERROR`` reply; it never kills the accept loop.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import Union

__all__ = [
    "PROTOCOL_VERSION",
    "LEGACY_PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "DEFAULT_MAX_FRAME",
    "MAX_STEPS",
    "Opcode",
    "Status",
    "BodyKind",
    "FrameError",
    "Step",
    "Moments",
    "PutRequest",
    "GetRequest",
    "OpRequest",
    "ReduceRequest",
    "StatsRequest",
    "HealthRequest",
    "ShardMapRequest",
    "PReduceRequest",
    "PingRequest",
    "Request",
    "Reply",
    "encode_request",
    "decode_request",
    "encode_reply",
    "decode_reply",
    "pack_frame",
    "split_frame",
]

#: Newest version this codebase speaks (and the version byte used for
#: frames that need v2 features).
PROTOCOL_VERSION = 2

#: The original pre-cluster version, still fully supported.
LEGACY_PROTOCOL_VERSION = 1

#: Versions :func:`decode_request` / :func:`decode_reply` accept.
SUPPORTED_VERSIONS = (LEGACY_PROTOCOL_VERSION, PROTOCOL_VERSION)

#: Default cap on a single frame's payload (64 MiB).  Both sides enforce
#: it: the reader rejects a larger declared length before allocating.
DEFAULT_MAX_FRAME = 64 << 20

#: Cap on the number of chain steps a single OP/REDUCE request may carry.
MAX_STEPS = 256

_LATEST_VERSION = -1  # sentinel: "the newest stored version"


class Opcode(IntEnum):
    """Request opcodes (the service's endpoint table)."""

    PUT = 1
    GET = 2
    OP = 3
    REDUCE = 4
    STATS = 5
    HEALTH = 6
    #: v2: install / fetch the cluster shard map (JSON document).
    SHARDMAP = 7
    #: v2: partial reduce — return quantized moments, not a scalar.
    PREDUCE = 8
    #: v2: lightweight health probe with epoch + load in the payload.
    PING = 9


#: Opcodes expressible in a version-1 frame.  Anything newer forces the
#: v2 request header (and an old server will reject it cleanly).
V1_OPCODES = frozenset(
    {Opcode.PUT, Opcode.GET, Opcode.OP, Opcode.REDUCE, Opcode.STATS, Opcode.HEALTH}
)


class Status(IntEnum):
    """Response statuses."""

    OK = 0
    #: The request was understood but failed (bad stream, unknown array,
    #: invalid chain, internal error).  Body: message string.
    ERROR = 1
    #: Load shed: the admission queue is full.  Body: message string.
    BUSY = 2
    #: The per-request deadline expired.  Body: message string.
    TIMEOUT = 3
    #: v2: the caller's shard-map epoch is stale (or the node's is).
    #: Body: message string + the node's current map as a JSON blob, so
    #: the caller can re-route without a separate round trip.
    RETRY = 4


class BodyKind(IntEnum):
    """Typed OK-response bodies (self-describing, so clients need no
    per-opcode decode table)."""

    #: ``u32 version | u32 blob length | blob`` — a serialized stream.
    BLOB = 0
    #: ``u32 version`` — the version assigned to a stored result.
    STORED = 1
    #: ``f64`` — a reduction value.
    VALUE = 2
    #: ``u32 length | UTF-8 JSON`` — STATS / HEALTH documents.
    JSON = 3
    #: status != OK: ``u16 length | UTF-8 message``.
    MESSAGE = 4
    #: v2: quantized partial-reduce moments (see :class:`Moments`).
    MOMENTS = 5


class FrameError(ValueError):
    """A frame or payload violates the wire protocol."""


# ---------------------------------------------------------------------------
# primitive (de)serializers
# ---------------------------------------------------------------------------


class _Reader:
    """Bounds-checked sequential reader over one payload."""

    def __init__(self, buf: bytes) -> None:
        self._buf = buf
        self._pos = 0

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self._pos + n > len(self._buf):
            raise FrameError(
                f"truncated payload: {what} needs {n} byte(s) at offset "
                f"{self._pos}, {len(self._buf) - self._pos} remain"
            )
        out = self._buf[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self, what: str) -> int:
        return self.take(1, what)[0]

    def u16(self, what: str) -> int:
        return int(struct.unpack("<H", self.take(2, what))[0])

    def u32(self, what: str) -> int:
        return int(struct.unpack("<I", self.take(4, what))[0])

    def i32(self, what: str) -> int:
        return int(struct.unpack("<i", self.take(4, what))[0])

    def f64(self, what: str) -> float:
        return float(struct.unpack("<d", self.take(8, what))[0])

    def string(self, what: str) -> str:
        n = self.u16(f"{what} length")
        raw = self.take(n, what)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"{what} is not valid UTF-8: {exc}") from None

    def blob(self, what: str) -> bytes:
        n = self.u32(f"{what} length")
        return self.take(n, what)

    def expect_end(self) -> None:
        if self._pos != len(self._buf):
            raise FrameError(
                f"{len(self._buf) - self._pos} trailing byte(s) after payload"
            )


def _put_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise FrameError(f"string field too long ({len(raw)} bytes)")
    out += struct.pack("<H", len(raw))
    out += raw


def _put_blob(out: bytearray, blob: bytes) -> None:
    out += struct.pack("<I", len(blob))
    out += blob


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One pointwise chain step: an operation name plus optional scalar."""

    name: str
    scalar: float | None = None

    def as_pair(self) -> tuple[str, float | None]:
        return (self.name, self.scalar)


_MOMENTS_STRUCT = struct.Struct("<ddqqQd")


@dataclass(frozen=True)
class Moments:
    """Quantized partial-reduce moments for one shard of an array.

    All fields live in the *quantized integer* domain (exact float64
    integers below 2**53), never the value domain: summing exact
    integers is associative, which is what makes the router's
    tree-combine bit-identical to a single-node reduction regardless of
    shard placement.  ``eps`` rides along so the router can apply the
    single final ``2 * eps`` scaling exactly as ``runtime.lazy`` does.

    Wire layout: ``f64 sum_q | f64 sumsq_q | i64 min_q | i64 max_q |
    u64 count | f64 eps`` (48 bytes).
    """

    sum_q: float
    sumsq_q: float
    min_q: int
    max_q: int
    count: int
    eps: float

    def to_bytes(self) -> bytes:
        return _MOMENTS_STRUCT.pack(
            self.sum_q, self.sumsq_q, self.min_q, self.max_q, self.count, self.eps
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Moments":
        if len(raw) != _MOMENTS_STRUCT.size:
            raise FrameError(
                f"moments body must be {_MOMENTS_STRUCT.size} bytes, got {len(raw)}"
            )
        s, s2, lo, hi, n, eps = _MOMENTS_STRUCT.unpack(raw)
        return cls(float(s), float(s2), int(lo), int(hi), int(n), float(eps))


@dataclass(frozen=True)
class PutRequest:
    """Store a serialized stream under ``name`` (a new version)."""

    name: str
    blob: bytes
    opcode = Opcode.PUT


@dataclass(frozen=True)
class GetRequest:
    """Fetch the serialized stream ``name`` (version -1 = latest)."""

    name: str
    version: int = _LATEST_VERSION
    opcode = Opcode.GET


@dataclass(frozen=True)
class OpRequest:
    """Apply a pointwise chain to ``name``; return or store the result.

    With ``result_name`` empty the new stream comes back in the reply
    (``BLOB``); otherwise it is stored under ``result_name`` and only the
    assigned version comes back (``STORED``).
    """

    name: str
    steps: tuple[Step, ...]
    version: int = _LATEST_VERSION
    result_name: str = ""
    opcode = Opcode.OP


@dataclass(frozen=True)
class ReduceRequest:
    """Reduce ``name`` after an optional pointwise prefix chain."""

    name: str
    reduction: str
    steps: tuple[Step, ...] = ()
    version: int = _LATEST_VERSION
    opcode = Opcode.REDUCE


@dataclass(frozen=True)
class StatsRequest:
    """Fetch the telemetry snapshot (JSON)."""

    opcode = Opcode.STATS


@dataclass(frozen=True)
class HealthRequest:
    """Fetch the liveness/identity document (JSON)."""

    opcode = Opcode.HEALTH


@dataclass(frozen=True)
class ShardMapRequest:
    """Exchange shard maps: install ``map_json`` (empty = just fetch).

    The node answers with its (possibly just-updated) current map as a
    JSON body, so install-and-confirm is one round trip.
    """

    map_json: str = ""
    opcode = Opcode.SHARDMAP


@dataclass(frozen=True)
class PReduceRequest:
    """Partial-reduce ``name`` after an optional pointwise prefix chain.

    Unlike :class:`ReduceRequest` there is no reduction selector: the
    node always returns the full quantized moment tuple
    (:class:`Moments`) and the router derives whichever scalar it was
    asked for.  One opcode therefore serves sum/mean/min/max/var/std.
    """

    name: str
    steps: tuple[Step, ...] = ()
    version: int = _LATEST_VERSION
    opcode = Opcode.PREDUCE


@dataclass(frozen=True)
class PingRequest:
    """Cheap liveness probe; the JSON reply carries epoch + load."""

    opcode = Opcode.PING


Request = Union[
    PutRequest,
    GetRequest,
    OpRequest,
    ReduceRequest,
    StatsRequest,
    HealthRequest,
    ShardMapRequest,
    PReduceRequest,
    PingRequest,
]


def _encode_steps(out: bytearray, steps: tuple[Step, ...]) -> None:
    if len(steps) > MAX_STEPS:
        raise FrameError(f"chain of {len(steps)} steps exceeds the cap of {MAX_STEPS}")
    out += struct.pack("<H", len(steps))
    for step in steps:
        _put_str(out, step.name)
        if step.scalar is None:
            out += b"\x00"
        else:
            out += b"\x01"
            out += struct.pack("<d", float(step.scalar))


def _decode_steps(r: _Reader) -> tuple[Step, ...]:
    count = r.u16("step count")
    if count > MAX_STEPS:
        raise FrameError(f"chain of {count} steps exceeds the cap of {MAX_STEPS}")
    steps = []
    for i in range(count):
        name = r.string(f"step {i} name")
        has_scalar = r.u8(f"step {i} scalar flag")
        if has_scalar not in (0, 1):
            raise FrameError(f"step {i} scalar flag must be 0/1, got {has_scalar}")
        scalar = r.f64(f"step {i} scalar") if has_scalar else None
        steps.append(Step(name, scalar))
    return tuple(steps)


def encode_request(req: Request, deadline_ms: int = 0, epoch: int = 0) -> bytes:
    """Serialize one request into a frame payload (no length prefix).

    The version byte is chosen per-request: a legacy opcode with epoch 0
    is emitted as a version-1 frame (parseable by pre-cluster servers);
    anything needing the epoch field or a cluster opcode goes out as
    version 2.
    """
    if not 0 <= deadline_ms <= 0xFFFFFFFF:
        raise FrameError(f"deadline_ms out of range: {deadline_ms}")
    if not 0 <= epoch <= 0xFFFFFFFF:
        raise FrameError(f"epoch out of range: {epoch}")
    wire_version = (
        LEGACY_PROTOCOL_VERSION
        if req.opcode in V1_OPCODES and epoch == 0
        else PROTOCOL_VERSION
    )
    out = bytearray()
    out += struct.pack("<BBI", wire_version, int(req.opcode), deadline_ms)
    if wire_version >= PROTOCOL_VERSION:
        out += struct.pack("<I", epoch)
    if isinstance(req, PutRequest):
        _put_str(out, req.name)
        _put_blob(out, req.blob)
    elif isinstance(req, GetRequest):
        _put_str(out, req.name)
        out += struct.pack("<i", req.version)
    elif isinstance(req, OpRequest):
        _put_str(out, req.name)
        out += struct.pack("<i", req.version)
        _encode_steps(out, req.steps)
        _put_str(out, req.result_name)
    elif isinstance(req, ReduceRequest):
        _put_str(out, req.name)
        out += struct.pack("<i", req.version)
        _encode_steps(out, req.steps)
        _put_str(out, req.reduction)
    elif isinstance(req, ShardMapRequest):
        _put_blob(out, req.map_json.encode("utf-8"))
    elif isinstance(req, PReduceRequest):
        _put_str(out, req.name)
        out += struct.pack("<i", req.version)
        _encode_steps(out, req.steps)
    elif isinstance(req, (StatsRequest, HealthRequest, PingRequest)):
        pass
    else:  # pragma: no cover - exhaustive over the Request union
        raise FrameError(f"unknown request type {type(req).__name__}")
    return bytes(out)


def decode_request(payload: bytes) -> tuple[Request, int, int]:
    """Parse a request payload into ``(request, deadline_ms, epoch)``.

    Version-1 frames decode with epoch 0; a v1 frame carrying a cluster
    opcode is rejected (those opcodes only exist in v2).
    """
    r = _Reader(payload)
    version = r.u8("protocol version")
    if version not in SUPPORTED_VERSIONS:
        raise FrameError(f"unsupported protocol version {version}")
    raw_op = r.u8("opcode")
    try:
        opcode = Opcode(raw_op)
    except ValueError:
        raise FrameError(f"unknown opcode {raw_op}") from None
    if version < PROTOCOL_VERSION and opcode not in V1_OPCODES:
        raise FrameError(
            f"opcode {opcode.name} requires protocol version {PROTOCOL_VERSION}"
        )
    deadline_ms = r.u32("deadline")
    epoch = r.u32("epoch") if version >= PROTOCOL_VERSION else 0
    req: Request
    if opcode is Opcode.PUT:
        name = r.string("array name")
        blob = r.blob("stream")
        req = PutRequest(name, bytes(blob))
    elif opcode is Opcode.GET:
        req = GetRequest(r.string("array name"), r.i32("version"))
    elif opcode is Opcode.OP:
        name = r.string("array name")
        version_no = r.i32("version")
        steps = _decode_steps(r)
        result_name = r.string("result name")
        req = OpRequest(name, steps, version_no, result_name)
    elif opcode is Opcode.REDUCE:
        name = r.string("array name")
        version_no = r.i32("version")
        steps = _decode_steps(r)
        reduction = r.string("reduction name")
        req = ReduceRequest(name, reduction, steps, version_no)
    elif opcode is Opcode.STATS:
        req = StatsRequest()
    elif opcode is Opcode.HEALTH:
        req = HealthRequest()
    elif opcode is Opcode.SHARDMAP:
        raw = r.blob("shard map")
        try:
            map_json = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"shard map is not valid UTF-8: {exc}") from None
        req = ShardMapRequest(map_json)
    elif opcode is Opcode.PREDUCE:
        name = r.string("array name")
        version_no = r.i32("version")
        steps = _decode_steps(r)
        req = PReduceRequest(name, steps, version_no)
    else:
        req = PingRequest()
    r.expect_end()
    return req, deadline_ms, epoch


# ---------------------------------------------------------------------------
# replies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reply:
    """One decoded response.

    ``status`` is always set.  For ``OK`` exactly one of ``blob`` /
    ``version`` / ``value`` / ``json_text`` / ``moments`` is meaningful,
    per ``kind``; for any other status ``message`` carries the server's
    diagnostic.  A ``RETRY`` additionally carries the node's current
    shard map in ``json_text``.
    """

    status: Status
    kind: BodyKind
    message: str = ""
    version: int = 0
    blob: bytes = b""
    value: float = 0.0
    json_text: str = ""
    moments: Moments | None = None

    @property
    def ok(self) -> bool:
        return self.status is Status.OK


def encode_reply(reply: Reply) -> bytes:
    """Serialize one reply into a frame payload (no length prefix).

    Like requests, replies are stamped with the lowest version able to
    express them: only ``MOMENTS`` bodies and ``RETRY`` statuses need
    the version-2 byte, so v1 clients keep parsing every reply to an
    endpoint they can reach.
    """
    needs_v2 = reply.status is Status.RETRY or (
        reply.status is Status.OK and reply.kind is BodyKind.MOMENTS
    )
    wire_version = PROTOCOL_VERSION if needs_v2 else LEGACY_PROTOCOL_VERSION
    out = bytearray()
    out += struct.pack("<BBB", wire_version, int(reply.status), int(reply.kind))
    if reply.status is Status.RETRY:
        _put_str(out, reply.message)
        _put_blob(out, reply.json_text.encode("utf-8"))
        return bytes(out)
    if reply.status is not Status.OK:
        _put_str(out, reply.message)
        return bytes(out)
    if reply.kind is BodyKind.MOMENTS:
        if reply.moments is None:
            raise FrameError("MOMENTS reply is missing its moments payload")
        out += reply.moments.to_bytes()
        return bytes(out)
    if reply.kind is BodyKind.BLOB:
        out += struct.pack("<I", reply.version)
        _put_blob(out, reply.blob)
    elif reply.kind is BodyKind.STORED:
        out += struct.pack("<I", reply.version)
    elif reply.kind is BodyKind.VALUE:
        out += struct.pack("<d", reply.value)
    elif reply.kind is BodyKind.JSON:
        raw = reply.json_text.encode("utf-8")
        _put_blob(out, raw)
    else:
        raise FrameError(f"OK reply cannot carry body kind {reply.kind!r}")
    return bytes(out)


def decode_reply(payload: bytes) -> Reply:
    """Parse a reply payload (accepts every supported version)."""
    r = _Reader(payload)
    version = r.u8("protocol version")
    if version not in SUPPORTED_VERSIONS:
        raise FrameError(f"unsupported protocol version {version}")
    raw_status = r.u8("status")
    try:
        status = Status(raw_status)
    except ValueError:
        raise FrameError(f"unknown status {raw_status}") from None
    raw_kind = r.u8("body kind")
    try:
        kind = BodyKind(raw_kind)
    except ValueError:
        raise FrameError(f"unknown body kind {raw_kind}") from None
    if version < PROTOCOL_VERSION and (
        status is Status.RETRY or kind is BodyKind.MOMENTS
    ):
        raise FrameError(
            f"reply feature requires protocol version {PROTOCOL_VERSION}"
        )
    if status is Status.RETRY:
        message = r.string("message")
        raw = r.blob("shard map")
        try:
            map_json = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"shard map is not valid UTF-8: {exc}") from None
        r.expect_end()
        return Reply(
            status=status, kind=BodyKind.MESSAGE, message=message, json_text=map_json
        )
    if status is not Status.OK:
        message = r.string("message")
        r.expect_end()
        return Reply(status=status, kind=BodyKind.MESSAGE, message=message)
    if kind is BodyKind.MOMENTS:
        raw = r.take(_MOMENTS_STRUCT.size, "moments")
        reply = Reply(status=status, kind=kind, moments=Moments.from_bytes(bytes(raw)))
        r.expect_end()
        return reply
    if kind is BodyKind.BLOB:
        version_no = r.u32("version")
        blob = r.blob("stream")
        reply = Reply(status=status, kind=kind, version=version_no, blob=bytes(blob))
    elif kind is BodyKind.STORED:
        reply = Reply(status=status, kind=kind, version=r.u32("version"))
    elif kind is BodyKind.VALUE:
        reply = Reply(status=status, kind=kind, value=r.f64("value"))
    elif kind is BodyKind.JSON:
        raw = r.blob("json document")
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"json document is not valid UTF-8: {exc}") from None
        reply = Reply(status=status, kind=kind, json_text=text)
    else:
        raise FrameError(f"OK reply cannot carry body kind {kind!r}")
    r.expect_end()
    return reply


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def pack_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Prefix a payload with its little-endian u32 length."""
    if len(payload) > max_frame:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the frame cap {max_frame}"
        )
    return struct.pack("<I", len(payload)) + payload


def split_frame(header: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> int:
    """Validate a 4-byte length prefix; return the payload length."""
    if len(header) != 4:
        raise FrameError(f"frame header must be 4 bytes, got {len(header)}")
    (length,) = struct.unpack("<I", header)
    if length > max_frame:
        raise FrameError(
            f"declared payload of {length} bytes exceeds the frame cap {max_frame}"
        )
    return int(length)
