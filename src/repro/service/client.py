"""Sync and asyncio clients for the compressed-array service.

Two clients over one protocol implementation:

* :class:`ServiceClient` — blocking sockets, one connection.  The
  protocol is strictly request/response, so the client serializes
  roundtrips with an internal lock: concurrent threads may share one
  client (the cluster router shares one per node) and their requests
  simply queue on the connection.  For parallelism across requests,
  use one client per thread — the test suite's load generators do.
* :class:`AsyncServiceClient` — asyncio streams, for callers already
  living on an event loop.

Both raise the same typed errors: :class:`ServerBusy` on load shed,
:class:`RequestTimedOut` on deadline expiry, :class:`RemoteError` for
any ``ERROR`` reply, :class:`StaleEpoch` on a cluster ``RETRY``, and
:class:`protocol.FrameError` on wire damage.  A ``BUSY`` reply is the
server telling the *client* to retry with backoff — the client classes
deliberately do not retry BUSY internally, so callers stay in control
of their offered load.

Connection failures are handled differently per opcode.  A socket that
dies mid-frame on an *idempotent* request (GET / REDUCE / PREDUCE /
STATS / HEALTH / PING / SHARDMAP) is retried exactly once on a fresh
connection after a short backoff — re-running any of these is
observably equivalent to running it once.  Non-idempotent requests
(PUT, OP-with-store) surface a typed :class:`ConnectionLost` instead:
the caller cannot know whether the server applied the write, so the
decision to re-send belongs to a layer that can reason about
duplicates (the cluster router can; this class cannot).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any

import time

from repro.core.format import SZOpsCompressed
from repro.service import protocol
from repro.service.protocol import (
    BodyKind,
    FrameError,
    GetRequest,
    HealthRequest,
    Moments,
    Opcode,
    OpRequest,
    PingRequest,
    PReduceRequest,
    PutRequest,
    ReduceRequest,
    Reply,
    Request,
    ShardMapRequest,
    StatsRequest,
    Status,
    Step,
)

__all__ = [
    "ServiceError",
    "RemoteError",
    "ServerBusy",
    "RequestTimedOut",
    "ConnectionLost",
    "StaleEpoch",
    "IDEMPOTENT_OPCODES",
    "ServiceClient",
    "AsyncServiceClient",
    "steps_from_chain",
]

import asyncio


class ServiceError(RuntimeError):
    """Base class for client-visible service failures."""


class RemoteError(ServiceError):
    """The server replied ``ERROR`` (bad stream, unknown array, ...)."""


class ServerBusy(ServiceError):
    """The server shed this request (``BUSY``); retry with backoff."""


class RequestTimedOut(ServiceError):
    """The per-request deadline expired on the server (``TIMEOUT``)."""


class ConnectionLost(ServiceError):
    """The connection died on a non-idempotent request.

    The write may or may not have been applied server-side; the caller
    must decide whether re-sending is safe (the cluster router re-sends
    PUTs because versioned duplicate PUTs are harmless there).
    """


class StaleEpoch(ServiceError):
    """The node rejected our shard-map epoch (``RETRY``).

    ``map_json`` carries the node's current map so the caller can
    re-route without an extra round trip (empty when the node believes
    the *caller* has the newer map and wants it pushed via SHARDMAP).
    """

    def __init__(self, message: str, map_json: str = "") -> None:
        super().__init__(message)
        self.map_json = map_json


#: Opcodes safe to re-send after a connection death: re-running them is
#: observably equivalent to running them once.
IDEMPOTENT_OPCODES = frozenset(
    {
        Opcode.GET,
        Opcode.REDUCE,
        Opcode.STATS,
        Opcode.HEALTH,
        Opcode.PREDUCE,
        Opcode.PING,
        Opcode.SHARDMAP,
    }
)


def steps_from_chain(chain: Any) -> tuple[Step, ...]:
    """Normalize CLI-style chain specs into protocol :class:`Step` tuples.

    Accepts ``"name"``, ``"name=scalar"`` strings, ``(name, scalar)``
    pairs, and :class:`Step` instances.
    """
    steps: list[Step] = []
    for item in chain:
        if isinstance(item, Step):
            steps.append(item)
        elif isinstance(item, str):
            name, sep, text = item.partition("=")
            steps.append(Step(name, float(text) if sep else None))
        else:
            name, scalar = item
            steps.append(Step(name, None if scalar is None else float(scalar)))
    return tuple(steps)


def _raise_for_status(reply: Reply) -> Reply:
    if reply.status is Status.OK:
        return reply
    if reply.status is Status.BUSY:
        raise ServerBusy(reply.message)
    if reply.status is Status.TIMEOUT:
        raise RequestTimedOut(reply.message)
    if reply.status is Status.RETRY:
        raise StaleEpoch(reply.message, reply.json_text)
    raise RemoteError(reply.message)


def _as_blob(array: SZOpsCompressed | bytes) -> bytes:
    if isinstance(array, SZOpsCompressed):
        return array.to_bytes()
    return bytes(array)


class ServiceClient:
    """Blocking client over one TCP connection.

    >>> with ServiceClient("127.0.0.1", 7201) as client:  # doctest: +SKIP
    ...     client.put("U", compressed)
    ...     mu = client.reduce("U", "mean")
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
        reconnect_backoff_s: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_frame = max_frame
        self.reconnect_backoff_s = reconnect_backoff_s
        # One request/response in flight per connection: interleaved
        # sends from two threads would pair replies with the wrong
        # caller, so the whole roundtrip (including the reconnect
        # retry) holds this lock.
        self._io_lock = threading.Lock()
        self._sock = socket.create_connection((host, port), timeout=timeout_s)

    # ------------------------------------------------------------------ transport

    def _reconnect(self) -> None:
        try:
            self._sock.close()
        except OSError:  # szops: ignore[SZL006] -- discarding a dead socket, not a codec path
            pass
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionError("server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _exchange(self, frame: bytes) -> Reply:
        self._sock.sendall(frame)
        header = self._recv_exactly(4)
        length = protocol.split_frame(header, self.max_frame)
        return protocol.decode_reply(self._recv_exactly(length))

    def _roundtrip(
        self, request: Request, deadline_ms: int = 0, epoch: int = 0
    ) -> Reply:
        frame = protocol.pack_frame(
            protocol.encode_request(request, deadline_ms, epoch), self.max_frame
        )
        with self._io_lock:
            return self._locked_roundtrip(request, frame)

    def _locked_roundtrip(self, request: Request, frame: bytes) -> Reply:
        try:
            return _raise_for_status(self._exchange(frame))
        except TimeoutError:
            raise  # a slow server is not a dead connection; never re-send
        except (ConnectionError, OSError) as exc:
            if request.opcode not in IDEMPOTENT_OPCODES:
                raise ConnectionLost(
                    f"connection lost during {Opcode(request.opcode).name}; "
                    "the request may or may not have been applied"
                ) from exc
        # One transparent retry on a fresh connection, idempotent only.
        time.sleep(self.reconnect_backoff_s)
        try:
            self._reconnect()
            return _raise_for_status(self._exchange(frame))
        except TimeoutError:
            raise
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(
                f"connection lost during {Opcode(request.opcode).name} "
                "(reconnect retry also failed)"
            ) from exc

    # ------------------------------------------------------------------ endpoints

    def put(
        self, name: str, array: SZOpsCompressed | bytes, epoch: int = 0
    ) -> int:
        """Store a compressed array; returns the assigned version."""
        return self._roundtrip(PutRequest(name, _as_blob(array)), epoch=epoch).version

    def get(self, name: str, version: int = -1, epoch: int = 0) -> bytes:
        """Fetch the serialized stream (latest version by default)."""
        return self._roundtrip(GetRequest(name, version), epoch=epoch).blob

    def get_container(self, name: str, version: int = -1) -> SZOpsCompressed:
        return SZOpsCompressed.from_bytes(self.get(name, version))

    def op(
        self,
        name: str,
        chain: Any,
        version: int = -1,
        result_name: str = "",
        deadline_ms: int = 0,
        epoch: int = 0,
    ) -> bytes | int:
        """Apply a pointwise chain; returns the blob, or the stored version."""
        reply = self._roundtrip(
            OpRequest(name, steps_from_chain(chain), version, result_name),
            deadline_ms,
            epoch,
        )
        return reply.version if reply.kind is BodyKind.STORED else reply.blob

    def reduce(
        self,
        name: str,
        reduction: str,
        chain: Any = (),
        version: int = -1,
        deadline_ms: int = 0,
        epoch: int = 0,
    ) -> float:
        """Reduce (optionally after a pointwise prefix chain)."""
        reply = self._roundtrip(
            ReduceRequest(name, reduction, steps_from_chain(chain), version),
            deadline_ms,
            epoch,
        )
        return reply.value

    def stats(self) -> dict[str, Any]:
        reply = self._roundtrip(StatsRequest())
        return dict(json.loads(reply.json_text))

    def health(self) -> dict[str, Any]:
        reply = self._roundtrip(HealthRequest())
        return dict(json.loads(reply.json_text))

    # ------------------------------------------------------------------ cluster (v2)

    def preduce(
        self,
        name: str,
        chain: Any = (),
        version: int = -1,
        deadline_ms: int = 0,
        epoch: int = 0,
    ) -> Moments:
        """Partial reduce: quantized moments of one shard (cluster nodes)."""
        reply = self._roundtrip(
            PReduceRequest(name, steps_from_chain(chain), version),
            deadline_ms,
            epoch,
        )
        if reply.moments is None:
            raise RemoteError("PREDUCE reply carried no moments body")
        return reply.moments

    def ping(self, deadline_ms: int = 0) -> dict[str, Any]:
        """Cheap liveness probe; returns the node's epoch/load document."""
        reply = self._roundtrip(PingRequest(), deadline_ms)
        return dict(json.loads(reply.json_text))

    def shardmap(self, map_json: str = "", epoch: int = 0) -> dict[str, Any]:
        """Install a shard map (or fetch with ``map_json=""``)."""
        reply = self._roundtrip(ShardMapRequest(map_json), epoch=epoch)
        return dict(json.loads(reply.json_text))

    # ------------------------------------------------------------------ raw access

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (malformed-input tests drive the server with this)."""
        self._sock.sendall(data)

    def recv_reply(self) -> Reply:
        """Read one reply frame without raising on non-OK statuses."""
        header = self._recv_exactly(4)
        length = protocol.split_frame(header, self.max_frame)
        return protocol.decode_reply(self._recv_exactly(length))

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            raise  # close failures are real; don't mask them

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self._sock.close()


class AsyncServiceClient:
    """Asyncio client over one TCP connection (use :meth:`connect`)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.max_frame = max_frame

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame: int = protocol.DEFAULT_MAX_FRAME,
    ) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame)

    async def _roundtrip(self, request: Request, deadline_ms: int = 0) -> Reply:
        payload = protocol.encode_request(request, deadline_ms)
        self._writer.write(protocol.pack_frame(payload, self.max_frame))
        await self._writer.drain()
        header = await self._reader.readexactly(4)
        length = protocol.split_frame(header, self.max_frame)
        body = await self._reader.readexactly(length)
        return _raise_for_status(protocol.decode_reply(body))

    async def put(self, name: str, array: SZOpsCompressed | bytes) -> int:
        return (await self._roundtrip(PutRequest(name, _as_blob(array)))).version

    async def get(self, name: str, version: int = -1) -> bytes:
        return (await self._roundtrip(GetRequest(name, version))).blob

    async def op(
        self,
        name: str,
        chain: Any,
        version: int = -1,
        result_name: str = "",
        deadline_ms: int = 0,
    ) -> bytes | int:
        reply = await self._roundtrip(
            OpRequest(name, steps_from_chain(chain), version, result_name),
            deadline_ms,
        )
        return reply.version if reply.kind is BodyKind.STORED else reply.blob

    async def reduce(
        self,
        name: str,
        reduction: str,
        chain: Any = (),
        version: int = -1,
        deadline_ms: int = 0,
    ) -> float:
        reply = await self._roundtrip(
            ReduceRequest(name, reduction, steps_from_chain(chain), version),
            deadline_ms,
        )
        return reply.value

    async def stats(self) -> dict[str, Any]:
        return dict(json.loads((await self._roundtrip(StatsRequest())).json_text))

    async def health(self) -> dict[str, Any]:
        return dict(json.loads((await self._roundtrip(HealthRequest())).json_text))

    async def close(self) -> None:
        self._writer.close()
        await self._writer.wait_closed()

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()


# `struct` is part of this module's documented surface for tests that
# hand-craft malformed frames; keep the import referenced.
_ = struct
