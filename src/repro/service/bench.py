"""Service benchmark: batched vs unbatched serving throughput.

``repro bench-serve`` runs this.  A self-hosted :class:`ThreadedServer`
is stood up twice — once with micro-batching on, once off — and hammered
by a closed-loop fleet of sync clients, all issuing the same depth-3
pointwise chain against one hot array.  That is the workload batching is
built for: the unbatched server pays one executor hop and one re-encode
per request, the batched server answers a whole flight of identical
requests from a single decode + encode.

Three checks ride along with the timing:

* every OP reply is compared byte-for-byte against the eager
  :func:`repro.core.ops.dispatch.apply_chain` result (``fused=False``) —
  batching must not change a single bit;
* every request must succeed (the bench fleet is sized under the
  admission cap, so a BUSY here is a bug);
* REDUCE-on-the-server is timed against the decompress-then-NumPy
  route (GET + decompress + ``np.mean``) to show the compressed-domain
  path also wins over the wire.

The resulting payload is what ``BENCH_service.json`` persists.
"""

from __future__ import annotations

import statistics
import threading
import time
from typing import Any

import numpy as np

from repro.core.compressor import SZOps
from repro.core.ops.dispatch import apply_chain
from repro.datasets import generate_fields
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ThreadedServer

__all__ = ["DEFAULT_CHAIN", "run_service_bench"]

#: The depth-3 pointwise chain every bench request applies.
DEFAULT_CHAIN: tuple[tuple[str, float | None], ...] = (
    ("negation", None),
    ("scalar_add", 0.25),
    ("scalar_multiply", 1.5),
)

_BLOCK_SIZE = 64


def _quantile(samples: list[float], frac: float) -> float:
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    rank = int(frac * 100) - 1
    return float(statistics.quantiles(samples, n=100, method="inclusive")[rank])


def _run_load(
    host: str,
    port: int,
    name: str,
    chain: tuple[tuple[str, float | None], ...],
    n_clients: int,
    requests_per_client: int,
    expected_blob: bytes,
) -> dict[str, Any]:
    """Closed-loop OP load: each client thread issues its requests back to back."""
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[str] = []
    mismatches = [0]
    barrier = threading.Barrier(n_clients + 1)
    lock = threading.Lock()

    def worker(idx: int) -> None:
        try:
            with ServiceClient(host, port) as client:
                barrier.wait()
                for _ in range(requests_per_client):
                    t0 = time.perf_counter()
                    blob = client.op(name, chain)
                    latencies[idx].append(time.perf_counter() - t0)
                    if blob != expected_blob:
                        with lock:
                            mismatches[0] += 1
        except Exception as exc:  # collected, not raised: the bench reports
            with lock:
                errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
            # Release the start barrier if we died before reaching it.
            if barrier.n_waiting:
                barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t_start

    flat = sorted(s for per_client in latencies for s in per_client)
    total = n_clients * requests_per_client
    return {
        "clients": n_clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "completed_requests": len(flat),
        "errors": errors,
        "mismatched_replies": mismatches[0],
        "wall_seconds": wall_s,
        "throughput_rps": len(flat) / wall_s if wall_s > 0 else 0.0,
        "latency_p50_ms": 1e3 * _quantile(flat, 0.50),
        "latency_p99_ms": 1e3 * _quantile(flat, 0.99),
        "latency_mean_ms": 1e3 * (sum(flat) / len(flat)) if flat else 0.0,
    }


def _best_of(fn: Any, repeats: int) -> tuple[float, Any]:
    best_s, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, value


def run_service_bench(
    dataset: str = "Miranda",
    scale: float = 0.5,
    eps: float = 1e-3,
    n_clients: int = 8,
    requests_per_client: int = 25,
    chain: tuple[tuple[str, float | None], ...] = DEFAULT_CHAIN,
    backend: str = "serial",
    n_workers: int = 1,
    seed: int = 20240624,
    repeats: int = 3,
) -> dict[str, Any]:
    """Measure batched vs unbatched serving on one synthetic hot array.

    Returns the JSON-able payload ``repro bench-serve`` writes to
    ``BENCH_service.json``.
    """
    fields = generate_fields(dataset, scale=scale, seed=seed)
    fname, arr = next(iter(fields.items()))
    codec = SZOps(block_size=_BLOCK_SIZE)
    compressed = codec.compress(arr, eps)
    blob = compressed.to_bytes()

    # Ground truth: the eager, unfused op-by-op pipeline.
    eager = apply_chain(compressed, list(chain), fused=False)
    expected_blob = eager.to_bytes()

    variants: dict[str, Any] = {}
    reduce_section: dict[str, Any] = {}
    for label, batching in (("batched", True), ("unbatched", False)):
        config = ServiceConfig(
            backend=backend,
            n_workers=n_workers,
            batching=batching,
            max_pending=max(64, 4 * n_clients * requests_per_client),
        )
        with ThreadedServer(config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                client.put("bench", blob)
            variants[label] = _run_load(
                handle.host,
                handle.port,
                "bench",
                chain,
                n_clients,
                requests_per_client,
                expected_blob,
            )
            if batching:
                with ServiceClient(handle.host, handle.port) as client:
                    variants[label]["server_stats"] = {
                        k: v
                        for k, v in client.stats()["counters"].items()
                        if k.startswith("batch")
                    }
            else:
                # Compressed-domain REDUCE vs fetch-and-decompress, both
                # over the wire against the same server.  Measured on the
                # unbatched variant so neither path pays the coalescing
                # window — this isolates compressed-domain-fold vs
                # transfer-plus-full-decompress, not batching policy.
                with ServiceClient(handle.host, handle.port) as client:
                    reduce_s, reduce_value = _best_of(
                        lambda: client.reduce("bench", "mean"), repeats
                    )

                    def fetch_and_mean() -> float:
                        raw = client.get("bench")
                        from repro.core.format import SZOpsCompressed

                        decoded = codec.decompress(SZOpsCompressed.from_bytes(raw))
                        return float(np.mean(decoded))

                    decompress_s, decompress_value = _best_of(fetch_and_mean, repeats)
                    reduce_section = {
                        "reduction": "mean",
                        "repeats": repeats,
                        "compressed_domain_seconds": reduce_s,
                        "fetch_decompress_seconds": decompress_s,
                        "speedup": (
                            decompress_s / reduce_s if reduce_s > 0 else float("inf")
                        ),
                        "compressed_domain_value": reduce_value,
                        "fetch_decompress_value": decompress_value,
                        "values_close": bool(
                            abs(reduce_value - decompress_value) <= 1e-6 * max(1.0, abs(decompress_value))
                        ),
                    }

    batched = variants["batched"]
    unbatched = variants["unbatched"]
    total_errors = len(batched["errors"]) + len(unbatched["errors"])
    return {
        "experiment": "service_batching",
        "dataset": dataset,
        "field": fname,
        "shape": list(arr.shape),
        "n_elements": int(arr.size),
        "eps": eps,
        "block_size": _BLOCK_SIZE,
        "blob_bytes": len(blob),
        "chain": [name if s is None else f"{name}={s:g}" for name, s in chain],
        "chain_depth": len(chain),
        "backend": backend,
        "n_workers": n_workers,
        "batched": batched,
        "unbatched": unbatched,
        "speedup_batched_vs_unbatched": (
            batched["throughput_rps"] / unbatched["throughput_rps"]
            if unbatched["throughput_rps"] > 0
            else float("inf")
        ),
        "reduce_vs_decompress": reduce_section,
        "total_errors": total_errors,
        "bit_identical_to_eager": (
            batched["mismatched_replies"] == 0 and unbatched["mismatched_replies"] == 0
        ),
    }
