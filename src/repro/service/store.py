"""Named, versioned compressed-array store with a byte-budget LRU.

The service's resident representation is the *compressed* stream — the
whole point of SZOps-style homomorphic pipelines is that the server never
needs the decompressed array to answer operation and reduction queries.
This module is the shelf those streams live on:

* **Named and versioned** — every ``put`` of a name allocates the next
  version; readers address ``(name, version)`` or "latest".  Versions are
  immutable once stored, which is what makes the micro-batcher's
  single-flight dedup sound: two requests naming the same version are
  provably asking about the same bytes.
* **Verified at the door** — untrusted bytes pass
  :func:`repro.analysis.assert_stream_ok` (the static container verifier)
  *and* a full :meth:`SZOpsCompressed.from_bytes` parse before they are
  admitted.  A corrupt container is a clean :class:`FormatError` at PUT
  time, never a decode surprise at OP time.
* **Byte-budget LRU** — total retained blob bytes are bounded; the least
  recently *used* (read or written) entries are evicted first.  Evicted
  versions are remembered as tombstones so a later GET distinguishes
  "evicted under memory pressure" from "never existed".
* **Reader/writer locking** — lookups take a shared lock; anything that
  mutates the index (insert, LRU touch, evict) takes the exclusive lock.
  The exclusive lock is ``self._lock`` and the class declares
  ``_GUARDED_ATTRS``, so the lockcheck pass (LCK001) verifies the
  discipline lexically and the lock-order pass (LCK002) sees a single
  acquisition level — the expensive work (verify, parse, fingerprint)
  happens strictly outside any lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.verify_stream import assert_stream_ok
from repro.core.format import SZOpsCompressed

__all__ = ["RWLock", "StoreMiss", "StoreError", "StoredEntry", "CompressedArrayStore"]


class StoreError(ValueError):
    """A stream could not be admitted to the store."""


class StoreMiss(KeyError):
    """The requested (name, version) is not resident.

    ``evicted`` distinguishes an entry dropped by the byte-budget LRU
    from a name/version that never existed.
    """

    def __init__(self, message: str, evicted: bool = False) -> None:
        super().__init__(message)
        self.evicted = evicted

    def __str__(self) -> str:  # KeyError quotes its arg; keep the text clean
        return str(self.args[0])


class RWLock:
    """A writer-preferring reader/writer lock.

    ``with lock:`` (or :meth:`exclusive`) acquires the write side;
    ``with lock.shared():`` acquires the read side.  Readers run
    concurrently; a waiting writer blocks new readers so a stream of
    GETs cannot starve a PUT.  Not reentrant on either side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def __enter__(self) -> "RWLock":
        self.acquire_write()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release_write()

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()


@dataclass(frozen=True)
class StoredEntry:
    """One resident version of a named array."""

    name: str
    version: int
    blob: bytes
    container: SZOpsCompressed
    fingerprint: str
    stored_at: float

    @property
    def nbytes(self) -> int:
        return len(self.blob)


class CompressedArrayStore:
    """The server-resident shelf of verified compressed streams.

    Parameters
    ----------
    byte_budget : total retained blob bytes before LRU eviction kicks in.
    verify : run :func:`assert_stream_ok` on every admitted blob (the
        wire-facing default; trusted in-process callers may disable it).
    """

    # Lock discipline (verified lexically by `repro.cli lint`'s lockcheck
    # pass): every mutation of these attributes must hold self._lock — the
    # exclusive side of the RWLock.  Shared-side readers never mutate.
    _GUARDED_ATTRS = ("_entries", "_latest", "_tombstones", "_nbytes", "_counters")

    def __init__(self, byte_budget: int = 256 << 20, verify: bool = True) -> None:
        if byte_budget <= 0:
            raise ValueError(f"byte_budget must be positive, got {byte_budget}")
        self.byte_budget = byte_budget
        self.verify = verify
        self._lock = RWLock()
        #: (name, version) -> StoredEntry, in LRU order (oldest first).
        self._entries: OrderedDict[tuple[str, int], StoredEntry] = OrderedDict()
        #: name -> newest version number ever assigned.
        self._latest: dict[str, int] = {}
        #: (name, version) pairs dropped by the LRU.
        self._tombstones: set[tuple[str, int]] = set()
        self._nbytes = 0
        self._counters = {"puts": 0, "gets": 0, "evictions": 0, "rejects": 0}

    # ------------------------------------------------------------------ write

    def put(self, name: str, blob: bytes) -> int:
        """Admit a serialized stream as the next version of ``name``.

        Verification and parsing run *outside* the lock — an expensive
        PUT never blocks concurrent readers — and raise
        :class:`FormatError` (via :func:`assert_stream_ok` /
        :meth:`SZOpsCompressed.from_bytes`) on damage.
        """
        if not name:
            raise StoreError("array name must be non-empty")
        if len(blob) > self.byte_budget:
            with self._lock:
                self._counters["puts"] += 1
                self._counters["rejects"] += 1
            raise StoreError(
                f"stream of {len(blob)} bytes exceeds the store's byte "
                f"budget of {self.byte_budget}"
            )
        try:
            if self.verify:
                assert_stream_ok(blob)
            container = SZOpsCompressed.from_bytes(blob)
        except Exception:
            with self._lock:
                self._counters["puts"] += 1
                self._counters["rejects"] += 1
            raise
        fingerprint = container.content_fingerprint()
        entry_blob = bytes(blob)
        now = time.monotonic()
        with self._lock:
            self._counters["puts"] += 1
            version = self._latest.get(name, 0) + 1
            self._latest[name] = version
            entry = StoredEntry(
                name=name,
                version=version,
                blob=entry_blob,
                container=container,
                fingerprint=fingerprint,
                stored_at=now,
            )
            self._entries[(name, version)] = entry
            self._nbytes += entry.nbytes
            self._evict_locked(keep=(name, version))
        return version

    def _evict_locked(self, keep: tuple[str, int] | None = None) -> None:
        """Drop LRU entries until the byte budget holds (caller holds lock)."""
        while self._nbytes > self.byte_budget and len(self._entries) > 1:
            key = next(iter(self._entries))
            if key == keep:
                # The newest insert is never evicted by its own put; move
                # on to the next-oldest entry (there is one: len > 1).
                keys = iter(self._entries)
                next(keys)
                key = next(keys)
            entry = self._entries.pop(key)
            self._nbytes -= entry.nbytes
            self._tombstones.add(key)
            self._counters["evictions"] += 1

    # ------------------------------------------------------------------ read

    def _resolve_version(self, name: str, version: int | None) -> int:
        if version is not None and version >= 0:
            return version
        latest = self._latest.get(name)
        if latest is None:
            raise StoreMiss(f"unknown array {name!r}")
        return latest

    def get(self, name: str, version: int | None = None) -> StoredEntry:
        """Fetch a resident entry (``version`` None/negative = latest).

        Touches the LRU, so it takes the exclusive lock — but only for
        the dict lookup and recency bump; the blob itself is immutable
        and handed out by reference.
        """
        with self._lock:
            self._counters["gets"] += 1
            resolved = self._resolve_version(name, version)
            key = (name, resolved)
            entry = self._entries.get(key)
            if entry is None:
                if key in self._tombstones:
                    raise StoreMiss(
                        f"array {name!r} version {resolved} was evicted "
                        "under byte-budget pressure",
                        evicted=True,
                    )
                raise StoreMiss(f"unknown array {name!r} version {resolved}")
            self._entries.move_to_end(key)
            return entry

    def container(self, name: str, version: int | None = None) -> SZOpsCompressed:
        """The parsed container of a resident entry."""
        return self.get(name, version).container

    # ------------------------------------------------------------------ introspection

    def __contains__(self, name: str) -> bool:
        with self._lock.shared():
            return name in self._latest

    def __len__(self) -> int:
        with self._lock.shared():
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock.shared():
            return self._nbytes

    def names(self) -> list[str]:
        """Every name ever stored (latest versions may be evicted)."""
        with self._lock.shared():
            return sorted(self._latest)

    def snapshot(self) -> dict[str, object]:
        """JSON-able operational summary for STATS/HEALTH."""
        with self._lock.shared():
            return {
                "arrays": len(self._latest),
                "resident_versions": len(self._entries),
                "bytes_used": self._nbytes,
                "byte_budget": self.byte_budget,
                "evictions": self._counters["evictions"],
                "puts": self._counters["puts"],
                "gets": self._counters["gets"],
                "rejects": self._counters["rejects"],
                "verify": self.verify,
            }
