"""Micro-batching: coalesce concurrent op requests into fused executions.

Under load, a compressed-array server sees bursts of scalar-op and
reduction requests against the same hot arrays — the classic serving
shape (dynamic batching in model servers exists for exactly this
reason).  Executing each request independently pays a per-request
executor round-trip and, for pointwise chains, a per-request re-encode.
This module closes both gaps without giving up the eager semantics:

* **Single-flight dedup** — requests whose *batch key* (array content
  fingerprint + version + exact chain) matches an in-flight computation
  attach to its future instead of recomputing.  Content fingerprints
  make this sound: equal key ⇒ equal bytes in, equal chain ⇒ equal
  bytes out.  One decode + one encode serves the whole flight.
* **Same-array grouping** — distinct chains over the same array that
  arrive inside one batching window execute in a single executor job,
  back to back, so the first chain's decode (kept by the decoded-block
  cache of :mod:`repro.runtime.cache`) is warm for the rest, and the
  event loop pays one ``run_in_executor`` hop per array instead of one
  per request.

Each individual computation still goes through the PR-1 fusion runtime
(:class:`repro.runtime.lazy.LazyStream`), whose results are bit-identical
to the eager :func:`repro.core.ops.apply_chain` path — batching changes
*when and where* work runs, never *what* is computed.  A failure inside
one flight fails only the requests attached to that flight.

The batcher is event-loop-confined: ``submit`` must be called from the
owning loop.  The window (default 2 ms) bounds added latency; a window
of 0 still dedups identical concurrent requests but groups only what is
already queued.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor as _PoolExecutor
from typing import Any, Awaitable, Callable

from repro.service.telemetry import Telemetry

__all__ = ["BatchKey", "MicroBatcher"]

#: Identity of one computation: (array fingerprint, version tag, chain).
#: Two requests with equal keys are guaranteed byte-identical answers.
BatchKey = tuple[str, ...]


class _Flight:
    """One unique computation and the requests riding on it."""

    __slots__ = ("key", "group", "compute", "future", "riders")

    def __init__(
        self,
        key: BatchKey,
        group: str,
        compute: Callable[[], Any],
        future: "asyncio.Future[Any]",
    ) -> None:
        self.key = key
        self.group = group
        self.compute = compute
        self.future = future
        #: How many requests share this flight (1 = no dedup happened).
        self.riders = 1


class MicroBatcher:
    """Coalesce concurrent compute requests behind one executor pass.

    Parameters
    ----------
    pool : the ``concurrent.futures`` executor heavy work is offloaded
        to (the server's kernel pool).
    window_s : how long the first request of a batch waits for company.
    max_batch : hard cap on flights drained per batch (backpressure on
        pathological bursts; excess flights roll into the next batch).
    telemetry : optional sink for batch/dedup counters.
    """

    def __init__(
        self,
        pool: _PoolExecutor,
        window_s: float = 0.002,
        max_batch: int = 64,
        telemetry: Telemetry | None = None,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be non-negative, got {window_s}")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.pool = pool
        self.window_s = window_s
        self.max_batch = max_batch
        self.telemetry = telemetry
        #: key -> in-flight computation (pending or executing).
        self._flights: dict[BatchKey, _Flight] = {}
        #: keys queued for the next drain, in arrival order.
        self._queued: list[BatchKey] = []
        self._drain_task: "asyncio.Task[None] | None" = None

    # ------------------------------------------------------------------ api

    @property
    def pending(self) -> int:
        """Flights queued but not yet drained (for tests and gauges)."""
        return len(self._queued)

    async def submit(
        self, key: BatchKey, group: str, compute: Callable[[], Any]
    ) -> Any:
        """Run ``compute`` (or join an identical in-flight run); await result.

        ``key`` identifies the computation (dedup granularity); ``group``
        identifies the array (grouping granularity) — flights sharing a
        group drain in one executor job so they share the decoded-block
        cache line while it is certainly warm.
        """
        loop = asyncio.get_running_loop()
        flight = self._flights.get(key)
        if flight is not None:
            flight.riders += 1
            if self.telemetry is not None:
                self.telemetry.increment("batch_dedup_hits")
            return await asyncio.shield(flight.future)
        flight = _Flight(key, group, compute, loop.create_future())
        self._flights[key] = flight
        self._queued.append(key)
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain_after_window())
        return await asyncio.shield(flight.future)

    async def flush(self) -> None:
        """Drain everything queued right now (used by graceful shutdown)."""
        while self._queued or (self._drain_task and not self._drain_task.done()):
            if self._drain_task is not None and not self._drain_task.done():
                await self._drain_task
            elif self._queued:
                await self._drain_batch()

    # ------------------------------------------------------------------ internals

    async def _drain_after_window(self) -> None:
        if self.window_s:
            await asyncio.sleep(self.window_s)
        await self._drain_batch()
        # Requests that arrived while the batch executed start a new window.
        if self._queued:
            loop = asyncio.get_running_loop()
            self._drain_task = loop.create_task(self._drain_after_window())

    async def _drain_batch(self) -> None:
        keys = self._queued[: self.max_batch]
        del self._queued[: len(keys)]
        if not keys:
            return
        # Group flights by array so each group is one executor job.
        groups: dict[str, list[_Flight]] = {}
        for key in keys:
            flight = self._flights[key]
            groups.setdefault(flight.group, []).append(flight)
        if self.telemetry is not None:
            self.telemetry.increment("batches")
            self.telemetry.increment("batched_flights", len(keys))
            self.telemetry.increment(
                "batched_requests", sum(f.riders for g in groups.values() for f in g)
            )
        loop = asyncio.get_running_loop()
        jobs: list[Awaitable[None]] = [
            loop.run_in_executor(self.pool, self._run_group, group)
            for group in groups.values()
        ]
        try:
            await asyncio.gather(*jobs)
        finally:
            for key in keys:
                self._flights.pop(key, None)

    def _run_group(self, flights: list[_Flight]) -> None:
        """Execute one array's flights back to back (worker thread)."""
        for flight in flights:
            try:
                result = flight.compute()
            except BaseException as exc:  # delivered to the waiters, not lost
                self._resolve(flight, None, exc)
            else:
                self._resolve(flight, result, None)

    def _resolve(
        self, flight: _Flight, result: Any, exc: BaseException | None
    ) -> None:
        loop = flight.future.get_loop()

        def _set() -> None:
            if flight.future.cancelled():
                return
            if exc is not None:
                flight.future.set_exception(exc)
            else:
                flight.future.set_result(result)

        loop.call_soon_threadsafe(_set)
