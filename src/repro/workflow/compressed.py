"""The SZOps workflow: operate directly on the compressed stream.

The counterpart of :mod:`repro.workflow.traditional` for Figure 1(b)'s new
workflows: the operation kernel runs on the compressed container (fully
compressed space for negation and scalar add/sub; partial decompression for
multiplication and the reductions) and the measured kernel time is the
*total* SZOps cost that Figure 5 plots against the traditional stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.format import SZOpsCompressed
from repro.core.ops.dispatch import OPERATIONS, apply_operation
from repro.metrics.timing import Timer, TimingBreakdown

__all__ = ["run_compressed", "CompressedResult"]


@dataclass
class CompressedResult:
    """Output and kernel timing of one compressed-domain operation."""

    op_name: str
    output: Any  # SZOpsCompressed (compression-as-output) or float
    timing: TimingBreakdown

    @property
    def kernel_seconds(self) -> float:
        return self.timing.operate


def run_compressed(
    c: SZOpsCompressed, op_name: str, scalar: float | None = None
) -> CompressedResult:
    """Apply a Table II operation in the compressed domain and time it."""
    if op_name not in OPERATIONS:
        raise ValueError(f"unknown operation {op_name!r}")
    timing = TimingBreakdown()
    with Timer() as t:
        output = apply_operation(c, op_name, scalar)
    timing.operate = t.seconds
    return CompressedResult(op_name=op_name, output=output, timing=timing)
