"""The traditional operation workflow: decompress -> operate -> recompress.

This is the baseline workflow of Figure 1(a) / Figure 4 that every
conventional error-bounded compressor forces on its users: to apply even a
scalar operation, the stream must be fully decompressed, the operation
applied to the raw array, and — for compression-as-output operations — the
result fully recompressed.  The per-stage timings feed Figure 5's stacked
bars and Table IV / Figure 6's end-to-end throughputs.

The driver works with any codec exposing ``compress``/``decompress`` (all
five baselines and the SZOps core itself, for ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.ops.dispatch import OPERATIONS
from repro.metrics.timing import Timer, TimingBreakdown

__all__ = ["numpy_reference_op", "run_traditional", "TraditionalResult"]


def numpy_reference_op(data: np.ndarray, op_name: str, scalar: float | None):
    """Apply a Table II operation to a raw array with plain NumPy.

    This is both the traditional workflow's operation stage and the ground
    truth the tests compare the compressed-domain kernels against.
    """
    if op_name not in OPERATIONS:
        raise ValueError(f"unknown operation {op_name!r}")
    spec = OPERATIONS[op_name]
    if spec.needs_scalar and scalar is None:
        raise ValueError(f"operation {op_name!r} requires a scalar operand")
    x = data
    if op_name == "negation":
        return -x
    if op_name == "scalar_add":
        return x + np.asarray(scalar, dtype=x.dtype)
    if op_name == "scalar_subtract":
        return x - np.asarray(scalar, dtype=x.dtype)
    if op_name == "scalar_multiply":
        return x * np.asarray(scalar, dtype=x.dtype)
    if op_name == "mean":
        return float(x.mean(dtype=np.float64))
    if op_name == "variance":
        return float(x.var(dtype=np.float64))
    if op_name == "std":
        return float(x.std(dtype=np.float64))
    raise ValueError(f"unknown operation {op_name!r}")


@dataclass
class TraditionalResult:
    """Output and per-stage timing of one traditional-workflow operation."""

    op_name: str
    output: Any  # recompressed blob (compression-as-output) or float
    timing: TimingBreakdown


def run_traditional(
    codec, blob, op_name: str, scalar: float | None = None
) -> TraditionalResult:
    """Execute decompress -> operate (-> recompress) and time each stage.

    For scalar operations the result is recompressed at the blob's error
    bound (the paper's Figure 4 "traditional workflow"); for reductions the
    workflow ends at the computed scalar (Section VI-B1).
    """
    spec = OPERATIONS[op_name]
    timing = TimingBreakdown()

    with Timer() as t:
        data = codec.decompress(blob)
    timing.decompress = t.seconds

    with Timer() as t:
        result = numpy_reference_op(data, op_name, scalar)
    timing.operate = t.seconds

    if spec.result == "compression":
        with Timer() as t:
            output = codec.compress(result, blob.eps, mode="abs")
        timing.compress = t.seconds
    else:
        output = result

    return TraditionalResult(op_name=op_name, output=output, timing=timing)
