"""Operation workflows: traditional (decompress/op/recompress) vs SZOps."""

from repro.workflow.compressed import CompressedResult, run_compressed
from repro.workflow.traditional import (
    TraditionalResult,
    numpy_reference_op,
    run_traditional,
)

__all__ = [
    "CompressedResult",
    "run_compressed",
    "TraditionalResult",
    "numpy_reference_op",
    "run_traditional",
]
