"""Byte-oriented stream writer/reader for container serialization.

The compressed containers in this repository (SZOps, SZp, SZ2/SZ3, SZx,
ZFP-class) all serialize to a single contiguous byte buffer with a small
header followed by sections.  :class:`ByteWriter` and :class:`ByteReader`
implement that framing: fixed-width scalar fields, length-prefixed NumPy
array planes, and raw byte sections.  All multi-byte scalars are
little-endian.

These classes deliberately stay at *byte* granularity; sub-byte packing is
done with :mod:`repro.bitstream.bitpack` and the resulting byte buffers are
written here as opaque sections.
"""

from __future__ import annotations

import struct

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = ["ByteWriter", "ByteReader", "StreamFormatError"]


class StreamFormatError(ValueError):
    """Raised when a serialized container fails structural validation."""


class ByteWriter:
    """Accumulates sections and scalars into one contiguous byte buffer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self._size = 0

    def tell(self) -> int:
        """Number of bytes written so far."""
        return self._size

    def _append(self, raw: bytes) -> None:
        self._parts.append(raw)
        self._size += len(raw)

    def write_bytes(
        self, raw: bytes | bytearray | memoryview | npt.NDArray[Any]
    ) -> None:
        """Write a raw byte section verbatim."""
        if isinstance(raw, np.ndarray):
            raw = np.ascontiguousarray(raw, dtype=np.uint8).tobytes()
        self._append(bytes(raw))

    def write_u8(self, value: int) -> None:
        self._append(struct.pack("<B", value))

    def write_u32(self, value: int) -> None:
        self._append(struct.pack("<I", value))

    def write_u64(self, value: int) -> None:
        self._append(struct.pack("<Q", value))

    def write_i64(self, value: int) -> None:
        self._append(struct.pack("<q", value))

    def write_f64(self, value: float) -> None:
        self._append(struct.pack("<d", value))

    def write_str(self, text: str) -> None:
        """Write a u32-length-prefixed UTF-8 string."""
        raw = text.encode("utf-8")
        self.write_u32(len(raw))
        self._append(raw)

    def write_array(self, arr: npt.NDArray[Any]) -> None:
        """Write a length-prefixed array plane (dtype + nbytes + data)."""
        a = np.ascontiguousarray(arr)
        self.write_str(a.dtype.str)
        self.write_u64(a.size)
        self._append(a.tobytes())

    def getvalue(self) -> bytes:
        """Concatenate all written sections into the final buffer."""
        return b"".join(self._parts)


class ByteReader:
    """Sequential reader mirroring :class:`ByteWriter`."""

    def __init__(
        self, buf: bytes | bytearray | memoryview | npt.NDArray[Any]
    ) -> None:
        if isinstance(buf, np.ndarray):
            buf = np.ascontiguousarray(buf, dtype=np.uint8).tobytes()
        self._buf = memoryview(bytes(buf))
        self._pos = 0

    def tell(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._buf) - self._pos

    def _take(self, n: int) -> memoryview:
        if n < 0 or self._pos + n > len(self._buf):
            raise StreamFormatError(
                f"truncated stream: need {n} bytes at offset {self._pos}, "
                f"have {self.remaining()}"
            )
        view = self._buf[self._pos : self._pos + n]
        self._pos += n
        return view

    def read_bytes(self, n: int) -> bytes:
        return bytes(self._take(n))

    def read_u8(self) -> int:
        return int(struct.unpack("<B", self._take(1))[0])

    def read_u32(self) -> int:
        return int(struct.unpack("<I", self._take(4))[0])

    def read_u64(self) -> int:
        return int(struct.unpack("<Q", self._take(8))[0])

    def read_i64(self) -> int:
        return int(struct.unpack("<q", self._take(8))[0])

    def read_f64(self) -> float:
        return float(struct.unpack("<d", self._take(8))[0])

    def read_str(self) -> str:
        n = self.read_u32()
        return bytes(self._take(n)).decode("utf-8")

    def read_array(self) -> npt.NDArray[Any]:
        dtype = np.dtype(self.read_str())
        size = self.read_u64()
        raw = self._take(size * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def expect_end(self) -> None:
        """Assert the whole buffer was consumed."""
        if self.remaining():
            raise StreamFormatError(
                f"{self.remaining()} trailing bytes after container payload"
            )
