"""Vectorized bit-level packing primitives.

Every codec in this repository (the SZOps core, the SZp baseline, Huffman,
the ZFP-class embedded coder) stores data at sub-byte granularity.  This
module provides the shared NumPy kernels: converting unsigned integers to and
from MSB-first bit arrays, packing bit arrays into byte buffers, and the
ragged gather/scatter index construction used to place variable-width block
payloads into a single contiguous bitstream without per-block Python loops.

Conventions
-----------
* Bit arrays are ``uint8`` arrays holding 0/1 values, one element per bit.
* Bit order is MSB-first, matching ``numpy.packbits(..., bitorder="big")``:
  bit 0 of the array becomes the most-significant bit of byte 0.
* Integer values are packed MSB-first within their field, so a value packed
  at width ``w`` occupies exactly ``w`` bits and round-trips losslessly as
  long as ``value < 2**w``.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = [
    "bit_width",
    "max_bit_width",
    "bits_of",
    "uints_from_bits",
    "pack_bits",
    "unpack_bits",
    "pack_uints",
    "unpack_uints",
    "ragged_arange",
    "exclusive_cumsum",
]


def bit_width(values: npt.ArrayLike) -> npt.NDArray[np.uint8]:
    """Return the number of bits needed to represent each unsigned value.

    ``bit_width(0) == 0`` by convention (a zero needs no payload bits), and
    ``bit_width(v) == floor(log2(v)) + 1`` otherwise.  Works elementwise on
    any unsigned (or non-negative signed) integer array.
    """
    v = np.asarray(values)
    if v.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if np.issubdtype(v.dtype, np.signedinteger):
        if v.size and int(v.min()) < 0:
            raise ValueError("bit_width expects non-negative values")
        v = v.astype(np.uint64)
    if v.size == 1:
        # Scalar fast path: the per-block width scan calls this with single
        # maxima; int.bit_length beats six whole-array rounds by ~20x.
        return np.full(v.shape, int(v.reshape(-1)[0]).bit_length(), dtype=np.uint8)
    out = np.zeros(v.shape, dtype=np.uint8)
    work = v.astype(np.uint64, copy=True)
    # Branch-free bit-length: repeatedly shift and accumulate.  At most 64
    # iterations of whole-array ops; in practice the loop exits after
    # ceil(log2(max)) rounds because all lanes hit zero together.
    for step in (32, 16, 8, 4, 2, 1):
        shift = np.uint64(step)
        mask = work >= (np.uint64(1) << shift)
        out[mask] += np.uint8(step)
        work[mask] >>= shift
    out[work > 0] += np.uint8(1)
    return out


def max_bit_width(values: npt.ArrayLike) -> int:
    """Bit width of the largest magnitude in ``values`` (0 for empty/all-zero)."""
    v = np.asarray(values)
    if v.size == 0:
        return 0
    m = int(np.max(v))
    if m < 0:
        raise ValueError("max_bit_width expects non-negative values")
    return m.bit_length()


def bits_of(values: npt.ArrayLike, width: int) -> npt.NDArray[np.uint8]:
    """Expand unsigned integers into an MSB-first bit array.

    Parameters
    ----------
    values : array of non-negative integers, shape ``(n,)``.
    width : number of bits per value; every value must satisfy
        ``value < 2**width``.

    Returns
    -------
    uint8 array of shape ``(n * width,)`` holding 0/1.
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if width == 0:
        if v.size and int(v.max()) != 0:
            raise ValueError("width 0 requires all-zero values")
        return np.zeros(0, dtype=np.uint8)
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if v.size:
        mx = int(v.max())
        if width < 64 and mx >> width:
            raise ValueError(
                f"value {mx} does not fit in {width} bits"
            )
    # Expand via the big-endian byte view + unpackbits (C speed), keeping
    # only the low ``width`` bits of each value.
    nbytes = (width + 7) // 8
    be = v.astype(">u8").view(np.uint8).reshape(-1, 8)[:, 8 - nbytes :]
    bits = np.unpackbits(be, axis=1)
    return np.ascontiguousarray(bits[:, nbytes * 8 - width :]).reshape(-1)


def uints_from_bits(bits: npt.ArrayLike, width: int) -> npt.NDArray[np.uint64]:
    """Inverse of :func:`bits_of`: reassemble uint64 values from a bit array."""
    b = np.asarray(bits, dtype=np.uint8)
    if width == 0:
        return np.zeros(0, dtype=np.uint64)
    if b.size % width:
        raise ValueError(
            f"bit array of {b.size} bits is not a multiple of width {width}"
        )
    n = b.size // width
    # Left-pad each value's bits to whole big-endian bytes, packbits along
    # the row axis, then fold the byte columns into uint64 (C speed, no
    # per-bit math; at most 8 whole-array shift-or rounds).
    nbytes = (width + 7) // 8
    pad = nbytes * 8 - width
    if pad:
        mat = np.zeros((n, nbytes * 8), dtype=np.uint8)
        mat[:, pad:] = b.reshape(n, width)
    else:
        mat = b.reshape(n, width)
    # Flat packbits + reshape: identical to axis-wise packing because every
    # row is a whole number of bytes, and ~40x faster in NumPy.
    packed = np.packbits(np.ascontiguousarray(mat).reshape(-1)).reshape(n, nbytes)
    out = packed[:, 0].astype(np.uint64)
    for k in range(1, nbytes):
        out <<= np.uint64(8)
        out |= packed[:, k]
    return out


def pack_bits(bits: npt.ArrayLike) -> npt.NDArray[np.uint8]:
    """Pack a 0/1 bit array into bytes (MSB-first). Pads the tail with zeros."""
    return np.packbits(np.asarray(bits, dtype=np.uint8))


def unpack_bits(
    buf: npt.NDArray[np.uint8] | bytes | bytearray | memoryview,
    nbits: int,
    bit_offset: int = 0,
) -> npt.NDArray[np.uint8]:
    """Unpack ``nbits`` bits starting at ``bit_offset`` from a byte buffer."""
    raw = np.frombuffer(buf, dtype=np.uint8) if isinstance(buf, (bytes, bytearray, memoryview)) else np.asarray(buf, dtype=np.uint8)
    first_byte = bit_offset // 8
    last_byte = (bit_offset + nbits + 7) // 8
    if last_byte > raw.size:
        raise ValueError(
            f"requested bits [{bit_offset}, {bit_offset + nbits}) exceed "
            f"buffer of {raw.size * 8} bits"
        )
    window = np.unpackbits(raw[first_byte:last_byte])
    start = bit_offset - first_byte * 8
    out = window[start : start + nbits]
    if not out.flags.writeable:
        # Guarantee a mutable result even when the expansion is elided for a
        # bytes-backed (read-only) buffer; callers mutate decoded windows
        # in place.
        out = out.copy()
    return out


def pack_uints(values: npt.ArrayLike, width: int) -> npt.NDArray[np.uint8]:
    """Pack unsigned integers at a fixed bit width into a byte buffer."""
    return pack_bits(bits_of(values, width))


def unpack_uints(
    buf: npt.NDArray[np.uint8] | bytes | bytearray | memoryview,
    count: int,
    width: int,
    bit_offset: int = 0,
) -> npt.NDArray[np.uint64]:
    """Unpack ``count`` fixed-width unsigned integers from a byte buffer."""
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    bits = unpack_bits(buf, count * width, bit_offset)
    return uints_from_bits(bits, width)


def exclusive_cumsum(
    lengths: npt.ArrayLike, dtype: npt.DTypeLike = np.int64
) -> npt.NDArray[Any]:
    """Exclusive prefix sum: ``out[i] = sum(lengths[:i])``."""
    lens = np.asarray(lengths, dtype=dtype)
    out = np.empty(lens.size + 1, dtype=dtype)
    out[0] = 0
    np.cumsum(lens, out=out[1:])
    return out[:-1]


def ragged_arange(
    lengths: npt.ArrayLike, starts: npt.ArrayLike | None = None
) -> npt.NDArray[np.int64]:
    """Concatenate ``arange(l) + s`` for each (length, start) pair, vectorized.

    This is the index kernel behind ragged gather/scatter: with
    ``starts = bit_offsets`` and ``lengths = bits_per_block`` it yields, in a
    single allocation, the global bit index of every payload bit of every
    block — no per-block loop.
    """
    lens = np.asarray(lengths, dtype=np.int64)
    if lens.size == 0:
        return np.zeros(0, dtype=np.int64)
    if lens.size and int(lens.min()) < 0:
        raise ValueError("lengths must be non-negative")
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    base = np.repeat(exclusive_cumsum(lens), lens)
    idx = np.arange(total, dtype=np.int64) - base
    if starts is not None:
        s = np.asarray(starts, dtype=np.int64)
        if s.shape != lens.shape:
            raise ValueError("starts must match lengths in shape")
        idx += np.repeat(s, lens)
    return idx
