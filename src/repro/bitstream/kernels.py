"""Pluggable width-specialized bitpack kernels for the BF hot path.

The blockwise fixed-length (BF) stage packs every delta magnitude of a block
at the block's fixed bit width.  ``repro.bitstream.bitpack`` does this by
expanding each value into a per-bit ``uint8`` array (``bits_of`` →
``np.unpackbits`` → scatter) — correct, but an 8–64× memory blow-up per
payload bit.  This module provides a registry of interchangeable kernel
variants behind one :class:`BitpackKernel` interface:

``bitarray``
    The existing per-bit reference path (delegates to ``bitpack``).  Kept as
    the oracle every other variant is differentially tested against.
``wordpack``
    A byte/word-level shift-or kernel that packs fixed-width uints directly
    into ``uint64`` lanes with width-specialized fast paths — no per-bit
    expansion.  See the *Wordpack design* section below.
``numba``
    An optional JIT variant (extras group ``[speed]``) behind a soft import;
    :func:`resolve_kernel` silently falls back to ``wordpack`` when numba is
    not installed.

Every kernel produces **bit-identical** byte streams: values are packed
MSB-first within their field, matching ``numpy.packbits(bitorder="big")``,
so a value packed at width ``w`` round-trips whenever ``value < 2**w``.

Wordpack design
---------------
*Pack* merges adjacent value pairs in a tree (``(a << W) | b``), doubling
the lane width ``W`` until it is a multiple of 8 (then a big-endian byte
view emits the stream directly) or until the doubled width would no longer
fit the 64-bit shift window (``2W > 57``), in which case lanes are scattered
into the output at ``m = 8/gcd(W, 8)`` bit *phases*: all lanes of a phase
share the same intra-byte shift, so each phase is one vectorized shift + OR
over strided 8-byte windows.

*Unpack* is width-dispatched: byte-multiple widths use dtype views
(``>u2``/``>u4``/``>u8``) or strided byte folds; widths whose packing cycle
``lcm(w, 8)`` fits a single ``uint64`` lane (``w/gcd(w,8) < 8`` bytes) use
one gather plus ``m`` shift-mask extractions; the remaining widths ≤ 57 use
per-phase strided window gathers.  Widths 58–63 that are not byte-multiples
cannot use a 64-bit shift window and fall back to the reference path.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Callable

import numpy as np
import numpy.typing as npt
from numpy.lib.stride_tricks import as_strided

from repro.bitstream import bitpack

__all__ = [
    "BitpackKernel",
    "BitarrayKernel",
    "WordpackKernel",
    "NumbaKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "resolve_kernel",
    "numba_available",
    "AUTO_KERNEL",
    "SMALL_INPUT_CUTOFF",
]

BufLike = npt.NDArray[np.uint8] | bytes | bytearray | memoryview

#: Sentinel kernel name: dispatch on width/size (see :func:`resolve_kernel`).
AUTO_KERNEL = "auto"

#: Below this element count the per-call NumPy overhead of the wordpack
#: merge tree exceeds its bandwidth win; ``auto`` picks the reference path.
SMALL_INPUT_CUTOFF = 32

_U64 = np.uint64
# Lane order of the uint32 halves of a uint64 view depends on host endianness.
_NP_LITTLE = bool(np.little_endian)


def _as_byte_array(buf: BufLike) -> npt.NDArray[np.uint8]:
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return np.frombuffer(buf, dtype=np.uint8)
    return np.asarray(buf, dtype=np.uint8)


class BitpackKernel(ABC):
    """Interface every bitpack kernel variant implements.

    The contract is byte-for-byte equality with the reference
    ``bitpack.pack_uints`` / ``bitpack.unpack_uints`` pair for all widths in
    ``[0, 64]``, all input sizes (including empty), and all in-range values.
    """

    #: Registry name of the variant.
    name: str = ""

    @abstractmethod
    def pack_uints(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        """Pack unsigned integers at a fixed bit width into a byte buffer."""

    @abstractmethod
    def unpack_uints(
        self, buf: BufLike, count: int, width: int, bit_offset: int = 0
    ) -> npt.NDArray[np.uint64]:
        """Unpack ``count`` fixed-width unsigned integers from a byte buffer."""

    def bits_of(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        """Expand values into an MSB-first 0/1 bit array (reference impl)."""
        return bitpack.bits_of(values, width)

    def uints_from_bits(
        self, bits: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint64]:
        """Inverse of :meth:`bits_of` (reference impl)."""
        return bitpack.uints_from_bits(bits, width)


class BitarrayKernel(BitpackKernel):
    """Per-bit reference kernel: the original ``bitpack`` path, unchanged."""

    name = "bitarray"

    def pack_uints(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        return bitpack.pack_uints(values, width)

    def unpack_uints(
        self, buf: BufLike, count: int, width: int, bit_offset: int = 0
    ) -> npt.NDArray[np.uint64]:
        return bitpack.unpack_uints(buf, count, width, bit_offset)


def _validate_width_values(
    v: npt.NDArray[np.unsignedinteger[Any]], width: int
) -> None:
    if width < 0 or width > 64:
        raise ValueError(f"width must be in [0, 64], got {width}")
    if v.size == 0:
        return
    mx = int(v.max())
    if width == 0:
        if mx != 0:
            raise ValueError("width 0 requires all-zero values")
    elif width < 64 and mx >> width:
        raise ValueError(f"value {mx} does not fit in {width} bits")


class WordpackKernel(BitpackKernel):
    """Byte/word-level shift-or kernel (no per-bit expansion)."""

    name = "wordpack"

    # -- pack ------------------------------------------------------------

    def pack_uints(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        v = np.ascontiguousarray(values)
        narrow = v.dtype == np.uint32
        if not narrow:
            v = np.ascontiguousarray(v, dtype=np.uint64)
        _validate_width_values(v, width)
        n = v.size
        if width == 0 or n == 0:
            return np.zeros(0, dtype=np.uint8)
        nbytes = (n * width + 7) // 8
        w_lane = width
        if width <= 16:
            # Narrow-lane start: widths up to 16 merge inside uint32 lanes
            # first (identical arithmetic, half the memory traffic of the
            # uint64 tree).  A uint32 input is used as-is; uint64 lanes
            # contribute their low words through a strided view.
            if narrow:
                work32 = v
            elif _NP_LITTLE:
                work32 = v.view(np.uint32)[0::2]
            else:
                work32 = v.view(np.uint32)[1::2]
            while w_lane % 8 != 0 and 2 * w_lane <= 32:
                if work32.size % 2:
                    work32 = np.concatenate([work32, np.zeros(1, dtype=np.uint32)])
                work32 = (work32[0::2] << np.uint32(w_lane)) | work32[1::2]
                w_lane *= 2
            if w_lane % 8 == 0:
                out32: npt.NDArray[np.uint8] = _lanes_to_bytes(work32, w_lane)[:nbytes]
                return out32
            work = work32.astype(np.uint64)
        elif narrow:  # uint32 input at widths above 16: widen once
            work = v.astype(np.uint64)
        else:
            work = v
        # Tree-merge adjacent pairs while the doubled lane width is still a
        # non-byte-multiple that fits the 64-bit shift window.  The bound is
        # 57 because the phase path below shifts by ``64 - s - W`` with the
        # intra-byte shift ``s <= 7``: ``s + W <= 64`` needs ``W <= 57``.
        while w_lane % 8 != 0 and 2 * w_lane <= 57:
            if work.size % 2:
                work = np.concatenate([work, np.zeros(1, dtype=np.uint64)])
            work = (work[0::2] << _U64(w_lane)) | work[1::2]
            w_lane *= 2
        if w_lane % 8 == 0:
            out: npt.NDArray[np.uint8] = _lanes_to_bytes(work, w_lane)[:nbytes]
            return out
        if w_lane > 57:  # widths 58..63: no 64-bit shift window; reference
            return bitpack.pack_uints(v, width)
        return _phase_scatter(work, w_lane, nbytes)

    # -- unpack ----------------------------------------------------------

    def unpack_uints(
        self, buf: BufLike, count: int, width: int, bit_offset: int = 0
    ) -> npt.NDArray[np.uint64]:
        if width < 0 or width > 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        if width == 0 or count == 0:
            return np.zeros(count, dtype=np.uint64)
        if bit_offset % 8:  # sub-byte stream offsets stay on the bit path
            return bitpack.unpack_uints(buf, count, width, bit_offset)
        raw = _as_byte_array(buf)[bit_offset // 8 :]
        nbytes = (count * width + 7) // 8
        if raw.size < nbytes:
            raise ValueError(
                f"requested {count} values of width {width} exceed buffer "
                f"of {raw.size} bytes"
            )
        if width == 1:
            return np.unpackbits(raw[:nbytes])[:count].astype(np.uint64)
        if width % 8 == 0:
            return _unpack_bytemult(raw, count, width, nbytes)
        if width > 57:
            return bitpack.unpack_uints(raw[:nbytes], count, width)
        g = math.gcd(width, 8)
        m, cycle_bytes = 8 // g, width // g
        if cycle_bytes < 8:
            return _unpack_cycle_lane(raw, count, width, m, cycle_bytes, nbytes)
        return _unpack_phase_gather(raw, count, width, m, cycle_bytes, nbytes)

    # -- bit-granular interface (scatter paths, Huffman) -----------------

    def bits_of(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        # pack_uints emits the exact MSB-first bit stream, so expanding its
        # bytes is equivalent to the reference per-value expansion and
        # inherits the word-level pack speedup.
        v = np.ascontiguousarray(values, dtype=np.uint64)
        packed = self.pack_uints(v, width)
        return np.unpackbits(packed)[: v.size * width]

    def uints_from_bits(
        self, bits: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint64]:
        b = np.asarray(bits, dtype=np.uint8)
        if width == 0:
            return np.zeros(0, dtype=np.uint64)
        if b.size % width:
            raise ValueError(
                f"bit array of {b.size} bits is not a multiple of width {width}"
            )
        return self.unpack_uints(np.packbits(b), b.size // width, width)


def _lanes_to_bytes(
    work: npt.NDArray[np.unsignedinteger[Any]], w_lane: int
) -> npt.NDArray[np.uint8]:
    """Big-endian bytes of the low ``w_lane`` bits of each lane (w_lane % 8 == 0).

    Lanes may be uint64 or (narrow tree) uint32; the byte stream is the same.
    """
    k = w_lane // 8
    if k == work.dtype.itemsize:
        return np.ascontiguousarray(work).byteswap().view(np.uint8)
    if k == 1:
        return work.astype(np.uint8)
    if k in (2, 4):
        return work.astype(">u2" if k == 2 else ">u4").view(np.uint8)
    # k in {3, 5, 6, 7}: strided byte-column writes, one pass per byte.
    shift = work.dtype.type
    out = np.empty(work.size * k, dtype=np.uint8)
    for i in range(k):
        out[i::k] = (work >> shift(8 * (k - 1 - i))).astype(np.uint8)
    return out


def _phase_scatter(
    work: npt.NDArray[np.uint64], w_lane: int, nbytes: int
) -> npt.NDArray[np.uint8]:
    """Scatter lanes of a non-byte-multiple width (<= 57) into the stream.

    Lanes whose index is congruent mod ``m`` share the same intra-byte shift
    ``s`` and a constant byte stride, so each of the ``m`` phases is one
    vectorized shift + OR over non-overlapping strided 8-byte windows.
    """
    g = math.gcd(w_lane, 8)
    m, cycle_bytes = 8 // g, w_lane // g
    ncyc = -(-work.size // m)
    # Slack: the last phase's final window starts up to cycle_bytes - 1
    # bytes past the payload and spans 8 bytes.
    out = np.zeros(ncyc * cycle_bytes + cycle_bytes + 8, dtype=np.uint8)
    for j in range(m):
        lanes = work[j::m]
        if lanes.size == 0:
            continue
        pos = j * w_lane
        b0, s = pos >> 3, pos & 7
        win = (lanes << _U64(64 - s - w_lane)).byteswap().view(np.uint8)
        dst = out[b0 : b0 + lanes.size * cycle_bytes].reshape(
            lanes.size, cycle_bytes
        )
        dst[:, :8] |= win.reshape(lanes.size, 8)
    result: npt.NDArray[np.uint8] = out[:nbytes].copy()
    return result


def _unpack_bytemult(
    raw: npt.NDArray[np.uint8], count: int, width: int, nbytes: int
) -> npt.NDArray[np.uint64]:
    k = width // 8
    if k in (1, 2, 4, 8):
        dt = {1: np.dtype(np.uint8), 2: np.dtype(">u2"), 4: np.dtype(">u4"), 8: np.dtype(">u8")}[k]
        return raw[:nbytes].view(dt).astype(np.uint64)
    # k in {3, 5, 6, 7}: strided byte-column folds, one pass per byte.
    out = np.zeros(count, dtype=np.uint64)
    src = raw[:nbytes]
    for i in range(k):
        out |= src[i::k].astype(np.uint64) << _U64(8 * (k - 1 - i))
    return out


def _col_dtype(width: int) -> np.dtype:
    """Narrowest unsigned dtype holding ``width`` bits (cuts write traffic)."""
    if width <= 8:
        return np.dtype(np.uint8)
    if width <= 16:
        return np.dtype(np.uint16)
    if width <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


def _unpack_cycle_lane(
    raw: npt.NDArray[np.uint8],
    count: int,
    width: int,
    m: int,
    cycle_bytes: int,
    nbytes: int,
) -> npt.NDArray[np.uint64]:
    """Whole packing cycle fits one uint64 lane: 1 gather, m shift-masks."""
    ncyc = -(-count // m)
    src = np.zeros((ncyc, 8), dtype=np.uint8)
    pad = np.zeros(ncyc * cycle_bytes, dtype=np.uint8)
    pad[:nbytes] = raw[:nbytes]
    src[:, :cycle_bytes] = pad.reshape(ncyc, cycle_bytes)
    acc = src.reshape(-1).view(np.uint64).byteswap()
    mask = _U64((1 << width) - 1)
    cdt = _col_dtype(width)
    out = np.empty((ncyc, m), dtype=cdt)
    for j in range(m):
        out[:, j] = ((acc >> _U64(64 - width - j * width)) & mask).astype(cdt)
    return out.reshape(-1)[:count].astype(np.uint64)


def _unpack_phase_gather(
    raw: npt.NDArray[np.uint8],
    count: int,
    width: int,
    m: int,
    cycle_bytes: int,
    nbytes: int,
) -> npt.NDArray[np.uint64]:
    """Per-phase strided 8-byte window gathers (width <= 57, cycle >= 8 bytes)."""
    ncyc = -(-count // m)
    src = np.zeros(ncyc * cycle_bytes + cycle_bytes + 16, dtype=np.uint8)
    src[:nbytes] = raw[:nbytes]
    mask = _U64((1 << width) - 1)
    cdt = _col_dtype(width)
    out = np.empty((ncyc, m), dtype=cdt)
    for j in range(m):
        pos = j * width
        b0, s = pos >> 3, pos & 7
        # Overlapping reads are safe; as_strided + copy is the gather.
        win = np.ascontiguousarray(
            as_strided(src[b0:], shape=(ncyc, 8), strides=(cycle_bytes, 1))
        )
        acc = win.reshape(-1).view(np.uint64).byteswap()
        out[:, j] = ((acc >> _U64(64 - s - width)) & mask).astype(cdt)
    return out.reshape(-1)[:count].astype(np.uint64)


# --------------------------------------------------------------------------
# optional numba JIT variant (extras group [speed])
# --------------------------------------------------------------------------


def numba_available() -> bool:
    """True when the optional numba dependency can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class NumbaKernel(BitpackKernel):
    """JIT-compiled scalar-loop kernel; registered only when numba imports.

    The compiled loops are cached per process on first use, which is what
    the process backend's persistent per-worker kernel state amortizes.
    """

    name = "numba"

    def __init__(self) -> None:
        self._pack_jit: Callable[..., None] | None = None
        self._unpack_jit: Callable[..., None] | None = None

    def _compile(self) -> None:
        if self._pack_jit is not None:
            return
        from numba import njit  # soft import; guarded by numba_available()

        @njit(cache=True)
        def _pack(values, width, out):  # type: ignore[no-untyped-def]
            for i in range(values.size):
                val = values[i]
                base = i * width
                for b in range(width):
                    if (val >> np.uint64(width - 1 - b)) & np.uint64(1):
                        p = base + b
                        out[p >> 3] |= np.uint8(1 << (7 - (p & 7)))

        @njit(cache=True)
        def _unpack(raw, count, width, bit_offset, out):  # type: ignore[no-untyped-def]
            for i in range(count):
                acc = np.uint64(0)
                base = bit_offset + i * width
                for b in range(width):
                    p = base + b
                    bit = (raw[p >> 3] >> np.uint8(7 - (p & 7))) & np.uint8(1)
                    acc = (acc << np.uint64(1)) | np.uint64(bit)
                out[i] = acc

        self._pack_jit = _pack
        self._unpack_jit = _unpack

    def pack_uints(
        self, values: npt.ArrayLike, width: int
    ) -> npt.NDArray[np.uint8]:
        v = np.ascontiguousarray(values, dtype=np.uint64)
        _validate_width_values(v, width)
        if width == 0 or v.size == 0:
            return np.zeros(0, dtype=np.uint8)
        self._compile()
        assert self._pack_jit is not None
        out = np.zeros((v.size * width + 7) // 8, dtype=np.uint8)
        self._pack_jit(v, width, out)
        return out

    def unpack_uints(
        self, buf: BufLike, count: int, width: int, bit_offset: int = 0
    ) -> npt.NDArray[np.uint64]:
        if width < 0 or width > 64:
            raise ValueError(f"width must be in [0, 64], got {width}")
        out = np.zeros(count, dtype=np.uint64)
        if width == 0 or count == 0:
            return out
        raw = _as_byte_array(buf)
        if (bit_offset + count * width + 7) // 8 > raw.size:
            raise ValueError(
                f"requested {count} values of width {width} exceed buffer "
                f"of {raw.size} bytes"
            )
        self._compile()
        assert self._unpack_jit is not None
        self._unpack_jit(raw, count, width, bit_offset, out)
        return out


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_REGISTRY: dict[str, BitpackKernel] = {}


def register_kernel(kernel: BitpackKernel) -> BitpackKernel:
    """Add a kernel variant to the registry (last registration wins)."""
    if not kernel.name:
        raise ValueError("kernel must define a non-empty name")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> BitpackKernel:
    """Look up a registered kernel by name (no auto dispatch, no fallback)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown bitpack kernel {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def available_kernels() -> tuple[str, ...]:
    """Names of all registered kernel variants."""
    return tuple(sorted(_REGISTRY))


def resolve_kernel(
    kernel: str | BitpackKernel = AUTO_KERNEL,
    *,
    width: int | None = None,
    size: int | None = None,
) -> BitpackKernel:
    """Resolve a kernel request to a concrete variant.

    ``auto`` dispatches on the (optional) width/size hints: tiny inputs and
    widths the wordpack shift window cannot express stay on the reference
    path; everything else gets the fastest registered variant (``numba``
    when installed, else ``wordpack``).  Requesting ``numba`` without numba
    installed silently falls back to ``wordpack`` — kernels are
    bit-identical, so the fallback only affects speed.
    """
    if isinstance(kernel, BitpackKernel):
        return kernel
    if kernel == AUTO_KERNEL:
        if size is not None and size < SMALL_INPUT_CUTOFF:
            return _REGISTRY["bitarray"]
        if width is not None and width > 57 and width % 8:
            return _REGISTRY["bitarray"]
        if "numba" in _REGISTRY:
            return _REGISTRY["numba"]
        return _REGISTRY["wordpack"]
    if kernel == "numba" and "numba" not in _REGISTRY:
        return _REGISTRY["wordpack"]
    return get_kernel(kernel)


register_kernel(BitarrayKernel())
register_kernel(WordpackKernel())
if numba_available():  # pragma: no cover - exercised by the [speed] CI leg
    register_kernel(NumbaKernel())
