"""Bit- and byte-level packing substrate shared by every codec."""

from repro.bitstream.bitpack import (
    bit_width,
    bits_of,
    exclusive_cumsum,
    max_bit_width,
    pack_bits,
    pack_uints,
    ragged_arange,
    uints_from_bits,
    unpack_bits,
    unpack_uints,
)
from repro.bitstream.stream import ByteReader, ByteWriter, StreamFormatError

__all__ = [
    "bit_width",
    "bits_of",
    "exclusive_cumsum",
    "max_bit_width",
    "pack_bits",
    "pack_uints",
    "ragged_arange",
    "uints_from_bits",
    "unpack_bits",
    "unpack_uints",
    "ByteReader",
    "ByteWriter",
    "StreamFormatError",
]
