"""Command-line interface: compress, decompress, and operate on streams.

SDRBench-style headerless binary fields go in; SZOps streams come out, and
every compressed-domain operation is available without ever materializing
the decompressed array::

    python -m repro compress U.f32 U.szops --shape 100,500,500 --eps 1e-4
    python -m repro info U.szops
    python -m repro stats U.szops
    python -m repro op U.szops scalar_add --scalar 273.15 -o K.szops
    python -m repro op U.szops mean
    python -m repro chain U.szops negation scalar_multiply=0.1 mean
    python -m repro decompress K.szops K.f32
    python -m repro serve --port 7201
    python -m repro bench-serve -o BENCH_service.json
    python -m repro experiment run perf-smoke --index runs/experiments.db
    python -m repro experiment report --index runs/experiments.db
    python -m repro experiment compare --index runs/experiments.db

Input/output binary convention matches :mod:`repro.datasets.io`:
little-endian float32 (or float64 with ``--dtype f64``), C order.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import SZOps, ops
from repro.core.format import SZOpsCompressed
from repro.core.ops.dispatch import OPERATIONS

__all__ = ["main", "build_parser"]

_DTYPES = {"f32": np.float32, "f64": np.float64}


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad shape {text!r}; expected e.g. 100,500,500")
    if not dims or any(d <= 0 for d in dims):
        raise argparse.ArgumentTypeError(f"shape dimensions must be positive: {text!r}")
    return dims


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    from repro.core.config import VALID_BACKENDS

    p.add_argument(
        "--backend",
        choices=VALID_BACKENDS,
        default="threads",
        help=(
            "execution backend for the chunked hot paths (processes = warm "
            "worker pool with shared-memory transport); all backends produce "
            "bit-identical results"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SZOps: error-bounded lossy compression with compressed-domain operations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a raw binary field")
    p.add_argument("input", type=Path)
    p.add_argument("output", type=Path)
    p.add_argument("--shape", type=_parse_shape, required=True, help="e.g. 100,500,500")
    p.add_argument("--eps", type=float, required=True, help="error bound")
    p.add_argument("--rel", action="store_true", help="value-range-relative bound")
    p.add_argument("--dtype", choices=sorted(_DTYPES), default="f32")
    p.add_argument("--block-size", type=int, default=64)
    p.add_argument("--threads", type=int, default=1)
    _add_backend_arg(p)

    p = sub.add_parser("decompress", help="decompress a stream to raw binary")
    p.add_argument("input", type=Path)
    p.add_argument("output", type=Path)

    p = sub.add_parser("info", help="print stream metadata")
    p.add_argument("input", type=Path)

    p = sub.add_parser("stats", help="compressed-domain statistics")
    p.add_argument("input", type=Path)

    p = sub.add_parser(
        "op", help="apply a Table II operation (reductions print, ops write)"
    )
    p.add_argument("input", type=Path)
    p.add_argument("name", choices=list(OPERATIONS))
    p.add_argument("--scalar", type=float, default=None)
    p.add_argument("-o", "--output", type=Path, default=None)

    p = sub.add_parser(
        "chain",
        help="run a fused operation chain (one decode, at most one encode)",
        description=(
            "Apply a chain of operations through the lazy fusion runtime. "
            "Steps are operation names, with scalars attached as name=value "
            "(e.g. 'negation scalar_multiply=0.1 mean'). A reduction may "
            "only appear as the final step; chains ending in a pointwise "
            "operation write a stream and need -o."
        ),
    )
    p.add_argument("input", type=Path)
    p.add_argument(
        "steps", nargs="+", metavar="step", help="operation name or name=scalar"
    )
    p.add_argument("-o", "--output", type=Path, default=None)
    p.add_argument(
        "--no-fuse",
        action="store_true",
        help="replay the chain eagerly, one op at a time (for comparison)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=1,
        help="route fused reduction partial sums through this many workers",
    )
    _add_backend_arg(p)
    p.add_argument(
        "--time", action="store_true", help="print the chain's wall time"
    )

    p = sub.add_parser(
        "bench",
        help="benchmark the execution backends (serial/threads/processes)",
        description=(
            "Run the parallel-backend benchmark on a synthetic dataset: "
            "compress (QZ/LZ/BF split), decompress, and mean/variance "
            "reductions for every backend at each worker count, asserting "
            "bit-identical streams and reductions. Optionally persist the "
            "JSON payload (the BENCH_parallel.json artifact)."
        ),
    )
    p.add_argument(
        "--workers",
        default="1,2,4,8",
        help="comma-separated worker counts (default 1,2,4,8)",
    )
    p.add_argument("--dataset", default="Miranda")
    p.add_argument("--scale", type=float, default=None, help="synthetic scale override")
    p.add_argument("--repeats", type=int, default=None, help="repeat count override")
    p.add_argument("-o", "--output", type=Path, default=None, help="write bench JSON here")

    p = sub.add_parser(
        "bench-bitpack",
        help="microbenchmark the bitpack kernel variants (kernel x width)",
        description=(
            "Run the bitpack-kernels table through the experiment engine: "
            "pack/unpack throughput for every registered kernel variant at "
            "each bit width over a fixed random lane array, asserting "
            "payload byte-identity against the bitarray reference and exact "
            "round-trips. See docs/KERNELS.md."
        ),
    )
    p.add_argument(
        "--widths",
        default=None,
        help="comma-separated bit widths (default 1,2,3,4,5,8,11,12,16,24,32)",
    )
    p.add_argument(
        "--size",
        type=int,
        default=1 << 20,
        help="lanes per cell (default 1048576)",
    )
    p.add_argument("--repeats", type=int, default=None, help="repeat count override")
    p.add_argument(
        "-o", "--output", type=Path, default=None, help="write the cell JSON here"
    )

    p = sub.add_parser(
        "serve",
        help="run the compressed-array op server",
        description=(
            "Serve named compressed arrays over TCP: PUT/GET streams, "
            "apply fused pointwise chains (OP), run compressed-domain "
            "reductions (REDUCE), and expose live telemetry (STATS) and "
            "health (HEALTH). Concurrent requests against the same array "
            "are micro-batched; overload sheds as BUSY; SIGTERM/SIGINT "
            "drain in-flight requests before exit. See docs/SERVICE.md."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 = pick an ephemeral port")
    p.add_argument(
        "--threads", type=int, default=1, help="workers for chunked reductions"
    )
    _add_backend_arg(p)
    p.add_argument(
        "--byte-budget",
        type=int,
        default=256 << 20,
        help="store budget in bytes before LRU eviction (default 256 MiB)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission cap; excess requests shed as BUSY",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, help="default per-request deadline (s)"
    )
    p.add_argument(
        "--window",
        type=float,
        default=0.002,
        help="micro-batching window in seconds (0 keeps dedup, no delay)",
    )
    p.add_argument(
        "--no-batching", action="store_true", help="disable micro-batching entirely"
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the static stream verifier on PUT (trusted peers only)",
    )
    p.add_argument(
        "--debug-delay-s",
        type=float,
        default=0.0,
        help="artificial kernel delay per OP/REDUCE (load and drain drills)",
    )

    p = sub.add_parser(
        "cluster",
        help="sharded multi-node serving (node, serve, status, bench)",
        description=(
            "Operate a sharded cluster of op servers: run one shard node, "
            "boot an N-node local cluster with a consistent-hash shard map "
            "and heartbeat failure detection, ping every node in a map, or "
            "drive a mixed PUT/distributed-REDUCE load with bit-identity "
            "checks against the single-node reductions. See docs/CLUSTER.md."
        ),
    )
    csub = p.add_subparsers(dest="cluster_command", required=True)

    pc = csub.add_parser("node", help="run one cluster shard node")
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--port", type=int, default=0, help="0 = pick an ephemeral port")
    pc.add_argument("--node-id", default="node-0", help="stable cluster identity")
    pc.add_argument(
        "--threads", type=int, default=1, help="workers for chunked reductions"
    )
    _add_backend_arg(pc)

    pc = csub.add_parser(
        "serve", help="boot an N-node local cluster (one subprocess per node)"
    )
    pc.add_argument("--nodes", type=int, default=3)
    pc.add_argument("--replicas", type=int, default=2)
    pc.add_argument("--vnodes", type=int, default=64, help="virtual nodes per node")
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument(
        "--threads", type=int, default=1, help="workers per node for reductions"
    )
    pc.add_argument(
        "--map-file",
        type=Path,
        default=Path("cluster-map.json"),
        help="where to write the shard map for clients (default cluster-map.json)",
    )

    pc = csub.add_parser("status", help="ping every node in a shard map")
    pc.add_argument(
        "--map-file",
        type=Path,
        default=Path("cluster-map.json"),
        help="shard map written by `cluster serve`",
    )

    pc = csub.add_parser(
        "bench",
        help="mixed PUT/distributed-REDUCE load with identity checks",
        description=(
            "Boot a local cluster, place sharded arrays, and drive a closed "
            "loop of concurrent routers issuing PUTs and distributed "
            "reductions. Every reduction reply is checked against the "
            "single-node LazyStream value (mean/min/max bit-identical). "
            "Writes BENCH_cluster.json."
        ),
    )
    pc.add_argument("--nodes", type=int, default=3)
    pc.add_argument("--replicas", type=int, default=2)
    pc.add_argument("--clients", type=int, default=4)
    pc.add_argument("--requests", type=int, default=25, help="requests per client")
    pc.add_argument("--arrays", type=int, default=4)
    pc.add_argument("--chunks", type=int, default=6, help="chunks per sharded array")
    pc.add_argument("--n-elements", type=int, default=30_000)
    pc.add_argument("--eps", type=float, default=1e-3)
    pc.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("BENCH_cluster.json"),
        help="bench JSON path (default BENCH_cluster.json)",
    )

    p = sub.add_parser(
        "bench-serve",
        help="benchmark the service: batched vs unbatched serving throughput",
        description=(
            "Self-host the op server twice (micro-batching on and off) and "
            "drive it with a closed loop of concurrent clients issuing the "
            "same depth-3 pointwise chain. Reports throughput and p50/p99 "
            "latency per variant, verifies every reply bit-identical to the "
            "eager apply_chain result, and times compressed-domain REDUCE "
            "against fetch-and-decompress. Writes BENCH_service.json."
        ),
    )
    p.add_argument("--dataset", default="Miranda")
    p.add_argument("--scale", type=float, default=0.5, help="synthetic scale")
    p.add_argument("--eps", type=float, default=1e-3)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=25, help="requests per client")
    p.add_argument(
        "--threads", type=int, default=1, help="server workers for reductions"
    )
    _add_backend_arg(p)
    p.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("BENCH_service.json"),
        help="bench JSON path (default BENCH_service.json)",
    )

    p = sub.add_parser(
        "experiment",
        help="factorial experiment runner (run tables, index, regression gates)",
        description=(
            "Run factorial experiment tables through the engine in "
            "repro.harness.experiments: execute cells across dataset x eps "
            "x backend x workers x chain depth x client count, persist "
            "per-run artifact directories, append to a cross-run SQLite "
            "index, render reports, and gate regressions against indexed "
            "baselines. See docs/EXPERIMENTS.md."
        ),
    )
    esub = p.add_subparsers(dest="experiment_command", required=True)

    pe = esub.add_parser("tables", help="list the predefined run tables")

    pe = esub.add_parser("run", help="execute a predefined run table")
    pe.add_argument("table", help="predefined table name (see `experiment tables`)")
    pe.add_argument(
        "--runs-dir", type=Path, default=Path("runs"),
        help="artifact root; each run gets runs/<run_id>/ (default runs/)",
    )
    pe.add_argument(
        "--index", type=Path, default=None,
        help="cross-run SQLite index to append to "
        "(default <runs-dir>/experiments.db; 'none' disables indexing)",
    )
    pe.add_argument(
        "--resume", type=Path, default=None,
        help="existing run directory: skip its completed cells, run the rest",
    )
    pe.add_argument("--scale", type=float, default=None, help="synthetic scale override")
    pe.add_argument("--repeats", type=int, default=None, help="table repeat override")
    pe.add_argument(
        "--workers", default=None,
        help="comma-separated worker counts (parallel-backends table only)",
    )
    pe.add_argument("--dataset", default=None, help="dataset override where supported")
    pe.add_argument(
        "--bench-json", type=Path, default=None,
        help="also emit the legacy BENCH_*.json payload for this table",
    )
    pe.add_argument("-q", "--quiet", action="store_true", help="no per-cell progress")

    pe = esub.add_parser("report", help="render report.json/report.md from the index")
    pe.add_argument("--index", type=Path, required=True)
    pe.add_argument("--run", default=None, help="run id (default: latest run)")
    pe.add_argument(
        "-o", "--output-dir", type=Path, default=None,
        help="write report.json + report.md here instead of printing",
    )
    pe.add_argument(
        "--json", action="store_true", help="print report.json instead of markdown"
    )

    pe = esub.add_parser(
        "compare", help="gate a run against an indexed baseline (CI perf gate)"
    )
    pe.add_argument("--index", type=Path, required=True)
    pe.add_argument(
        "--baseline", default=None,
        help="baseline run id (default: second-latest run of the current run's table)",
    )
    pe.add_argument("--current", default=None, help="current run id (default: latest)")
    pe.add_argument(
        "--max-regression-pct", type=float, default=20.0,
        help="timing regression threshold in percent (default 20)",
    )
    pe.add_argument(
        "--gate-timing", choices=("auto", "always", "never"), default="auto",
        help="timing gate policy: auto = only with >= 4 CPUs (identity "
        "checks always hard-fail regardless)",
    )

    p = sub.add_parser(
        "lint",
        help="run the static analysis passes (szops-lint + lockcheck)",
        description=(
            "Run the domain-aware static analysis passes over python "
            "sources: the SZL lint rules and the LCK lock-discipline "
            "check. With no paths, lints the installed repro package. "
            "Exits 1 when any error-severity finding remains."
        ),
    )
    p.add_argument(
        "paths", nargs="*", type=Path, help="files or directories (default: repro)"
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (e.g. SZL001,SZL004)",
    )
    p.add_argument(
        "--no-lockcheck",
        action="store_true",
        help="skip the lock-discipline pass",
    )
    p.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the abstract-interpretation passes (SZL101/102/103, "
        "LCK002, SHM001/002, ASY, TNT, NPA) and the SZL099 "
        "stale-suppression check",
    )
    p.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REV",
        help="incremental mode: run the per-file passes only on .py files "
        "changed since REV (default HEAD, i.e. the working tree diff plus "
        "untracked files). Cross-file passes still see every target, so "
        "the findings equal a full run's restricted to the changed files.",
    )
    p.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout "
        "(a one-line summary still prints)",
    )

    p = sub.add_parser(
        "verify-stream",
        help="statically verify serialized streams without decompressing",
        description=(
            "Check container structure of serialized SZOps/SZp streams: "
            "magic, version, header plausibility, per-block bit widths, "
            "section sizes against the width plane, offset monotonicity, "
            "trailing bytes. Exits 1 on any error finding."
        ),
    )
    p.add_argument("inputs", nargs="+", type=Path)
    p.add_argument(
        "--stream-format",
        choices=("auto", "szops", "szp"),
        default="auto",
        help="container format (auto sniffs the SZOps magic)",
    )
    p.add_argument(
        "--n-elements",
        type=int,
        default=None,
        help="element count (required for SZp payloads, which omit it)",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )

    return parser


def _load_stream(path: Path) -> SZOpsCompressed:
    return SZOpsCompressed.from_bytes(path.read_bytes())


def _cmd_compress(args) -> int:
    dtype = _DTYPES[args.dtype]
    raw = np.fromfile(args.input, dtype=np.dtype(dtype).newbyteorder("<"))
    expected = int(np.prod(args.shape))
    if raw.size != expected:
        print(
            f"error: {args.input} holds {raw.size} values, shape "
            f"{args.shape} needs {expected}",
            file=sys.stderr,
        )
        return 2
    with SZOps(
        block_size=args.block_size, n_threads=args.threads, backend=args.backend
    ) as codec:
        c = codec.compress(
            raw.reshape(args.shape), args.eps, mode="rel" if args.rel else "abs"
        )
    args.output.write_bytes(c.to_bytes())
    print(
        f"{args.input} -> {args.output}: {raw.nbytes} -> {c.compressed_nbytes} "
        f"bytes (ratio {c.compression_ratio:.2f}x, eps {c.eps:g}, "
        f"{100 * c.constant_fraction:.1f}% constant blocks)"
    )
    return 0


def _cmd_decompress(args) -> int:
    c = _load_stream(args.input)
    data = SZOps(block_size=c.block_size).decompress(c)
    np.ascontiguousarray(data, dtype=np.dtype(data.dtype).newbyteorder("<")).tofile(
        args.output
    )
    print(f"{args.input} -> {args.output}: shape {c.shape}, dtype {c.dtype}")
    return 0


def _cmd_info(args) -> int:
    c = _load_stream(args.input)
    print(f"shape:           {c.shape}")
    print(f"dtype:           {c.dtype}")
    print(f"error bound:     {c.eps:g} (absolute)")
    print(f"block size:      {c.block_size}")
    print(f"blocks:          {c.n_blocks} ({c.n_constant_blocks} constant, "
          f"{100 * c.constant_fraction:.1f}%)")
    print(f"compressed size: {c.compressed_nbytes} bytes")
    print(f"ratio:           {c.compression_ratio:.3f}x")
    return 0


def _cmd_stats(args) -> int:
    c = _load_stream(args.input)
    stats = ops.summary_statistics(c)
    print(f"mean:     {stats['mean']:+.8g}")
    print(f"variance: {stats['variance']:.8g}")
    print(f"std:      {stats['std']:.8g}")
    print(f"min:      {ops.minimum(c):+.8g}")
    print(f"max:      {ops.maximum(c):+.8g}")
    return 0


def _cmd_op(args) -> int:
    c = _load_stream(args.input)
    spec = OPERATIONS[args.name]
    if spec.needs_scalar and args.scalar is None:
        print(f"error: operation {args.name!r} needs --scalar", file=sys.stderr)
        return 2
    result = ops.apply_operation(c, args.name, args.scalar)
    if spec.result == "computation":
        print(f"{args.name}: {result:.10g}")
        return 0
    if args.output is None:
        print(f"error: operation {args.name!r} produces a stream; pass -o", file=sys.stderr)
        return 2
    args.output.write_bytes(result.to_bytes())
    print(f"{args.name} -> {args.output} ({result.compressed_nbytes} bytes)")
    return 0


def _cmd_chain(args) -> int:
    import time

    from repro.core.errors import OperationError
    from repro.core.ops.dispatch import CHAIN_REDUCTIONS, normalize_chain

    c = _load_stream(args.input)
    try:
        steps = normalize_chain(args.steps)
    except OperationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ends_in_reduction = bool(steps) and steps[-1][0] in CHAIN_REDUCTIONS
    if not ends_in_reduction and args.output is None:
        print(
            "error: chain produces a stream; pass -o (or end on a reduction)",
            file=sys.stderr,
        )
        return 2
    from repro.parallel.backends import get_backend

    executor = get_backend(args.backend, args.threads) if args.threads > 1 else None
    t0 = time.perf_counter()
    try:
        result = ops.apply_chain(
            c, steps, fused=not args.no_fuse, executor=executor
        )
    except OperationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if executor is not None:
            executor.close()
    elapsed = time.perf_counter() - t0
    pretty = " -> ".join(
        name if scalar is None else f"{name}={scalar:g}" for name, scalar in steps
    )
    if ends_in_reduction:
        print(f"{pretty}: {result:.10g}")
    else:
        args.output.write_bytes(result.to_bytes())
        print(f"{pretty} -> {args.output} ({result.compressed_nbytes} bytes)")
    if args.time:
        mode = "eager" if args.no_fuse else "fused"
        print(f"[{mode} chain: {1e3 * elapsed:.2f} ms]")
    return 0


def _parse_workers(text: str) -> tuple[int, ...]:
    try:
        workers = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise ValueError(f"bad --workers {text!r}; expected e.g. 1,2,4") from None
    if not workers or any(w <= 0 for w in workers):
        raise ValueError("worker counts must be positive")
    return workers


def _bench_cfg(args):
    import dataclasses

    from repro.harness.config import config_from_env

    cfg = config_from_env()
    if getattr(args, "scale", None) is not None:
        cfg = dataclasses.replace(cfg, scale=args.scale)
    if getattr(args, "repeats", None) is not None:
        cfg = dataclasses.replace(cfg, repeats=args.repeats)
    return cfg


def _cmd_bench(args) -> int:
    """The BENCH_parallel.json producer, executed through the engine."""
    import tempfile

    from repro.harness import save_bench_json
    from repro.harness.experiments import (
        bench_parallel_payload,
        get_table,
        render_report_markdown,
        run_experiment,
    )

    try:
        workers = _parse_workers(args.workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cfg = _bench_cfg(args)
    table = get_table("parallel-backends", workers=workers, dataset=args.dataset)
    if args.repeats is not None:
        import dataclasses

        table = dataclasses.replace(table, repeats=args.repeats)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        result = run_experiment(table, cfg, tmp)
    print(render_report_markdown(result.report))
    if args.output is not None:
        save_bench_json(bench_parallel_payload(result.manifest, result.cells), args.output)
        print(f"[bench JSON -> {args.output}]")
    return 0 if result.all_ok else 1


def _cmd_bench_bitpack(args) -> int:
    """The bitpack-kernels microbenchmark, executed through the engine."""
    import json
    import tempfile

    from repro.harness.experiments import (
        get_table,
        render_report_markdown,
        run_experiment,
    )

    kwargs: dict = {"size": args.size}
    if args.widths is not None:
        try:
            widths = tuple(int(part) for part in args.widths.split(","))
        except ValueError:
            print(f"error: bad --widths {args.widths!r}", file=sys.stderr)
            return 2
        if not widths or any(w < 0 or w > 64 for w in widths):
            print("error: widths must be in [0, 64]", file=sys.stderr)
            return 2
        kwargs["widths"] = widths
    table = get_table("bitpack-kernels", **kwargs)
    if args.repeats is not None:
        import dataclasses

        table = dataclasses.replace(table, repeats=args.repeats)
    cfg = _bench_cfg(args)
    with tempfile.TemporaryDirectory(prefix="repro-bench-bitpack-") as tmp:
        result = run_experiment(table, cfg, tmp)
    print(render_report_markdown(result.report))
    if args.output is not None:
        cells = [dict(cell["metrics"]) for cell in result.cells]
        payload = {
            "experiment": "bitpack_kernels",
            "size": args.size,
            "all_identical": bool(result.all_ok),
            "cells": cells,
            "run_id": result.manifest["run_id"],
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[bench JSON -> {args.output}]")
    return 0 if result.all_ok else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service.server import ServiceConfig, ServiceServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        n_workers=args.threads,
        byte_budget=args.byte_budget,
        max_pending=args.max_pending,
        request_timeout_s=args.timeout,
        batch_window_s=args.window,
        batching=not args.no_batching,
        verify_streams=not args.no_verify,
        debug_delay_s=args.debug_delay_s,
    )

    async def _serve() -> None:
        server = ServiceServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(f"listening on {config.host}:{server.port}", flush=True)
        serve_task = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("draining...", flush=True)
        serve_task.cancel()
        await server.shutdown()
        print("stopped", flush=True)

    asyncio.run(_serve())
    return 0


def _cmd_cluster(args) -> int:
    handlers = {
        "node": _cluster_node,
        "serve": _cluster_serve,
        "status": _cluster_status,
        "bench": _cluster_bench,
    }
    return handlers[args.cluster_command](args)


def _cluster_node(args) -> int:
    import asyncio
    import signal

    from repro.cluster import ClusterNode, NodeConfig

    config = NodeConfig(
        host=args.host,
        port=args.port,
        backend=args.backend,
        n_workers=args.threads,
        node_id=args.node_id,
    )

    async def _serve() -> None:
        node = ClusterNode(config)
        await node.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(f"listening on {config.host}:{node.port}", flush=True)
        serve_task = asyncio.ensure_future(node.serve_forever())
        await stop.wait()
        serve_task.cancel()
        await node.shutdown()

    asyncio.run(_serve())
    return 0


def _cluster_serve(args) -> int:
    import signal
    import subprocess
    import threading

    from repro.cluster import ClusterClient, HeartbeatMonitor, NodeInfo, ShardMap

    procs: list[subprocess.Popen] = []
    try:
        for i in range(args.nodes):
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "cluster", "node",
                        "--host", args.host, "--port", "0",
                        "--node-id", f"node-{i}",
                        "--threads", str(args.threads),
                    ],
                    stdout=subprocess.PIPE,
                    text=True,
                )
            )
        infos = []
        for i, proc in enumerate(procs):
            assert proc.stdout is not None
            line = proc.stdout.readline().strip()
            if not line.startswith("listening on "):
                print(f"error: node-{i} failed to start: {line!r}", file=sys.stderr)
                return 1
            port = int(line.rsplit(":", 1)[1])
            infos.append(NodeInfo(f"node-{i}", args.host, port))
        shard_map = ShardMap(
            tuple(infos), replicas=args.replicas, vnodes=args.vnodes
        )
        args.map_file.write_text(shard_map.to_json())
        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        with ClusterClient(shard_map) as router:
            router.install_map()
            with HeartbeatMonitor(router):
                print(
                    f"cluster up: {args.nodes} nodes, replicas={args.replicas}, "
                    f"map -> {args.map_file}",
                    flush=True,
                )
                last_epoch = router.epoch
                while not stop.wait(0.5):
                    if router.epoch != last_epoch:
                        last_epoch = router.epoch
                        args.map_file.write_text(router.map.to_json())
                        print(
                            f"rebalanced: epoch {last_epoch}, "
                            f"{len(router.map.nodes)} nodes live",
                            flush=True,
                        )
        print("stopping nodes...", flush=True)
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


def _cluster_status(args) -> int:
    from repro.cluster import ClusterClient, ShardMap

    shard_map = ShardMap.from_json(args.map_file.read_text())
    with ClusterClient(shard_map) as router:
        doc = router.status()
    print(f"epoch {doc['epoch']}  replicas {doc['replicas']}")
    down = 0
    for node_id, info in sorted(doc["nodes"].items()):
        if "error" in info:
            down += 1
            print(f"  {node_id:>10}: DOWN ({info['error']})")
        else:
            print(
                f"  {node_id:>10}: up  epoch {info['epoch']}  "
                f"arrays {info['arrays']}  inflight {info['inflight']}"
            )
    return 1 if down else 0


def _cluster_bench(args) -> int:
    from repro.cluster import run_cluster_bench
    from repro.harness import save_bench_json

    payload = run_cluster_bench(
        n_nodes=args.nodes,
        replicas=args.replicas,
        n_clients=args.clients,
        requests_per_client=args.requests,
        n_arrays=args.arrays,
        chunks=args.chunks,
        n_elements=args.n_elements,
        eps=args.eps,
    )
    print(
        f"cluster: {payload['throughput_rps']:8.1f} req/s  "
        f"p50 {payload['latency_p50_ms']:7.2f} ms  "
        f"p99 {payload['latency_p99_ms']:7.2f} ms  "
        f"({payload['completed_requests']}/{payload['total_requests']} ok, "
        f"{payload['identity_failures']} identity failures)"
    )
    save_bench_json(payload, args.output)
    print(f"[bench JSON -> {args.output}]")
    return 0 if payload["ok"] else 1


def _cmd_bench_serve(args) -> int:
    """The BENCH_service.json producer, executed through the engine."""
    import dataclasses
    import tempfile

    from repro.harness import save_bench_json
    from repro.harness.config import config_from_env
    from repro.harness.experiments import (
        bench_service_payload,
        get_table,
        run_experiment,
    )

    cfg = dataclasses.replace(config_from_env(), scale=args.scale)
    table = get_table(
        "service-batching",
        dataset=args.dataset,
        clients=args.clients,
        requests_per_client=args.requests,
        eps=args.eps,
        backend=args.backend,
        n_workers=args.threads,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        result = run_experiment(table, cfg, tmp)
    payload = bench_service_payload(result.cells)
    for label in ("batched", "unbatched"):
        v = payload[label]
        print(
            f"{label:>9}: {v['throughput_rps']:8.1f} req/s  "
            f"p50 {v['latency_p50_ms']:7.2f} ms  p99 {v['latency_p99_ms']:7.2f} ms  "
            f"({v['completed_requests']}/{v['total_requests']} ok)"
        )
    print(f"speedup (batched/unbatched): {payload['speedup_batched_vs_unbatched']:.2f}x")
    red = payload["reduce_vs_decompress"]
    print(
        f"REDUCE mean: {1e3 * red['compressed_domain_seconds']:.2f} ms compressed-domain "
        f"vs {1e3 * red['fetch_decompress_seconds']:.2f} ms fetch+decompress "
        f"({red['speedup']:.2f}x)"
    )
    save_bench_json(payload, args.output)
    print(f"[bench JSON -> {args.output}]")
    ok = payload["total_errors"] == 0 and payload["bit_identical_to_eager"]
    return 0 if ok else 1


def _cmd_experiment(args) -> int:
    from repro.harness.experiments import ExperimentIndexError

    handlers = {
        "tables": _experiment_tables,
        "run": _experiment_run,
        "report": _experiment_report,
        "compare": _experiment_compare,
    }
    try:
        return handlers[args.experiment_command](args)
    except ExperimentIndexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _experiment_tables(args) -> int:
    from repro.harness.experiments import get_table, table_names

    for name in table_names():
        table = get_table(name)
        factors = " x ".join(
            f"{k}[{len(v)}]" for k, v in table.factors.items()
        )
        print(f"{name:18} {table.workload:10} {table.n_cells:3} cell(s)  {factors}")
        print(f"{'':18} {table.description}")
    return 0


def _experiment_run(args) -> int:
    import dataclasses

    from repro.harness import save_bench_json
    from repro.harness.experiments import (
        bench_parallel_payload,
        bench_runtime_payload,
        bench_service_payload,
        get_table,
        run_experiment,
    )

    kwargs = {}
    if args.workers is not None:
        kwargs["workers"] = _parse_workers(args.workers)
    if args.dataset is not None:
        kwargs["dataset"] = args.dataset
    table = get_table(args.table, **kwargs)
    if args.repeats is not None:
        table = dataclasses.replace(table, repeats=args.repeats)
    cfg = _bench_cfg(args)

    index_path = args.index
    if index_path is None:
        index_path = args.runs_dir / "experiments.db"
    elif str(index_path) == "none":
        index_path = None

    progress = None if args.quiet else print
    result = run_experiment(
        table,
        cfg,
        args.runs_dir,
        index_path=index_path,
        resume=args.resume,
        progress=progress,
    )
    print(
        f"run {result.run_id}: {result.executed} executed, "
        f"{result.resumed} resumed, all_ok={result.all_ok}"
    )
    print(f"[artifacts -> {result.run_dir}]")

    if args.bench_json is not None:
        emitters = {
            "parallel-backends": lambda: bench_parallel_payload(
                result.manifest, result.cells
            ),
            "runtime-fusion": lambda: bench_runtime_payload(result.cells),
            "service-batching": lambda: bench_service_payload(result.cells),
        }
        if args.table not in emitters:
            print(
                f"error: no legacy BENCH payload for table {args.table!r}",
                file=sys.stderr,
            )
            return 2
        save_bench_json(emitters[args.table](), args.bench_json)
        print(f"[bench JSON -> {args.bench_json}]")
    return 0 if result.all_ok else 1


def _experiment_report(args) -> int:
    from repro.harness.experiments import (
        open_index,
        render_report_json,
        report_from_index,
    )

    conn = open_index(args.index)
    try:
        report, markdown = report_from_index(conn, args.run)
    finally:
        conn.close()
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        (args.output_dir / "report.json").write_text(render_report_json(report))
        (args.output_dir / "report.md").write_text(markdown)
        print(f"[report.json + report.md -> {args.output_dir}]")
    elif args.json:
        print(render_report_json(report), end="")
    else:
        print(markdown)
    return 0


def _experiment_compare(args) -> int:
    from repro.harness.experiments import (
        compare_runs,
        get_run,
        latest_run_id,
        list_runs,
        open_index,
    )

    conn = open_index(args.index)
    try:
        current = args.current or latest_run_id(conn)
        baseline = args.baseline
        if baseline is None:
            table_name = get_run(conn, current)["table_name"]
            prior = [
                r["run_id"]
                for r in list_runs(conn, table_name)
                if r["run_id"] != current
            ]
            if not prior:
                print(
                    f"error: no baseline run for table {table_name!r} in the "
                    "index (need at least two runs, or pass --baseline)",
                    file=sys.stderr,
                )
                return 2
            baseline = prior[-1]
        result = compare_runs(
            conn,
            baseline,
            current,
            max_regression_pct=args.max_regression_pct,
            gate_timing=args.gate_timing,
        )
    finally:
        conn.close()
    print(result.render())
    return 0 if result.ok else 1


def _render_findings(findings, fmt: str) -> str:
    from repro.analysis.findings import render_json, render_sarif, render_text

    render = {"json": render_json, "sarif": render_sarif, "text": render_text}[fmt]
    return render(findings)


def _changed_files(rev: str) -> list[Path]:
    """``.py`` files changed since ``rev`` (diff vs worktree + untracked).

    Raises ``RuntimeError`` when git is unavailable or ``rev`` does not
    resolve, so the CLI can report it instead of silently linting nothing.
    """
    import subprocess

    def _git(*argv: str, cwd: str | None = None) -> str:
        proc = subprocess.run(
            ["git", *argv], cwd=cwd, capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(argv)} failed: {proc.stderr.strip()}"
            )
        return proc.stdout

    top = _git("rev-parse", "--show-toplevel").strip()
    names = _git("diff", "--name-only", "-z", rev, "--", cwd=top)
    names += _git("ls-files", "--others", "--exclude-standard", "-z", cwd=top)
    out = []
    for name in sorted({n for n in names.split("\0") if n}):
        path = Path(top) / name
        if path.suffix == ".py" and path.exists():
            out.append(path)
    return out


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths, lockcheck_paths
    from repro.analysis.findings import Report

    select = args.select.split(",") if args.select else None
    paths = args.paths or None
    changed: list[Path] | None = None
    if args.changed is not None:
        try:
            changed = _changed_files(args.changed)
        except RuntimeError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2
    if args.dataflow or changed is not None:
        from repro.analysis import analyze_paths

        findings = analyze_paths(
            paths,
            select=select,
            dataflow=args.dataflow,
            run_lockcheck=not args.no_lockcheck,
            changed=changed,
        )
    else:
        findings = lint_paths(paths, select=select)
        if not args.no_lockcheck and select is None:
            findings = findings + lockcheck_paths(paths)
    text = _render_findings(findings, args.fmt)
    report = Report(findings)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"[{len(findings)} finding(s) -> {args.output}]")
    else:
        print(text)
    return report.exit_code


def _cmd_verify_stream(args) -> int:
    from repro.analysis import verify_file
    from repro.analysis.findings import Report

    fmt = None if args.stream_format == "auto" else args.stream_format
    findings = []
    for path in args.inputs:
        # Distinct exit codes so callers can tell a *malformed* stream
        # (ValueError: bad arguments/format for this verifier, rc 2) from
        # an *unreadable* one (OSError: missing file, permissions, rc 3);
        # rc 1 stays "verified, findings present".
        try:
            findings.extend(verify_file(path, fmt=fmt, n_elements=args.n_elements))
        except ValueError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 3
    print(_render_findings(findings, args.fmt))
    return Report(findings).exit_code


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "info": _cmd_info,
    "stats": _cmd_stats,
    "op": _cmd_op,
    "chain": _cmd_chain,
    "bench": _cmd_bench,
    "bench-bitpack": _cmd_bench_bitpack,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "bench-serve": _cmd_bench_serve,
    "experiment": _cmd_experiment,
    "lint": _cmd_lint,
    "verify-stream": _cmd_verify_stream,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
