"""Codec registry used by the benchmark harness.

Maps the names the paper's tables use to constructed codec instances.  The
SZOps core is adapted to the same ``compress``/``decompress`` protocol via
its own class (it already conforms), so harness code can iterate
``all_codecs()`` uniformly for Table IV / Table VII.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import BaseCompressor
from repro.baselines.sz2 import SZ2
from repro.baselines.sz3 import SZ3
from repro.baselines.szp import SZp
from repro.baselines.szx import SZx
from repro.baselines.zfp import ZFP

__all__ = ["BASELINE_FACTORIES", "make_codec", "baseline_names"]

BASELINE_FACTORIES: dict[str, Callable[[], BaseCompressor]] = {
    "SZp": SZp,
    "SZ2": SZ2,
    "SZ3": SZ3,
    "SZx": SZx,
    "ZFP": ZFP,
}


def baseline_names() -> list[str]:
    """The baseline codec names in the paper's table order."""
    return ["SZp", "SZ2", "SZ3", "SZx", "ZFP"]


def make_codec(name: str, **kwargs) -> BaseCompressor:
    """Construct a baseline codec by table name."""
    try:
        factory = BASELINE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; valid: {', '.join(BASELINE_FACTORIES)}"
        ) from None
    return factory(**kwargs)
