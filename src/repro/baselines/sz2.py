"""SZ2-class prediction-based compressor.

Models the SZ2 pipeline the paper benchmarks: Lorenzo prediction,
error-controlled quantization with a bounded quantization-code range plus an
outlier escape, canonical Huffman over the codes, and a general-purpose
lossless pass (Zstd in the reference; DEFLATE here — see DESIGN.md's
substitution table).

Faithfulness notes
------------------
* The reference SZ2 predicts in *reconstructed* value space and mixes the
  Lorenzo predictor with blockwise linear regression.  We predict in the
  quantized-integer domain, where the Lorenzo chain is exact, so no error
  accumulation control is needed; the entropy behaviour of the resulting
  code stream (strongly peaked at zero) is the same, which is all the
  evaluation's ratio/throughput orderings depend on.
* The quantization-code *capacity* (default 65536 two-sided bins) and the
  escape-to-literal mechanism mirror SZ2's ``quantization_intervals``
  handling: codes outside the capacity are emitted as an escape symbol and
  the raw value stored in a literal plane.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseCompressor
from repro.bitstream import ByteReader, ByteWriter
from repro.core.quantize import dequantize, quantize
from repro.encoding import (
    HuffmanCodebook,
    deflate,
    huffman_decode,
    huffman_encode,
    inflate,
)

__all__ = ["SZ2", "zigzag_encode", "zigzag_decode"]


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2 ... -> 0,1,2,3,4 ..."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    u = np.asarray(values, dtype=np.uint64)
    return ((u >> np.uint64(1)).astype(np.int64)) ^ -(u & np.uint64(1)).astype(
        np.int64
    )


class SZ2(BaseCompressor):
    """Lorenzo + error-controlled quantization + Huffman + DEFLATE."""

    name = "SZ2"

    def __init__(self, capacity: int = 65536, deflate_level: int = 6) -> None:
        if capacity < 4 or capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two >= 4")
        self.capacity = capacity
        self.deflate_level = deflate_level

    # The escape symbol is the last code of the alphabet.
    @property
    def _escape(self) -> int:
        return self.capacity - 1

    def _predict_codes(self, q: np.ndarray) -> np.ndarray:
        """Global 1-D Lorenzo in the quantized domain; element 0 keeps q[0]."""
        d = np.empty_like(q)
        d[0] = q[0]
        np.subtract(q[1:], q[:-1], out=d[1:])
        return d

    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        q = quantize(flat, eps)
        deltas = self._predict_codes(q)
        z = zigzag_encode(deltas)
        in_range = z < self._escape
        symbols = np.where(in_range, z, self._escape).astype(np.int64)
        literals = deltas[~in_range]

        freqs = np.bincount(symbols, minlength=self.capacity)
        book = HuffmanCodebook.from_frequencies(freqs)
        hpayload, hbits = huffman_encode(symbols, book)

        w = ByteWriter()
        w.write_f64(eps)
        w.write_u64(symbols.size)
        w.write_u64(hbits)
        w.write_u32(self.capacity)
        table = deflate(book.serialized_lengths(), self.deflate_level)
        w.write_u64(len(table))
        w.write_bytes(table)
        body = deflate(hpayload, self.deflate_level)
        w.write_u64(len(body))
        w.write_bytes(body)
        lit = deflate(literals.astype(np.int64).tobytes(), self.deflate_level)
        w.write_u64(len(lit))
        w.write_bytes(lit)
        return w.getvalue()

    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        r = ByteReader(payload)
        stream_eps = r.read_f64()
        n_symbols = r.read_u64()
        _hbits = r.read_u64()
        capacity = r.read_u32()
        table = inflate(r.read_bytes(r.read_u64()))
        book = HuffmanCodebook.from_lengths(np.frombuffer(table, dtype=np.uint8))
        hpayload = inflate(r.read_bytes(r.read_u64()))
        literals = np.frombuffer(inflate(r.read_bytes(r.read_u64())), dtype=np.int64)
        r.expect_end()

        symbols = huffman_decode(hpayload, n_symbols, book)
        escape = capacity - 1
        deltas = zigzag_decode(symbols.astype(np.uint64))
        esc_mask = symbols == escape
        if int(esc_mask.sum()) != literals.size:
            raise ValueError("literal plane does not match escape count")
        deltas[esc_mask] = literals
        q = np.cumsum(deltas)
        return dequantize(q, stream_eps, np.float64)
