"""SZ3-class interpolation-based compressor.

Models the SZ3 pipeline (dynamic spline interpolation + error-controlled
quantization + Huffman + Zstd): a multi-level interpolation predictor walks
the array from the coarsest stride down to stride 1, predicting each new
point from its already-known neighbours — linear (2-point) or cubic
(4-point) splines — and entropy-codes the residuals.

As with the SZ2-class baseline, prediction happens in the quantized-integer
domain (exact arithmetic, no error-accumulation control needed); the
residual stream is zigzag-mapped, Huffman-coded with an escape for rare
large residuals, and DEFLATE'd.  Interpolation along the flattened
(fastest-varying) dimension captures the bulk of the smoothness the real
SZ3 exploits; DESIGN.md records this as the simplification.

SZ3's better predictor produces a more concentrated residual distribution
than SZ2's Lorenzo, hence higher ratios at lower speed — the ordering
Table IV / Table VII report.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseCompressor
from repro.baselines.sz2 import zigzag_decode, zigzag_encode
from repro.bitstream import ByteReader, ByteWriter
from repro.core.quantize import dequantize, quantize
from repro.encoding import (
    HuffmanCodebook,
    deflate,
    huffman_decode,
    huffman_encode,
    inflate,
)

__all__ = ["SZ3"]


def _level_strides(n: int) -> list[int]:
    """Strides from coarsest to finest: m/2, m/4, ..., 1 for m = 2^ceil(lg n)."""
    if n <= 1:
        return []
    m = 1 << (n - 1).bit_length()
    strides = []
    s = m // 2
    while s >= 1:
        strides.append(s)
        s //= 2
    return strides


def _level_indices(n: int, s: int) -> np.ndarray:
    """Indices predicted at stride ``s``: odd multiples of ``s`` below ``n``."""
    return np.arange(s, n, 2 * s, dtype=np.int64)


def _interp_predict(q: np.ndarray, idx: np.ndarray, s: int, cubic: bool) -> np.ndarray:
    """Predict ``q[idx]`` from known neighbours at +-s (and +-3s for cubic).

    ``q`` holds valid values at all multiples of ``2s``; edge points fall
    back to lower-order formulas.  Integer arithmetic with round-half-away
    handled via floor((num + den/2)/den) on the doubled numerator.
    """
    n = q.size
    left = q[idx - s]
    has_right = idx + s < n
    right = np.where(has_right, q[np.minimum(idx + s, n - 1)], left)
    linear = (left + right + 1) >> 1
    if not cubic:
        return np.where(has_right, linear, left)
    has_l2 = idx - 3 * s >= 0
    has_r2 = idx + 3 * s < n
    full = has_right & has_l2 & has_r2
    if not full.any():
        return np.where(has_right, linear, left)
    l2 = q[np.maximum(idx - 3 * s, 0)]
    r2 = q[np.minimum(idx + 3 * s, n - 1)]
    # 4-point cubic spline midpoint: (-l2 + 9*left + 9*right - r2) / 16
    num = -l2 + 9 * left + 9 * right - r2
    cubic_pred = (num + 8) >> 4
    pred = np.where(full, cubic_pred, np.where(has_right, linear, left))
    return pred


class SZ3(BaseCompressor):
    """Multi-level interpolation + Huffman + DEFLATE."""

    name = "SZ3"

    def __init__(
        self,
        capacity: int = 65536,
        deflate_level: int = 6,
        interpolation: str = "cubic",
    ) -> None:
        if capacity < 4 or capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two >= 4")
        if interpolation not in ("linear", "cubic"):
            raise ValueError("interpolation must be 'linear' or 'cubic'")
        self.capacity = capacity
        self.deflate_level = deflate_level
        self.interpolation = interpolation

    @property
    def _escape(self) -> int:
        return self.capacity - 1

    def _residuals(self, q: np.ndarray) -> np.ndarray:
        """Residual stream in level order (coarse -> fine)."""
        n = q.size
        cubic = self.interpolation == "cubic"
        parts: list[np.ndarray] = []
        for s in _level_strides(n):
            idx = _level_indices(n, s)
            if idx.size == 0:
                continue
            pred = _interp_predict(q, idx, s, cubic)
            parts.append(q[idx] - pred)
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def _reconstruct(self, anchor: int, residuals: np.ndarray, n: int) -> np.ndarray:
        """Inverse of :meth:`_residuals`: rebuild q level by level."""
        q = np.zeros(n, dtype=np.int64)
        q[0] = anchor
        cubic = self.interpolation == "cubic"
        pos = 0
        for s in _level_strides(n):
            idx = _level_indices(n, s)
            if idx.size == 0:
                continue
            pred = _interp_predict(q, idx, s, cubic)
            q[idx] = pred + residuals[pos : pos + idx.size]
            pos += idx.size
        if pos != residuals.size:
            raise ValueError("residual stream length mismatch")
        return q

    # ------------------------------------------------------------------ payload

    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        q = quantize(flat, eps)
        residuals = self._residuals(q)
        z = zigzag_encode(residuals)
        in_range = z < self._escape
        symbols = np.where(in_range, z, self._escape).astype(np.int64)
        literals = residuals[~in_range]

        freqs = np.bincount(symbols, minlength=self.capacity)
        book = HuffmanCodebook.from_frequencies(freqs)
        hpayload, hbits = huffman_encode(symbols, book)

        w = ByteWriter()
        w.write_f64(eps)
        w.write_i64(int(q[0]))
        w.write_u64(symbols.size)
        w.write_u64(hbits)
        w.write_u32(self.capacity)
        w.write_u8(1 if self.interpolation == "cubic" else 0)
        table = deflate(book.serialized_lengths(), self.deflate_level)
        w.write_u64(len(table))
        w.write_bytes(table)
        body = deflate(hpayload, self.deflate_level)
        w.write_u64(len(body))
        w.write_bytes(body)
        lit = deflate(literals.astype(np.int64).tobytes(), self.deflate_level)
        w.write_u64(len(lit))
        w.write_bytes(lit)
        return w.getvalue()

    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        r = ByteReader(payload)
        stream_eps = r.read_f64()
        anchor = r.read_i64()
        n_symbols = r.read_u64()
        _hbits = r.read_u64()
        capacity = r.read_u32()
        cubic_flag = r.read_u8()
        table = inflate(r.read_bytes(r.read_u64()))
        book = HuffmanCodebook.from_lengths(np.frombuffer(table, dtype=np.uint8))
        hpayload = inflate(r.read_bytes(r.read_u64()))
        literals = np.frombuffer(inflate(r.read_bytes(r.read_u64())), dtype=np.int64)
        r.expect_end()

        symbols = huffman_decode(hpayload, n_symbols, book)
        residuals = zigzag_decode(symbols.astype(np.uint64))
        esc_mask = symbols == capacity - 1
        if int(esc_mask.sum()) != literals.size:
            raise ValueError("literal plane does not match escape count")
        residuals[esc_mask] = literals

        saved_interp = self.interpolation
        try:
            self.interpolation = "cubic" if cubic_flag else "linear"
            q = self._reconstruct(anchor, residuals, n_elements)
        finally:
            self.interpolation = saved_interp
        return dequantize(q, stream_eps, np.float64)
