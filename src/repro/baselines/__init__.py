"""Comparison compressors: SZp, SZ2-, SZ3-, SZx- and ZFP-class codecs."""

from repro.baselines.base import BaseCompressor, GenericCompressed
from repro.baselines.registry import BASELINE_FACTORIES, baseline_names, make_codec
from repro.baselines.sz2 import SZ2
from repro.baselines.sz3 import SZ3
from repro.baselines.szp import SZp
from repro.baselines.szx import SZx
from repro.baselines.zfp import ZFP

__all__ = [
    "BaseCompressor",
    "GenericCompressed",
    "BASELINE_FACTORIES",
    "baseline_names",
    "make_codec",
    "SZp",
    "SZ2",
    "SZ3",
    "SZx",
    "ZFP",
]
