"""SZp: the multi-threaded CPU port of cuSZp the paper compares against.

SZp shares SZOps's pipeline math exactly — quantization, blockwise 1-D
Lorenzo, blockwise fixed-length encoding — but keeps the *stream format* of
the OpenMP SZp library ([42] in the paper), whose overheads Section VI-B3
identifies as the reason SZOps compresses better:

* a **per-block compressed-byte-length field** (u16) so blocks can be
  located without decoding their neighbours (needed by SZp's independent
  per-thread writers, redundant in SZOps where boundaries derive from the
  width plane);
* a full **sign bitmap for every block**, constant blocks included;
* per-block payload **padded to 32-bit words** (word-granular writers);
* a fixed-width **int32 outlier** per block (no narrowing).

SZp supports only the traditional workflow: any operation requires full
decompression, the NumPy op, and full recompression — that path is driven
by :mod:`repro.workflow.traditional`.

The format toggles are exposed as constructor flags so the ablation
benchmark (``benchmarks/test_ablation_format_overhead.py``) can switch each
overhead off individually and show how the SZOps format recovers the ratio.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseCompressor
from repro.bitstream import ByteReader, ByteWriter
from repro.core.blocks import BlockLayout
from repro.core.encode import (
    apply_signs,
    block_widths,
    decode_magnitudes,
    decode_signs,
    encode_magnitudes,
    encode_signs,
)
from repro.core.errors import FormatError
from repro.core.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.core.quantize import dequantize, quantize

__all__ = ["SZp"]


class SZp(BaseCompressor):
    """SZp-format error-bounded compressor (traditional workflow only).

    Parameters
    ----------
    block_size : elements per block, default 64 (the paper's geometry).
    store_block_lengths : keep the per-block u16 byte-length plane.
    full_sign_bitmap : store sign bits for constant blocks too.
    word_align_payload : pad each block's payload to 32-bit words.

    The three flags default to True (faithful SZp format); turning them all
    off makes the stream SZOps-shaped, which is exactly the ablation of
    Section VI-B3.
    """

    name = "SZp"

    def __init__(
        self,
        block_size: int = 64,
        store_block_lengths: bool = True,
        full_sign_bitmap: bool = True,
        word_align_payload: bool = True,
    ) -> None:
        if block_size <= 0 or block_size % 8:
            raise ValueError("block_size must be a positive multiple of 8")
        self.block_size = block_size
        self.store_block_lengths = store_block_lengths
        self.full_sign_bitmap = full_sign_bitmap
        self.word_align_payload = word_align_payload

    @property
    def _align_bits(self) -> int:
        return 32 if self.word_align_payload else 1

    # ------------------------------------------------------------------ compress

    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        layout = BlockLayout(flat.size, self.block_size)
        lens = layout.lengths()
        q = quantize(flat, eps)
        deltas, outliers = lorenzo_forward(q, layout)
        signs = (deltas < 0).view(np.uint8)
        mags = np.abs(deltas).astype(np.uint64)
        widths = block_widths(mags, lens)

        if self.full_sign_bitmap:
            sign_bytes = encode_signs(signs)
        else:
            stored_elems = np.repeat(widths > 0, lens)
            sign_bytes = encode_signs(signs[stored_elems])

        if self.full_sign_bitmap:
            payload_widths, payload_lens, payload_mags = widths, lens, mags
        else:
            stored = widths > 0
            payload_widths = widths[stored]
            payload_lens = lens[stored]
            payload_mags = mags[np.repeat(stored, lens)]
        payload_bytes, _ = encode_magnitudes(
            payload_mags, payload_widths, payload_lens, align_bits=self._align_bits
        )

        w = ByteWriter()
        w.write_u32(self.block_size)
        w.write_u8(
            (self.store_block_lengths << 0)
            | (self.full_sign_bitmap << 1)
            | (self.word_align_payload << 2)
        )
        w.write_f64(eps)
        w.write_bytes(widths)
        if self.store_block_lengths:
            block_bits = widths.astype(np.int64) * lens
            if self.word_align_payload:
                block_bits = -(-block_bits // 32) * 32
            byte_lens = (-(-block_bits // 8)).astype(np.uint16)
            w.write_bytes(byte_lens.view(np.uint8))
        info = np.iinfo(np.int32)
        if outliers.size and (outliers.min() < info.min or outliers.max() > info.max):
            raise FormatError(
                "quantized first values exceed SZp's fixed int32 outlier "
                "field; use a larger error bound"
            )
        w.write_bytes(outliers.astype(np.int32).view(np.uint8))
        w.write_u64(sign_bytes.size)
        w.write_bytes(sign_bytes)
        w.write_u64(payload_bytes.size)
        w.write_bytes(payload_bytes)
        return w.getvalue()

    # ------------------------------------------------------------------ decompress

    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        r = ByteReader(payload)
        block_size = r.read_u32()
        flags = r.read_u8()
        store_lengths = bool(flags & 1)
        full_signs = bool(flags & 2)
        word_align = bool(flags & 4)
        stream_eps = r.read_f64()
        layout = BlockLayout(n_elements, block_size)
        lens = layout.lengths()
        widths = np.frombuffer(r.read_bytes(layout.n_blocks), dtype=np.uint8).copy()
        if store_lengths:
            r.read_bytes(layout.n_blocks * 2)  # length plane: redundant on read
        outliers = np.frombuffer(
            r.read_bytes(layout.n_blocks * 4), dtype=np.int32
        ).astype(np.int64)
        n_sign = r.read_u64()
        sign_bytes = np.frombuffer(r.read_bytes(n_sign), dtype=np.uint8)
        n_payload = r.read_u64()
        payload_bytes = np.frombuffer(r.read_bytes(n_payload), dtype=np.uint8)
        r.expect_end()

        stored = widths > 0
        if full_signs:
            signs = decode_signs(sign_bytes, n_elements)
            mags = decode_magnitudes(
                payload_bytes, widths, lens, align_bits=32 if word_align else 1
            )
            deltas = apply_signs(signs, mags)
        else:
            stored_lens = lens[stored]
            n_stored = int(stored_lens.sum())
            signs = decode_signs(sign_bytes, n_stored)
            mags = decode_magnitudes(
                payload_bytes,
                widths[stored],
                stored_lens,
                align_bits=32 if word_align else 1,
            )
            deltas = np.zeros(n_elements, dtype=np.int64)
            deltas[np.repeat(stored, lens)] = apply_signs(signs, mags)
        q = lorenzo_inverse(np.asarray(deltas, dtype=np.int64), outliers, layout)
        if abs(stream_eps - eps) > 1e-300 and not np.isclose(stream_eps, eps):
            raise FormatError("stream error bound disagrees with blob metadata")
        return dequantize(q, stream_eps, np.float64)
