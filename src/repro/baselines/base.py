"""Shared interface for the comparison compressors.

Every baseline (SZp, SZ2-, SZ3-, SZx-, ZFP-class) implements
:class:`BaseCompressor`: ``compress`` produces a fully *serialized*
:class:`GenericCompressed` blob — the compression ratio is measured on real
bytes, not on an in-memory estimate — and ``decompress`` parses those bytes
back.  The SZOps core keeps its richer structured container (operations
need the section planes); its ``to_bytes`` output plays the same role.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.config import resolve_error_bound

__all__ = ["GenericCompressed", "BaseCompressor"]


@dataclass
class GenericCompressed:
    """A serialized compressed stream from one of the baseline codecs."""

    codec_name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    eps: float
    payload: bytes

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def compressed_nbytes(self) -> int:
        return len(self.payload)

    @property
    def original_nbytes(self) -> int:
        return self.n_elements * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / max(self.compressed_nbytes, 1)


class BaseCompressor(abc.ABC):
    """Abstract error-bounded lossy compressor.

    Subclasses set :attr:`name` and implement the byte-level
    ``_compress_payload`` / ``_decompress_payload`` pair; the template
    methods here handle dtype checks, error-bound resolution, and blob
    packaging so all baselines behave uniformly in the harness.
    """

    #: Human-readable codec name as used in the paper's tables.
    name: str = "base"

    def compress(
        self, data: np.ndarray, error_bound: float, mode: str = "abs"
    ) -> GenericCompressed:
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            raise TypeError(f"{self.name} compresses floating-point data, got {arr.dtype}")
        flat = np.ascontiguousarray(arr, dtype=arr.dtype).reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot compress an empty array")
        value_range = float(flat.max() - flat.min()) if mode == "rel" else 0.0
        eps = resolve_error_bound(error_bound, mode, value_range)
        payload = self._compress_payload(flat, eps, tuple(arr.shape))
        return GenericCompressed(
            codec_name=self.name,
            shape=tuple(arr.shape),
            dtype=np.dtype(arr.dtype),
            eps=eps,
            payload=payload,
        )

    def decompress(self, blob: GenericCompressed) -> np.ndarray:
        if blob.codec_name != self.name:
            raise ValueError(
                f"blob was produced by {blob.codec_name!r}, not {self.name!r}"
            )
        flat = self._decompress_payload(
            blob.payload, blob.n_elements, blob.eps, blob.shape
        )
        return flat.astype(blob.dtype).reshape(blob.shape)

    @abc.abstractmethod
    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        """Compress a 1-D float array under absolute bound ``eps`` to bytes.

        ``shape`` is the original array shape — most codecs ignore it, but
        the ZFP-class transform codec blocks the array in its native
        dimensionality.
        """

    @abc.abstractmethod
    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Reconstruct the 1-D float64 array from the serialized payload."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
