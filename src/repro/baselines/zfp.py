"""ZFP-class transform-based compressor (fixed-accuracy mode).

Models ZFP (Lindstrom 2014): the array is cut into 4^d blocks, each block
is converted to a common-exponent integer representation
(*block-floating-point*), decorrelated with ZFP's separable integer lifting
transform, and the coefficients are entropy-packed MSB-first.

Deviations from the reference, recorded in DESIGN.md:

* The group-tested *embedded* coder is replaced by a vectorizable
  equivalent: coefficients are regrouped by sequency class (total
  coordinate order) across blocks and packed with per-(class, chunk)
  adaptive fixed-length widths — smooth data still yields near-zero
  high-frequency classes and therefore near-zero storage for them, which
  is the decorrelation win the embedded coder exploits.
* Fixed-accuracy mode is enforced through the per-block precision: each
  block is scaled to ``qb = (e_block - floor(log2(eps))) + GUARD`` integer
  bits, so the total of scaling, rounding and the lifting round-trip wiggle
  (zfp's integer lifting is reversible only to within ~1 unit) stays under
  the error bound.  GUARD covers those unit-level effects and is validated
  by the property tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaseCompressor
from repro.baselines.sz2 import zigzag_decode, zigzag_encode
from repro.bitstream import ByteReader, ByteWriter
from repro.core.encode import block_widths, decode_magnitudes, encode_magnitudes
from repro.transforms.zfp_lifting import fwd_transform_block, inv_transform_block

__all__ = ["ZFP"]

#: Initial extra integer bits beyond eps resolution per dimensionality,
#: absorbing scaling rounding (0.5 units) and the typical lifting
#: round-trip wiggle; blocks whose *measured* round-trip error still
#: exceeds the bound get their precision bumped (see ``_compress_payload``).
GUARD_BITS = {1: 2, 2: 4, 3: 5}

#: Hard cap on per-block integer precision (int64 headroom for the lifting).
MAX_QBITS = 45


def _block_shape_for(ndim: int) -> int:
    """Blocked dimensionality: ZFP blocks in up to 3 dimensions here."""
    return max(1, min(ndim, 3))


def _sequency_order(d: int) -> np.ndarray:
    """Coefficient positions of a 4^d block ordered by total sequency."""
    grids = np.meshgrid(*([np.arange(4)] * d), indexing="ij")
    total = sum(grids).reshape(-1)
    return np.argsort(total, kind="stable").astype(np.int64)


def _to_blocks(arr: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
    """Pad to multiples of 4 and return (n_blocks, 4, ..., 4) int view shape.

    Returns the float64 blocks array and the padded shape.
    """
    d = arr.ndim
    pad = [(0, (-s) % 4) for s in arr.shape]
    padded = np.pad(arr, pad, mode="edge") if any(p[1] for p in pad) else arr
    pshape = padded.shape
    # reshape (a,b,c) -> (a/4,4,b/4,4,c/4,4) -> (nblocks, 4,4,4)
    split = []
    for s in pshape:
        split.extend([s // 4, 4])
    view = padded.reshape(split)
    order = list(range(0, 2 * d, 2)) + list(range(1, 2 * d, 2))
    view = view.transpose(order)
    n_blocks = int(np.prod(pshape, dtype=np.int64) // 4**d)
    return view.reshape((n_blocks,) + (4,) * d).copy(), pshape


def _from_blocks(
    blocks: np.ndarray, pshape: tuple[int, ...], shape: tuple[int, ...]
) -> np.ndarray:
    """Inverse of :func:`_to_blocks`, cropping the edge padding."""
    d = len(pshape)
    grid = [s // 4 for s in pshape]
    view = blocks.reshape(grid + [4] * d)
    order = []
    for i in range(d):
        order.extend([i, d + i])
    padded = view.transpose(order).reshape(pshape)
    slices = tuple(slice(0, s) for s in shape)
    return padded[slices]


class ZFP(BaseCompressor):
    """Lifting transform + block-floating-point + adaptive coefficient packing."""

    name = "ZFP"

    def __init__(self, chunk_blocks: int = 1024) -> None:
        if chunk_blocks <= 0:
            raise ValueError("chunk_blocks must be positive")
        self.chunk_blocks = chunk_blocks

    # ------------------------------------------------------------------ helpers

    def _chunk_lens(self, n_blocks: int) -> np.ndarray:
        full, tail = divmod(n_blocks, self.chunk_blocks)
        lens = [self.chunk_blocks] * full + ([tail] if tail else [])
        return np.asarray(lens, dtype=np.int64)

    # ------------------------------------------------------------------ compress

    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        d = _block_shape_for(len(shape))
        if len(shape) > d:
            work_shape = (int(np.prod(shape[: len(shape) - d + 1])),) + tuple(
                shape[len(shape) - d + 1 :]
            )
        else:
            work_shape = tuple(shape)
        if not np.all(np.isfinite(flat)):
            # np.rint(nan).astype(int64) below is undefined garbage and the
            # stream would decode silently wrong; reject up front like the
            # core quantizer does.
            raise ValueError("ZFP baseline requires finite input data")
        arr = flat.astype(np.float64).reshape(work_shape)
        blocks, pshape = _to_blocks(arr)
        n_blocks = blocks.shape[0]
        bpe = 4**d  # elements per block

        flat_blocks = blocks.reshape(n_blocks, bpe)
        bmax = np.abs(flat_blocks).max(axis=1)
        # Block exponent: 2^(e-1) <= max < 2^e ; frexp exponent.
        e = np.zeros(n_blocks, dtype=np.int64)
        nz = bmax > 0
        e[nz] = np.frexp(bmax[nz])[1]
        t = math.frexp(eps)[1] - 1  # floor(log2(eps)) (conservative)
        qb = np.clip(e - t + GUARD_BITS[d], 0, None)

        # zfp's integer lifting is reversible only to within a few units
        # (data dependent, amplified across axes).  The round-trip error of
        # a block is deterministic given its integers, so we measure it at
        # encode time and bump the precision of any block whose scaling
        # rounding + lifting wiggle would exceed the bound.  This keeps the
        # common case at the cheap initial guard while making the error
        # bound a hard guarantee.
        coeffs = None
        for _attempt in range(10):
            if int(qb.max(initial=0)) > MAX_QBITS:
                raise ValueError(
                    "error bound too tight relative to the data range for "
                    "the ZFP-class integer transform (needs > 45 bits per "
                    "value)"
                )
            scale = np.ldexp(1.0, (qb - e).astype(np.int64))
            # Finite by the entry guard above; |value| <= 2^qb <= 2^45 by
            # the MAX_QBITS check, so the cast cannot truncate.  (The
            # finiteness fact does not survive the _to_blocks summary.)
            ints = np.rint(flat_blocks * scale[:, None]).astype(  # szops: ignore[SZL102]
                np.int64
            )
            tblocks = ints.reshape((n_blocks,) + (4,) * d).copy()
            fwd_transform_block(tblocks)
            coeffs = tblocks.reshape(n_blocks, bpe)
            recon = coeffs.reshape((n_blocks,) + (4,) * d).copy()
            inv_transform_block(recon)
            wiggle = np.abs(recon.reshape(n_blocks, bpe) - ints).max(axis=1)
            err = (wiggle + 0.5) * np.ldexp(1.0, (e - qb).astype(np.int64))
            bad = err > eps
            if not bad.any():
                break
            qb = np.where(bad, qb + 2, qb)
        else:
            raise RuntimeError("ZFP precision bump did not converge")

        order = _sequency_order(d)
        # Position-major layout: all blocks' coefficient 0, then 1, ...
        pos_major = coeffs[:, order].T.reshape(-1)
        z = zigzag_encode(pos_major)

        chunk_lens = self._chunk_lens(n_blocks)
        lens = np.tile(chunk_lens, bpe)
        widths = block_widths(z, lens)
        payload_bytes, _ = encode_magnitudes(z, widths, lens, align_bits=8)

        w = ByteWriter()
        w.write_u8(d)
        w.write_u32(self.chunk_blocks)
        w.write_f64(eps)
        w.write_u8(len(work_shape))
        for s in work_shape:
            w.write_u64(s)
        w.write_array((qb - e).astype(np.int16))  # per-block scale exponents
        w.write_bytes(widths)
        w.write_u64(payload_bytes.size)
        w.write_bytes(payload_bytes)
        return w.getvalue()

    # ------------------------------------------------------------------ decompress

    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        r = ByteReader(payload)
        d = r.read_u8()
        chunk_blocks = r.read_u32()
        _stream_eps = r.read_f64()
        ndim = r.read_u8()
        work_shape = tuple(r.read_u64() for _ in range(ndim))
        scale_exp = r.read_array().astype(np.int64)
        n_blocks = scale_exp.size
        bpe = 4**d

        full, tail = divmod(n_blocks, chunk_blocks)
        chunk_lens = np.asarray(
            [chunk_blocks] * full + ([tail] if tail else []), dtype=np.int64
        )
        lens = np.tile(chunk_lens, bpe)
        widths = np.frombuffer(r.read_bytes(lens.size), dtype=np.uint8).copy()
        payload_bytes = np.frombuffer(r.read_bytes(r.read_u64()), dtype=np.uint8)
        r.expect_end()

        z = decode_magnitudes(payload_bytes, widths, lens, align_bits=8)
        pos_major = zigzag_decode(z).reshape(bpe, n_blocks)
        order = _sequency_order(d)
        coeffs = np.empty((n_blocks, bpe), dtype=np.int64)
        coeffs[:, order] = pos_major.T

        tblocks = coeffs.reshape((n_blocks,) + (4,) * d)
        inv_transform_block(tblocks)
        ints = tblocks.reshape(n_blocks, bpe)
        vals = ints.astype(np.float64) * np.ldexp(1.0, -scale_exp)[:, None]

        pshape = tuple(-(-s // 4) * 4 for s in work_shape)
        arr = _from_blocks(
            vals.reshape((n_blocks,) + (4,) * d), pshape, work_shape
        )
        return arr.reshape(-1)[:n_elements]
