"""SZx-class ultra-fast error-bounded compressor.

Models SZx (Yu et al., HPDC'22, [9] in the paper): a blockwise scheme with
two modes per block —

* **constant block**: when the block's half-range ``(max - min)/2`` fits the
  error bound, only the block midpoint is stored;
* **non-constant block**: every element is stored as its IEEE-754 bit
  pattern with the low mantissa bits truncated; the per-block truncation
  depth ``k`` is the largest one whose worst-case truncation error
  ``2^(e_max - mant_bits + k)`` still meets the bound (``e_max`` the block's
  largest exponent).

Everything is vectorized (the truncated patterns are packed with the same
grouped fixed-length kernel as the SZOps core), which is why SZx is the
fastest baseline after SZp in Table IV — exactly the paper's ordering.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaseCompressor
from repro.bitstream import ByteReader, ByteWriter
from repro.core.blocks import BlockLayout, segment_max
from repro.core.encode import decode_magnitudes, encode_magnitudes

__all__ = ["SZx"]

_F32 = dict(uint=np.uint32, mant=23, ebias=127, width=32, emask=0xFF)
_F64 = dict(uint=np.uint64, mant=52, ebias=1023, width=64, emask=0x7FF)


class SZx(BaseCompressor):
    """Constant-block detection + mantissa truncation (SZx-style)."""

    name = "SZx"

    def __init__(self, block_size: int = 128, precision: str = "auto") -> None:
        if block_size <= 0 or block_size % 8:
            raise ValueError("block_size must be a positive multiple of 8")
        if precision not in ("auto", "float32", "float64"):
            raise ValueError("precision must be 'auto', 'float32' or 'float64'")
        self.block_size = block_size
        self.precision = precision

    def _resolve_precision(self, dtype) -> str:
        if self.precision != "auto":
            return self.precision
        # Match the input so the bit-pattern truncation is exact w.r.t. the
        # stored representation (a float64 -> float32 cast could otherwise
        # exceed a tight bound on large-magnitude data).
        return "float64" if np.dtype(dtype) == np.float64 else "float32"

    # ------------------------------------------------------------------ compress

    def _compress_payload(
        self, flat: np.ndarray, eps: float, shape: tuple[int, ...]
    ) -> bytes:
        precision = self._resolve_precision(flat.dtype)
        spec = _F32 if precision == "float32" else _F64
        ftype = np.float32 if precision == "float32" else np.float64
        vals = np.ascontiguousarray(flat, dtype=ftype)
        layout = BlockLayout(vals.size, self.block_size)
        lens = layout.lengths()

        # Per-block min/max (reshape trick + ragged tail).
        bmax = segment_max(vals, layout)
        bmin = -segment_max(-vals, layout)
        half_range = 0.5 * (bmax.astype(np.float64) - bmin.astype(np.float64))
        # The midpoint is *stored* in the stream's precision, so the
        # constant-block criterion must charge the float64 -> ftype rounding
        # of the midpoint against the bound: the reconstruction is ``mids``,
        # not the exact float64 midpoint.  (Narrowing before the criterion
        # check used to let a block at half_range == eps overshoot the bound
        # by an ulp of the narrowed midpoint.)
        mids64 = 0.5 * (bmax.astype(np.float64) + bmin.astype(np.float64))
        mids = mids64.astype(ftype)
        constant = half_range + np.abs(mids.astype(np.float64) - mids64) <= eps

        # Per-block truncation depth from the largest exponent.
        bits = vals.view(spec["uint"])
        exps = ((bits.astype(np.uint64) >> np.uint64(spec["mant"])) & np.uint64(spec["emask"])).astype(np.int64)
        e_max = segment_max(exps, layout)
        floor_log2_eps = math.frexp(eps)[1] - 1
        k = floor_log2_eps + spec["mant"] - (e_max - spec["ebias"])
        k = np.clip(k, 0, spec["mant"]).astype(np.int64)
        widths = (spec["width"] - k).astype(np.uint8)
        widths[constant] = 0

        stored = ~constant
        elem_mask = np.repeat(stored, lens)
        elem_shift = np.repeat(k[stored], lens[stored]).astype(np.uint64)
        mags = (bits[elem_mask].astype(np.uint64)) >> elem_shift
        payload_bytes, _ = encode_magnitudes(mags, widths[stored], lens[stored])

        w = ByteWriter()
        w.write_u32(self.block_size)
        w.write_u8(0 if precision == "float32" else 1)
        w.write_f64(eps)
        w.write_bytes(widths)
        w.write_array(mids[constant])
        w.write_u64(payload_bytes.size)
        w.write_bytes(payload_bytes)
        return w.getvalue()

    # ------------------------------------------------------------------ decompress

    def _decompress_payload(
        self, payload: bytes, n_elements: int, eps: float, shape: tuple[int, ...]
    ) -> np.ndarray:
        r = ByteReader(payload)
        block_size = r.read_u32()
        prec_flag = r.read_u8()
        spec = _F32 if prec_flag == 0 else _F64
        ftype = np.float32 if prec_flag == 0 else np.float64
        _stream_eps = r.read_f64()
        layout = BlockLayout(n_elements, block_size)
        lens = layout.lengths()
        widths = np.frombuffer(r.read_bytes(layout.n_blocks), dtype=np.uint8).copy()
        mids = r.read_array()
        payload_bytes = np.frombuffer(r.read_bytes(r.read_u64()), dtype=np.uint8)
        r.expect_end()

        constant = widths == 0
        stored = ~constant
        out = np.empty(n_elements, dtype=ftype)
        if constant.any():
            out[np.repeat(constant, lens)] = np.repeat(
                mids.astype(ftype), lens[constant]
            )
        if stored.any():
            stored_lens = lens[stored]
            mags = decode_magnitudes(payload_bytes, widths[stored], stored_lens)
            k = (spec["width"] - widths[stored].astype(np.int64)).astype(np.uint64)
            elem_shift = np.repeat(k, stored_lens)
            bits = (mags << elem_shift).astype(spec["uint"])
            out[np.repeat(stored, lens)] = bits.view(ftype)
        return out.astype(np.float64)
