"""SZOps reproduction: error-bounded lossy compression with scalar operations.

This package reproduces *"SZOps: Scalar Operations for Error-bounded Lossy
Compressor for Scientific Data"* (SC 2024): an SZp-derived compression
pipeline (quantization -> blockwise 1-D Lorenzo -> blockwise fixed-length
encoding) that supports negation, scalar addition/subtraction/multiplication
and mean/variance/standard-deviation directly on the compressed stream.

Quick start
-----------
>>> import numpy as np
>>> from repro import SZOps, ops
>>> codec = SZOps()
>>> data = np.linspace(0, 1, 10_000, dtype=np.float32) ** 2
>>> c = codec.compress(data, error_bound=1e-4)
>>> shifted = ops.scalar_add(c, 3.0)          # fully compressed space
>>> mu = ops.mean(c)                          # no full decompression
>>> abs(mu - codec.decompress(c).mean()) < 1e-6
True

Subpackages
-----------
``repro.core``       the SZOps pipeline, container format and operations
``repro.baselines``  SZp / SZ2 / SZ3 / SZx / ZFP-class comparison codecs
``repro.datasets``   synthetic SDRBench stand-ins + raw binary I/O
``repro.workflow``   traditional vs compressed-domain operation workflows
``repro.metrics``    ratio / error / throughput measurement
``repro.harness``    table- and figure-regeneration drivers
``repro.parallel``   thread executor and simulated-MPI collectives
``repro.runtime``    decoded-block cache, lazy op fusion, parallel reductions
``repro.service``    asyncio compressed-array store + op server with
                     micro-batching, backpressure and live telemetry
"""

from repro.core import (
    ConfigError,
    ErrorBoundViolation,
    FormatError,
    OperationError,
    SZOps,
    SZOpsCompressed,
    SZOpsConfig,
    SZOpsError,
)
from repro.core import ops
from repro import runtime
from repro.runtime import LazyStream, lazy

__version__ = "1.1.0"

__all__ = [
    "SZOps",
    "SZOpsCompressed",
    "SZOpsConfig",
    "ops",
    "runtime",
    "LazyStream",
    "lazy",
    "SZOpsError",
    "ConfigError",
    "FormatError",
    "OperationError",
    "ErrorBoundViolation",
    "__version__",
]
