"""Cluster benchmark: sharded serving under a nodes × replicas × clients grid.

``repro cluster bench`` (and the ``cluster`` experiment workload) runs
this.  A local cluster of :class:`~repro.cluster.node.ClusterNode`
servers is stood up — in-process by default, each on its own event-loop
thread, which exercises the full TCP/protocol path while keeping the
grid cheap — then a closed-loop fleet of router-holding client threads
issues a mixed PUT / distributed-REDUCE workload against sharded
arrays.

Identity is checked on every reduction reply: mean/minimum/maximum
must equal the single-node :class:`~repro.runtime.lazy.LazyStream`
result **bit for bit** (the PREDUCE algebra guarantees it), and
variance must agree to float64 rounding.  ``identity_failures`` in the
result payload counts violations; the CI cluster job asserts it is
zero over a 200-request smoke.

The result dict follows the ``BENCH_service.json`` shape: one metrics
block per cell, ready for the experiment engine's cross-run index.
"""

from __future__ import annotations

import statistics
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from repro.cluster.hashring import NodeInfo, ShardMap
from repro.cluster.node import ClusterNode, NodeConfig
from repro.cluster.router import ClusterClient
from repro.core.compressor import SZOps
from repro.runtime.lazy import LazyStream
from repro.service.server import ThreadedServer

__all__ = ["local_cluster", "run_cluster_bench"]

_BLOCK_SIZE = 64
#: Reductions the mixed workload cycles through, with their tolerance:
#: 0.0 means the reply must be bit-identical to the single-node value.
_CHECKED_REDUCTIONS: tuple[tuple[str, float], ...] = (
    ("mean", 0.0),
    ("minimum", 0.0),
    ("maximum", 0.0),
    ("variance", 1e-9),
)


@contextmanager
def local_cluster(
    n_nodes: int,
    replicas: int = 2,
    vnodes: int = 32,
    install: bool = True,
    **node_kwargs: Any,
) -> Iterator[tuple[ClusterClient, list[ThreadedServer]]]:
    """Boot ``n_nodes`` in-process cluster nodes plus a connected router.

    Each node is a real :class:`ClusterNode` behind a real TCP socket on
    its own event-loop thread; only process isolation is skipped (the
    subprocess path is exercised by ``repro cluster serve`` and the CI
    fault drill).  Yields ``(router, handles)``; tears everything down
    on exit.
    """
    handles: list[ThreadedServer] = []
    router: ClusterClient | None = None
    try:
        for i in range(n_nodes):
            node = ClusterNode(NodeConfig(node_id=f"node-{i}", **node_kwargs))
            handles.append(ThreadedServer(server=node).start())
        shard_map = ShardMap(
            tuple(
                NodeInfo(f"node-{i}", h.host, h.port)
                for i, h in enumerate(handles)
            ),
            replicas=replicas,
            vnodes=vnodes,
        )
        router = ClusterClient(shard_map)
        if install:
            router.install_map()
        yield router, handles
    finally:
        if router is not None:
            router.close()
        for handle in handles:
            handle.stop()


def _quantile(samples: list[float], frac: float) -> float:
    if not samples:
        return 0.0
    if len(samples) == 1:
        return samples[0]
    rank = int(frac * 100) - 1
    return float(statistics.quantiles(samples, n=100, method="inclusive")[rank])


def run_cluster_bench(
    n_nodes: int = 3,
    replicas: int = 2,
    n_clients: int = 4,
    requests_per_client: int = 25,
    n_arrays: int = 4,
    chunks: int = 6,
    n_elements: int = 30_000,
    eps: float = 1e-3,
    seed: int = 20240624,
) -> dict[str, Any]:
    """One cluster bench cell: mixed PUT + distributed-REDUCE load.

    Returns a JSON-able metrics payload (throughput, latency quantiles,
    failover/epoch counters, and the identity-failure count).
    """
    rng = np.random.default_rng(seed)
    codec = SZOps(block_size=_BLOCK_SIZE)
    arrays: list[tuple[str, Any]] = []
    expected: dict[tuple[str, str], float] = {}
    for i in range(n_arrays):
        data = np.cumsum(rng.normal(scale=5e-3, size=n_elements)).astype(np.float32)  # szops: ignore[SZL002] -- synthetic float32 input field; the cast is the I/O boundary
        c = codec.compress(data, eps)
        name = f"bench-{i}"
        arrays.append((name, c))
        for reduction, _tol in _CHECKED_REDUCTIONS:
            expected[(name, reduction)] = float(getattr(LazyStream(c), reduction)())

    with local_cluster(n_nodes, replicas=replicas) as (router, _handles):
        for name, c in arrays:
            router.put(name, c, chunks=chunks)

        latencies: list[list[float]] = [[] for _ in range(n_clients)]
        errors: list[str] = []
        identity_failures = [0]
        lock = threading.Lock()
        barrier = threading.Barrier(n_clients + 1)

        def worker(idx: int) -> None:
            try:
                barrier.wait()
                local_rng = np.random.default_rng(seed + idx + 1)
                for r in range(requests_per_client):
                    name, _c = arrays[(idx + r) % len(arrays)]
                    reduction, tol = _CHECKED_REDUCTIONS[r % len(_CHECKED_REDUCTIONS)]
                    if r % 10 == 9:
                        # Occasional write keeps PUT in the mix.
                        extra = local_rng.normal(scale=5e-3, size=2048).cumsum().astype(np.float32)  # szops: ignore[SZL002] -- synthetic float32 input field; the cast is the I/O boundary
                        t0 = time.perf_counter()
                        router.put(f"w-{idx}-{r}", codec.compress(extra, eps))
                        latencies[idx].append(time.perf_counter() - t0)
                        continue
                    t0 = time.perf_counter()
                    value = router.reduce(name, reduction)
                    latencies[idx].append(time.perf_counter() - t0)
                    want = expected[(name, reduction)]
                    ok = (
                        value == want
                        if tol == 0.0
                        else abs(value - want) <= tol * max(abs(want), 1.0)
                    )
                    if not ok:
                        with lock:
                            identity_failures[0] += 1
            except Exception as exc:  # collected, not raised: the bench reports
                with lock:
                    errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
                if barrier.n_waiting:
                    barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"cluster-client-{i}")
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t_start = time.perf_counter()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t_start
        telemetry = router.telemetry.snapshot()

    flat = sorted(s for per_client in latencies for s in per_client)
    total = n_clients * requests_per_client
    return {
        "nodes": n_nodes,
        "replicas": replicas,
        "clients": n_clients,
        "chunks": chunks,
        "arrays": n_arrays,
        "n_elements": n_elements,
        "total_requests": total,
        "completed_requests": len(flat),
        "errors": errors,
        "identity_failures": identity_failures[0],
        "wall_seconds": wall_s,
        "throughput_rps": len(flat) / wall_s if wall_s > 0 else 0.0,
        "latency_p50_ms": 1e3 * _quantile(flat, 0.50),
        "latency_p99_ms": 1e3 * _quantile(flat, 0.99),
        "latency_mean_ms": 1e3 * (sum(flat) / len(flat)) if flat else 0.0,
        "router_counters": telemetry["counters"],
        "router_keyed_counters": telemetry["keyed_counters"],
        "ok": not errors and identity_failures[0] == 0,
    }
