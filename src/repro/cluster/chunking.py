"""Decode-free splitting of one container into block-aligned chunks.

SZx-style per-block state makes the SZOps container *naturally
partitionable*: widths and outliers are per-block arrays, and the sign
and payload sections are bit-packed per stored block in block order.
When ``block_size % 8 == 0`` every non-final block boundary also falls
on a *byte* boundary in both packed sections — each full stored block
contributes ``block_size`` sign bits and ``width * block_size`` payload
bits, both multiples of 8 — so a block-aligned chunk of the stream is
literally a slice of the four section arrays.  No decode, no re-encode,
no loss: each chunk is a complete, independently valid container
representing exactly its element range, and concatenating the slices
back reproduces the original planes byte for byte.

This is what makes distributed PREDUCE real rather than a proxy: the
router ships *compressed* chunk containers to their owning shards at
placement time, and reductions later run against genuinely partial
streams on each node.

The chunk-key naming scheme (``name/#00042``) keeps chunk keys inside
the ordinary store namespace — a chunk is just an array whose name a
router can parse back into ``(base, index)``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.format import SZOpsCompressed
from repro.parallel.partition import block_chunks

__all__ = [
    "chunk_key",
    "parse_chunk_key",
    "split_container",
    "merge_containers",
]

#: Separator between an array name and its chunk index.  ``/#`` cannot
#: appear in a chunk index and is unusual enough in array names that the
#: router simply forbids it there.
_CHUNK_SEP = "/#"


def chunk_key(name: str, index: int) -> str:
    """The store key of chunk ``index`` of array ``name``."""
    if _CHUNK_SEP in name:
        raise ValueError(f"array name {name!r} may not contain {_CHUNK_SEP!r}")
    if index < 0:
        raise ValueError(f"chunk index must be >= 0, got {index}")
    return f"{name}{_CHUNK_SEP}{index:05d}"


def parse_chunk_key(key: str) -> tuple[str, int] | None:
    """``(base_name, index)`` when ``key`` names a chunk, else ``None``."""
    base, sep, tail = key.rpartition(_CHUNK_SEP)
    if not sep or not tail.isdigit():
        return None
    return base, int(tail)


def split_container(c: SZOpsCompressed, n_parts: int) -> list[SZOpsCompressed]:
    """Split a container into up to ``n_parts`` block-aligned sub-containers.

    Pure byte slicing of the four section planes (see the module
    docstring); requires ``block_size % 8 == 0`` so that chunk
    boundaries are byte boundaries in the packed sections.  Chunk
    shapes are 1-D element ranges — :func:`merge_containers` restores
    the original shape.  Raises :class:`ValueError` for incompatible
    block sizes rather than silently decoding.
    """
    if c.block_size % 8 != 0:
        raise ValueError(
            f"decode-free splitting needs block_size % 8 == 0, "
            f"got {c.block_size}"
        )
    chunks = block_chunks(c.n_elements, c.block_size, n_parts)
    if len(chunks) <= 1:
        return [replace(c, shape=(c.n_elements,))]
    lens = c.layout.lengths().astype(np.int64)
    stored = ~c.constant_mask
    sign_bits = np.where(stored, lens, 0)
    payload_bits = np.where(stored, c.widths.astype(np.int64) * lens, 0)
    sign_off = np.concatenate(([0], np.cumsum(sign_bits)))
    payload_off = np.concatenate(([0], np.cumsum(payload_bits)))
    parts: list[SZOpsCompressed] = []
    for chunk in chunks:
        lo, hi = chunk.block_lo, chunk.block_hi
        # Non-final chunk starts are whole full blocks deep: multiples of 8.
        assert sign_off[lo] % 8 == 0 and payload_off[lo] % 8 == 0
        parts.append(
            SZOpsCompressed(
                shape=(chunk.n_elements,),
                dtype=c.dtype,
                eps=c.eps,
                block_size=c.block_size,
                widths=c.widths[lo:hi],
                outliers=c.outliers[lo:hi],
                sign_bytes=c.sign_bytes[
                    int(sign_off[lo]) // 8 : int(sign_off[hi] + 7) // 8
                ],
                payload_bytes=c.payload_bytes[
                    int(payload_off[lo]) // 8 : int(payload_off[hi] + 7) // 8
                ],
            )
        )
    return parts


def merge_containers(
    parts: list[SZOpsCompressed], shape: tuple[int, ...] | None = None
) -> SZOpsCompressed:
    """Reassemble :func:`split_container` output into one container.

    The inverse byte operation: because every non-final part ends on a
    byte boundary in both packed sections, concatenating the plane
    slices reproduces the original planes exactly — the merged
    container's ``to_bytes()`` equals the original's when ``shape``
    matches.  Parts must be in chunk order and mutually compatible
    (same eps / block size / dtype, all non-final parts block-aligned).
    """
    if not parts:
        raise ValueError("cannot merge zero containers")
    head = parts[0]
    n_total = 0
    for i, part in enumerate(parts):
        if part.eps != head.eps or part.block_size != head.block_size:
            raise ValueError(f"chunk {i} disagrees on eps/block_size")
        if np.dtype(part.dtype) != np.dtype(head.dtype):
            raise ValueError(f"chunk {i} disagrees on dtype")
        if i < len(parts) - 1 and part.n_elements % part.block_size != 0:
            raise ValueError(f"non-final chunk {i} is not block-aligned")
        n_total += part.n_elements
    if shape is None:
        shape = (n_total,)
    elif int(np.prod(shape, dtype=np.int64)) != n_total:
        raise ValueError(
            f"shape {shape} has {int(np.prod(shape, dtype=np.int64))} elements, "
            f"chunks carry {n_total}"
        )
    return SZOpsCompressed(
        shape=tuple(shape),
        dtype=head.dtype,
        eps=head.eps,
        block_size=head.block_size,
        widths=np.concatenate([p.widths for p in parts]),
        outliers=np.concatenate([p.outliers for p in parts]),
        sign_bytes=np.concatenate([p.sign_bytes for p in parts]),
        payload_bytes=np.concatenate([p.payload_bytes for p in parts]),
    )
