"""The cluster router: client-side coordinator over the shard map.

One :class:`ClusterClient` owns a :class:`~repro.cluster.hashring.ShardMap`
and a connection per node, and presents the single-node client surface
(put/get/op/reduce) over the whole cluster:

* **PUT** fans each key's bytes to *all* of its owners and acknowledges
  only when every owner accepted — with ``replicas >= 2`` a single node
  loss can never lose an acknowledged write.  Large arrays are placed
  *chunked*: :func:`~repro.cluster.chunking.split_container` slices the
  compressed stream block-aligned (no decode), each chunk becomes its
  own ring key, and a manifest records the chunk count for later
  reassembly and reduction fan-out.
* **GET** reads from the first live owner, failing over through the
  replica list; chunked arrays are reassembled byte-exactly by
  :func:`~repro.cluster.chunking.merge_containers`.
* **REDUCE** never moves array bytes: every chunk's owner answers a
  PREDUCE with quantized moments, the router tree-combines them with
  the exact :func:`repro.parallel.collectives.add_moments` algebra (in
  canonical chunk order), and applies the single final ``2 * eps``
  scaling.  Because quantized sums are exact float64 integers, the
  combined mean/min/max are **bit-identical** to a single-node REDUCE
  of the unsplit array, and variance/std are bit-identical across any
  cluster size or placement (see docs/CLUSTER.md for the algebra).
* **Epoch fencing** — every data RPC carries the router's map epoch; a
  ``RETRY`` from a node triggers reconciliation (adopt the newer map,
  or push ours) and exactly one retry against freshly computed owners.
* **Rebalancing** — :meth:`remove_node` builds the successor map
  (epoch + 1), pushes it to the survivors, and drops the dead
  connection; the membership monitor calls it on heartbeat loss, and
  the write path calls it inline when an owner dies mid-PUT.

The router is thread-safe: map/connection/manifest mutations are
serialized by one lock, and data-path reads snapshot the map reference
once per attempt.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.cluster.chunking import chunk_key, merge_containers, split_container
from repro.cluster.hashring import NodeInfo, ShardMap
from repro.core.format import SZOpsCompressed
from repro.parallel.collectives import add_moments
from repro.service.client import (
    ConnectionLost,
    RemoteError,
    ServiceClient,
    ServiceError,
    StaleEpoch,
    steps_from_chain,
)
from repro.service.protocol import Moments
from repro.service.telemetry import Telemetry

__all__ = [
    "ClusterError",
    "NoLiveOwner",
    "Manifest",
    "ClusterClient",
    "combine_moments",
    "finish_reduction",
]

#: Reductions the router can finish from one moment tuple.
CLUSTER_REDUCTIONS = ("mean", "variance", "std", "minimum", "maximum")

#: Connection-level failures that trigger replica failover on reads and
#: rebalance-and-retry on writes.
_DEAD_NODE_ERRORS = (ConnectionLost, ConnectionError, OSError)

T = TypeVar("T")


class ClusterError(ServiceError):
    """A cluster-level operation failed (no retry left)."""


class NoLiveOwner(ClusterError):
    """Every owner of a key was unreachable (or missing the key)."""


@dataclass(frozen=True)
class Manifest:
    """Placement record of one chunked array."""

    name: str
    n_chunks: int
    shape: tuple[int, ...]

    def keys(self) -> list[str]:
        return [chunk_key(self.name, i) for i in range(self.n_chunks)]


def combine_moments(partials: list[Moments]) -> Moments:
    """Tree-combine per-chunk moments into whole-array moments.

    Uses :func:`repro.parallel.collectives.add_moments` for the
    ``(sum, sum_sq, count)`` triple.  The combine is a balanced binary
    tree over the canonical chunk order; because every addend is an
    exact float64 integer the association cannot change the result —
    the tree shape is documentation of intent (and matches the
    in-process collectives), not a numerical requirement.
    """
    if not partials:
        raise ClusterError("cannot combine zero moment partials")
    eps = partials[0].eps
    for m in partials:
        if m.eps != eps:
            raise ClusterError(
                f"chunks disagree on eps ({m.eps!r} != {eps!r}); "
                "refusing to combine moments across error bounds"
            )
    level = list(partials)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            s, s2, n = add_moments(
                (a.sum_q, a.sumsq_q, a.count), (b.sum_q, b.sumsq_q, b.count)
            )
            nxt.append(
                Moments(
                    s, s2, min(a.min_q, b.min_q), max(a.max_q, b.max_q), n, eps
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def finish_reduction(reduction: str, m: Moments) -> float:
    """Scale combined quantized moments into the requested scalar.

    Mirrors :mod:`repro.runtime.lazy` exactly: ``mean`` is
    ``2*eps * (sum_q / n)`` (the same expression, on the same exact
    ``sum_q``, hence bit-identical), minimum/maximum scale the integer
    extremes, and variance uses the moment identity
    ``ssd = sumsq_q - mu_q * sum_q`` — deterministic and placement-
    invariant, within float64 rounding (~1e-12 relative) of the
    single-node two-pass formula.
    """
    if m.count <= 0:
        raise ClusterError("cannot reduce an empty array")
    scale = 2.0 * m.eps
    if reduction == "mean":
        return scale * (m.sum_q / m.count)
    if reduction == "minimum":
        return scale * m.min_q
    if reduction == "maximum":
        return scale * m.max_q
    if reduction in ("variance", "std"):
        mu_q = m.sum_q / m.count
        ssd = max(m.sumsq_q - mu_q * m.sum_q, 0.0)
        var = scale * scale * (ssd / m.count)
        return var if reduction == "variance" else math.sqrt(var)
    raise ClusterError(
        f"unknown reduction {reduction!r}; valid: {', '.join(CLUSTER_REDUCTIONS)}"
    )


class ClusterClient:
    """Cluster-aware client/coordinator (see module docstring).

    >>> cluster = ClusterClient(shard_map)          # doctest: +SKIP
    >>> cluster.put("U", compressed, chunks=8)      # doctest: +SKIP
    >>> cluster.reduce("U", "mean")                 # doctest: +SKIP
    """

    def __init__(
        self,
        shard_map: ShardMap,
        timeout_s: float = 30.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.map = shard_map
        self.timeout_s = timeout_s
        self.telemetry = telemetry or Telemetry()
        self._lock = threading.RLock()
        self._clients: dict[str, ServiceClient] = {}
        self._manifests: dict[str, Manifest] = {}

    # ------------------------------------------------------------------ connections

    def _client(self, node: NodeInfo) -> ServiceClient:
        with self._lock:
            client = self._clients.get(node.node_id)
            if client is None:
                client = ServiceClient(node.host, node.port, timeout_s=self.timeout_s)
                self._clients[node.node_id] = client
            return client

    def _drop_client(self, node_id: str) -> None:
        with self._lock:
            client = self._clients.pop(node_id, None)
        if client is not None:
            try:
                client.close()
            except OSError:  # szops: ignore[SZL006] -- socket teardown, not a codec path
                pass

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:  # szops: ignore[SZL006] -- socket teardown, not a codec path
                pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ map plane

    @property
    def epoch(self) -> int:
        return self.map.epoch

    def install_map(self) -> None:
        """Push the current map to every node (best effort per node)."""
        current = self.map
        for node in current.nodes:
            try:
                self._client(node).shardmap(current.to_json())
            except _DEAD_NODE_ERRORS:
                self.telemetry.increment_keyed("map_push_failures", node.node_id)

    def adopt_map(self, new_map: ShardMap) -> bool:
        """Switch to a strictly newer map; returns True when adopted."""
        with self._lock:
            if new_map.epoch <= self.map.epoch:
                return False
            self.map = new_map
            stale = set(self._clients) - {n.node_id for n in new_map.nodes}
        for node_id in stale:
            self._drop_client(node_id)
        self.telemetry.increment("map_adoptions")
        return True

    def remove_node(self, node_id: str) -> ShardMap:
        """Rebalance around a lost node and fence the new epoch in."""
        with self._lock:
            if all(n.node_id != node_id for n in self.map.nodes):
                return self.map  # already removed (monitor/write race)
            if len(self.map.nodes) == 1:
                raise ClusterError(
                    f"cannot remove {node_id!r}: it is the last node"
                )
            self.map = self.map.without_node(node_id)
        self._drop_client(node_id)
        self.telemetry.increment_keyed("rebalances", node_id)
        self.install_map()
        return self.map

    def _reconcile(self, exc: StaleEpoch) -> None:
        """Resolve an epoch fence: adopt the node's newer map or push ours."""
        if exc.map_json:
            other = ShardMap.from_json(exc.map_json)
            if self.adopt_map(other):
                return
        self.install_map()

    def _with_epoch_retry(self, attempt: Callable[[], T]) -> T:
        try:
            return attempt()
        except StaleEpoch as exc:
            self.telemetry.increment("epoch_retries")
            self._reconcile(exc)
            return attempt()

    # ------------------------------------------------------------------ read plane

    def _read_from_owners(
        self, key: str, op: Callable[[ServiceClient, int], T]
    ) -> T:
        """Run a read against the first owner that can answer it.

        Fails over through the replica list on dead connections *and*
        on store misses — after a rebalance the ring successor becomes
        an owner before any data migrates to it, so a miss there simply
        means "ask the next replica".
        """
        current = self.map
        owners = current.owners(key)
        last_error: Exception | None = None
        for position, node in enumerate(owners):
            try:
                result = op(self._client(node), current.epoch)
            except _DEAD_NODE_ERRORS as exc:
                last_error = exc
                self.telemetry.increment_keyed("read_failovers", node.node_id)
                continue
            except RemoteError as exc:
                # Only store misses fail over (post-rebalance successors
                # legitimately lack un-migrated keys); real remote faults
                # (bad chains, corrupt streams) surface immediately.
                if "unknown array" not in str(exc) and "evicted" not in str(exc):
                    raise
                last_error = exc
                self.telemetry.increment_keyed("read_misses", node.node_id)
                continue
            self.telemetry.increment_keyed("shard_reads", node.node_id)
            if position:
                self.telemetry.increment("replica_reads")
            return result
        raise NoLiveOwner(
            f"no owner of {key!r} could answer "
            f"({len(owners)} tried, epoch {current.epoch})"
        ) from last_error

    # ------------------------------------------------------------------ write plane

    def _put_key(self, key: str, stream: bytes) -> None:
        """Write one key to all of its owners; rebalance-and-retry once.

        Acknowledged (returns) only when every owner accepted the
        bytes.  When an owner dies mid-write the dead node is removed
        (epoch + 1), survivors get the new map, and the *whole* write
        re-runs against the fresh owner set — PUT assigns a new version
        per store insert, so the duplicate writes to surviving owners
        are harmless.
        """

        def attempt() -> None:
            current = self.map
            for node in current.owners(key):
                try:
                    self._client(node).put(key, stream, epoch=current.epoch)
                except _DEAD_NODE_ERRORS as exc:
                    raise _OwnerDied(node.node_id) from exc
                self.telemetry.increment_keyed("shard_writes", node.node_id)

        try:
            self._with_epoch_retry(attempt)
        except _OwnerDied as died:
            self.remove_node(died.node_id)
            try:
                self._with_epoch_retry(attempt)
            except _OwnerDied as again:
                raise ClusterError(
                    f"write of {key!r} failed twice (nodes "
                    f"{died.node_id!r}, {again.node_id!r} died)"
                ) from again

    # ------------------------------------------------------------------ data API

    def put(
        self,
        name: str,
        array: SZOpsCompressed | bytes,
        chunks: int = 1,
    ) -> int:
        """Store an array; returns the number of chunks placed.

        ``chunks > 1`` (containers only) splits the compressed stream
        block-aligned and places each chunk on its own ring owners —
        the layout distributed PREDUCE fans over.
        """
        if "/#" in name:
            raise ClusterError(
                f"array name {name!r} collides with the chunk-key namespace"
            )
        if chunks > 1 and isinstance(array, SZOpsCompressed):
            parts = split_container(array, chunks)
            for index, part in enumerate(parts):
                self._put_key(chunk_key(name, index), part.to_bytes())
            manifest = Manifest(name, len(parts), tuple(array.shape))
            with self._lock:
                self._manifests[name] = manifest
            return len(parts)
        stream = array.to_bytes() if isinstance(array, SZOpsCompressed) else bytes(array)
        self._put_key(name, stream)
        with self._lock:
            self._manifests.pop(name, None)
        return 1

    def manifest(self, name: str) -> Manifest | None:
        with self._lock:
            return self._manifests.get(name)

    def get_container(self, name: str) -> SZOpsCompressed:
        """Fetch an array (reassembled byte-exactly when chunked)."""
        manifest = self.manifest(name)
        if manifest is None:
            raw = self._with_epoch_retry(
                lambda: self._read_from_owners(
                    name, lambda c, e: c.get(name, epoch=e)
                )
            )
            return SZOpsCompressed.from_bytes(raw)

        def fetch() -> list[bytes]:
            return [
                self._read_from_owners(key, lambda c, e, k=key: c.get(k, epoch=e))
                for key in manifest.keys()
            ]

        blobs = self._with_epoch_retry(fetch)
        parts = [SZOpsCompressed.from_bytes(b) for b in blobs]
        return merge_containers(parts, shape=manifest.shape)

    def op(self, name: str, chain: Any, result_name: str = "") -> SZOpsCompressed | int:
        """Apply a pointwise chain; return the result or store it.

        Chunked arrays fan the chain to each chunk's owner (pointwise
        chains are per-element, so per-chunk application is exact) and,
        when storing, place result chunks by ring and register a result
        manifest.  Results are always re-placed through the router so
        ownership stays consistent — a node never stores a result for a
        key it does not own.
        """
        steps = steps_from_chain(chain)
        manifest = self.manifest(name)
        if manifest is None:
            raw = self._with_epoch_retry(
                lambda: self._read_from_owners(
                    name, lambda c, e: c.op(name, steps, epoch=e)
                )
            )
            if result_name:
                self.put(result_name, bytes(raw))
                return 1
            return SZOpsCompressed.from_bytes(bytes(raw))

        def fetch() -> list[bytes]:
            return [
                bytes(
                    self._read_from_owners(
                        key, lambda c, e, k=key: c.op(k, steps, epoch=e)
                    )
                )
                for key in manifest.keys()
            ]

        blobs = self._with_epoch_retry(fetch)
        if result_name:
            for index, blob in enumerate(blobs):
                self._put_key(chunk_key(result_name, index), blob)
            with self._lock:
                self._manifests[result_name] = Manifest(
                    result_name, manifest.n_chunks, manifest.shape
                )
            return manifest.n_chunks
        parts = [SZOpsCompressed.from_bytes(b) for b in blobs]
        return merge_containers(parts, shape=manifest.shape)

    def preduce(self, name: str, chain: Any = ()) -> Moments:
        """Whole-array quantized moments via per-chunk PREDUCE fan-out."""
        steps = steps_from_chain(chain)
        manifest = self.manifest(name)
        keys = manifest.keys() if manifest is not None else [name]

        def fan_out() -> list[Moments]:
            return [
                self._read_from_owners(
                    key, lambda c, e, k=key: c.preduce(k, steps, epoch=e)
                )
                for key in keys
            ]

        return combine_moments(self._with_epoch_retry(fan_out))

    def reduce(self, name: str, reduction: str, chain: Any = ()) -> float:
        """Distributed reduction (see module docstring for exactness)."""
        if reduction not in CLUSTER_REDUCTIONS:
            raise ClusterError(
                f"unknown reduction {reduction!r}; valid: "
                f"{', '.join(CLUSTER_REDUCTIONS)}"
            )
        return finish_reduction(reduction, self.preduce(name, chain))

    # ------------------------------------------------------------------ observability

    def status(self) -> dict[str, Any]:
        """Per-node ping results plus the router's own view of the map."""
        current = self.map
        nodes: dict[str, Any] = {}
        for node in current.nodes:
            try:
                nodes[node.node_id] = self._client(node).ping()
            except _DEAD_NODE_ERRORS as exc:
                nodes[node.node_id] = {"error": str(exc) or type(exc).__name__}
        return {
            "epoch": current.epoch,
            "replicas": current.replicas,
            "nodes": nodes,
            "manifests": {
                m.name: m.n_chunks for m in self._manifests.values()
            },
            "telemetry": self.telemetry.snapshot(),
        }


class _OwnerDied(Exception):
    """Internal: a specific owner's connection died mid-write."""

    def __init__(self, node_id: str) -> None:
        super().__init__(node_id)
        self.node_id = node_id
