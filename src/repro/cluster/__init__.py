"""repro.cluster — sharded multi-node serving with distributed reductions.

Scales :mod:`repro.service` horizontally while keeping the paper's
numerical contract intact: compressed arrays are split block-aligned
(decode-free) across shard nodes on a consistent-hash ring, reductions
run as per-shard PREDUCE returning *quantized* moments that the router
combines with the exact integer algebra from
:mod:`repro.parallel.collectives` — so a distributed ``mean``/``min``/
``max`` is bit-identical to the single-node result, regardless of
cluster size or placement.

Layers (each usable on its own):

* :mod:`~repro.cluster.hashring` — deterministic consistent-hash shard
  maps with virtual nodes, replica owner sets, and versioned epochs.
* :mod:`~repro.cluster.chunking` — decode-free split/merge of SZOps
  containers along block boundaries, plus the chunk-key namespace.
* :mod:`~repro.cluster.node` — a :class:`~repro.service.server.ServiceServer`
  subclass adding the SHARDMAP / PREDUCE / PING opcodes and epoch
  fencing.
* :mod:`~repro.cluster.router` — the client-side coordinator: replica
  fan-out writes, failover reads, distributed reductions, epoch
  reconciliation, and rebalancing.
* :mod:`~repro.cluster.membership` — heartbeat failure detection that
  drives automatic rebalancing.
* :mod:`~repro.cluster.bench` — local-cluster boot helper and the mixed
  PUT/REDUCE load generator with identity checking.

See ``docs/CLUSTER.md`` for the architecture and the exactness matrix.
"""

from repro.cluster.bench import local_cluster, run_cluster_bench
from repro.cluster.chunking import (
    chunk_key,
    merge_containers,
    parse_chunk_key,
    split_container,
)
from repro.cluster.hashring import NodeInfo, ShardMap, hash_point
from repro.cluster.membership import HeartbeatMonitor, ProbeState
from repro.cluster.node import ClusterNode, NodeConfig
from repro.cluster.router import (
    CLUSTER_REDUCTIONS,
    ClusterClient,
    ClusterError,
    Manifest,
    NoLiveOwner,
    combine_moments,
    finish_reduction,
)

__all__ = [
    "NodeInfo",
    "ShardMap",
    "hash_point",
    "chunk_key",
    "parse_chunk_key",
    "split_container",
    "merge_containers",
    "NodeConfig",
    "ClusterNode",
    "ClusterClient",
    "ClusterError",
    "NoLiveOwner",
    "Manifest",
    "CLUSTER_REDUCTIONS",
    "combine_moments",
    "finish_reduction",
    "HeartbeatMonitor",
    "ProbeState",
    "local_cluster",
    "run_cluster_bench",
]
