"""One cluster node: a :class:`ServiceServer` plus the v2 opcodes.

A node is deliberately thin — it *is* the single-node server, with
three additions layered on the ``_dispatch_extra`` hook:

* **SHARDMAP** — install/fetch the cluster placement map.  A node
  accepts any map with an epoch at or above its current one and always
  answers with the map it now holds, so install-and-confirm is one
  round trip and pushing an old map is a harmless no-op.
* **PREDUCE** — the distributed-reduction workhorse: fold the request's
  pointwise prefix through the PR-1 fusion runtime and return the
  *quantized* moment tuple ``(sum_q, sumsq_q, min_q, max_q, n)`` of
  whatever shard of the array this node stores.  No ``2*eps`` scaling
  happens here; the router applies it once after combining, exactly as
  ``runtime.lazy`` would have, which is what keeps distributed results
  bit-identical to single-node ones.
* **PING** — a cheap liveness probe answering epoch + load, the signal
  the membership monitor consumes.

**Epoch fencing**: every data request (PUT/GET/OP/REDUCE/PREDUCE) whose
v2 header carries a non-zero epoch is checked against the node's map
epoch.  Mismatch means someone's routing table is stale — the node
answers ``RETRY`` carrying its own map rather than serving what might
be a misroute, and the router reconciles (adopts the newer map or
pushes its own).  Requests with epoch 0 (plain single-node clients)
bypass the fence: a cluster node still serves the v1 protocol
unchanged.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass

from repro.cluster.hashring import ShardMap
from repro.runtime.lazy import LazyStream
from repro.service.protocol import (
    BodyKind,
    Moments,
    Opcode,
    PingRequest,
    PReduceRequest,
    Reply,
    Request,
    ShardMapRequest,
    Status,
)
from repro.service.server import ServiceConfig, ServiceServer, _validate_pointwise

__all__ = ["NodeConfig", "ClusterNode"]

#: Opcodes exempt from epoch fencing: control-plane exchanges must work
#: between disagreeing parties (that is how they stop disagreeing), and
#: observability must work during partitions.
_UNFENCED = frozenset(
    {Opcode.SHARDMAP, Opcode.PING, Opcode.STATS, Opcode.HEALTH}
)


@dataclass(frozen=True)
class NodeConfig(ServiceConfig):
    """Server tunables plus the node's stable cluster identity."""

    node_id: str = "node-0"


class ClusterNode(ServiceServer):
    """A shard server: the full v1 service plus SHARDMAP/PREDUCE/PING."""

    def __init__(self, config: NodeConfig | None = None) -> None:
        cfg = config or NodeConfig()
        super().__init__(cfg)
        self.node_id = cfg.node_id
        #: The placement map this node currently fences against.  Only
        #: ever touched on the event-loop thread (dispatch is
        #: single-threaded per node), so no lock is needed.
        self.shard_map: ShardMap | None = None

    # ------------------------------------------------------------------ fencing

    @property
    def epoch(self) -> int:
        return self.shard_map.epoch if self.shard_map is not None else 0

    def _stale_reply(self, caller_epoch: int) -> Reply:
        self.telemetry.increment("epoch_rejections")
        map_json = self.shard_map.to_json() if self.shard_map is not None else ""
        return Reply(
            status=Status.RETRY,
            kind=BodyKind.MESSAGE,
            message=(
                f"epoch fence: caller at {caller_epoch}, node "
                f"{self.node_id!r} at {self.epoch}"
            ),
            json_text=map_json,
        )

    async def _dispatch(self, request: Request, epoch: int = 0) -> Reply:
        if epoch and request.opcode not in _UNFENCED and epoch != self.epoch:
            return self._stale_reply(epoch)
        return await super()._dispatch(request, epoch)

    # ------------------------------------------------------------------ v2 opcodes

    async def _dispatch_extra(self, request: Request, epoch: int) -> Reply:
        if isinstance(request, ShardMapRequest):
            return self._handle_shardmap(request)
        if isinstance(request, PReduceRequest):
            return await self._handle_preduce(request)
        if isinstance(request, PingRequest):
            return self._handle_ping()
        return await super()._dispatch_extra(request, epoch)

    def _handle_shardmap(self, request: ShardMapRequest) -> Reply:
        if request.map_json:
            incoming = ShardMap.from_json(request.map_json)
            if self.shard_map is None or incoming.epoch >= self.shard_map.epoch:
                self.shard_map = incoming
                self.telemetry.increment("shardmap_installs")
            else:
                self.telemetry.increment("shardmap_stale_pushes")
        doc = {
            "node_id": self.node_id,
            "epoch": self.epoch,
            "map": json.loads(self.shard_map.to_json())
            if self.shard_map is not None
            else None,
        }
        return Reply(status=Status.OK, kind=BodyKind.JSON, json_text=json.dumps(doc))

    async def _handle_preduce(self, request: PReduceRequest) -> Reply:
        if request.steps:
            _validate_pointwise(request.steps)
        entry = self.store.get(request.name, request.version)
        delay = self.config.debug_delay_s
        self.telemetry.increment_keyed("preduce_arrays", request.name)

        def compute() -> Moments:
            if delay:
                time.sleep(delay)
            chain = LazyStream(entry.container)
            for name, scalar in (s.as_pair() for s in request.steps):
                chain = chain.apply(name, scalar)
            s, s2, lo, hi, count = chain.quantized_moments()
            return Moments(s, s2, lo, hi, count, entry.container.eps)

        loop = asyncio.get_running_loop()
        moments = await loop.run_in_executor(self.pool, compute)
        return Reply(status=Status.OK, kind=BodyKind.MOMENTS, moments=moments)

    def _handle_ping(self) -> Reply:
        doc = {
            "node_id": self.node_id,
            "epoch": self.epoch,
            "inflight": self._inflight,
            "arrays": self.store.snapshot()["arrays"],
            "uptime_seconds": self.telemetry.uptime_seconds,
        }
        return Reply(status=Status.OK, kind=BodyKind.JSON, json_text=json.dumps(doc))

    # ------------------------------------------------------------------ identity

    def _identity(self) -> dict[str, object]:
        doc = super()._identity()
        doc["node_id"] = self.node_id
        doc["epoch"] = self.epoch
        return doc
