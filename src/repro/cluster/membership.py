"""Heartbeat failure detection and automatic shard-map rebalancing.

A :class:`HeartbeatMonitor` runs one daemon thread that PINGs every
node in the router's current map on a fixed interval over dedicated
short-timeout connections (never the router's data connections — a
slow bulk transfer must not look like a death).  The detector is the
classic consecutive-miss counter: a node is declared dead only after
``fail_after`` *consecutive* probe failures, trading detection latency
(``interval_s * fail_after`` worst case) against false positives from
one dropped packet or a GC pause.

On declared death the monitor calls ``router.remove_node``: the router
builds the successor map (epoch + 1), pushes it to the survivors, and
every in-flight stale-epoch request gets fenced into a ``RETRY`` with
the new map rather than a misroute.  The monitor also *heals*: a probe
answering with an older epoch than the router's (a node that restarted
or missed a push) gets the current map re-pushed.

The monitor never resurrects nodes on its own — re-adding a recovered
node is an operator decision (``ShardMap.with_node``) because it moves
data; detecting one is not.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cluster.hashring import NodeInfo
from repro.cluster.router import ClusterClient, ClusterError
from repro.service.client import ConnectionLost, ServiceClient

__all__ = ["ProbeState", "HeartbeatMonitor"]

#: Failures a probe treats as a miss: connection/timeout trouble, plus
#: the client's typed ConnectionLost (raised when its own one-shot
#: reconnect retry also fails).  Anything else is a bug and propagates
#: to the monitor's crash log.
_PROBE_ERRORS = (ConnectionError, OSError, TimeoutError, ConnectionLost)


@dataclass
class ProbeState:
    """Rolling view of one node's heartbeat history."""

    node: NodeInfo
    alive: bool = True
    consecutive_misses: int = 0
    probes: int = 0
    last_rtt_s: float = 0.0
    last_epoch: int = 0
    last_error: str = ""
    declared_dead: bool = field(default=False)


class HeartbeatMonitor:
    """Background failure detector driving router rebalances.

    >>> monitor = HeartbeatMonitor(cluster, interval_s=0.1)  # doctest: +SKIP
    >>> monitor.start()                                      # doctest: +SKIP
    >>> ... # SIGKILL a node; within ~interval*fail_after it is removed
    >>> monitor.stop()                                       # doctest: +SKIP
    """

    def __init__(
        self,
        router: ClusterClient,
        interval_s: float = 0.2,
        fail_after: int = 3,
        probe_timeout_s: float = 1.0,
    ) -> None:
        if fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        self.router = router
        self.interval_s = interval_s
        self.fail_after = fail_after
        self.probe_timeout_s = probe_timeout_s
        self._lock = threading.Lock()
        self._states: dict[str, ProbeState] = {}
        self._probe_clients: dict[str, ServiceClient] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout_s)
        with self._lock:
            clients = list(self._probe_clients.values())
            self._probe_clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:  # szops: ignore[SZL006] -- socket teardown, not a codec path
                pass

    def __enter__(self) -> "HeartbeatMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ probing

    def _probe_client(self, node: NodeInfo) -> ServiceClient:
        with self._lock:
            client = self._probe_clients.get(node.node_id)
        if client is None:
            client = ServiceClient(
                node.host, node.port, timeout_s=self.probe_timeout_s
            )
            with self._lock:
                self._probe_clients[node.node_id] = client
        return client

    def _drop_probe_client(self, node_id: str) -> None:
        with self._lock:
            client = self._probe_clients.pop(node_id, None)
        if client is not None:
            try:
                client.close()
            except OSError:  # szops: ignore[SZL006] -- socket teardown, not a codec path
                pass

    def _probe_once(self, node: NodeInfo) -> None:
        state = self._state_for(node)
        state.probes += 1
        t0 = time.perf_counter()
        try:
            doc = self._probe_client(node).ping()
        except _PROBE_ERRORS as exc:
            self._drop_probe_client(node.node_id)
            state.consecutive_misses += 1
            state.last_error = str(exc) or type(exc).__name__
            state.alive = state.consecutive_misses < self.fail_after
            if not state.alive and not state.declared_dead:
                state.declared_dead = True
                self._declare_dead(node)
            return
        state.consecutive_misses = 0
        state.alive = True
        state.declared_dead = False
        state.last_rtt_s = time.perf_counter() - t0
        state.last_epoch = int(doc.get("epoch", 0))
        state.last_error = ""
        # Heal a node that restarted (or missed a push) behind our epoch.
        if 0 < state.last_epoch < self.router.epoch:
            self.router.install_map()

    def _declare_dead(self, node: NodeInfo) -> None:
        try:
            self.router.remove_node(node.node_id)
        except ClusterError:  # szops: ignore[SZL006] -- last node standing: nothing to rebalance onto; keep probing
            pass

    def _state_for(self, node: NodeInfo) -> ProbeState:
        with self._lock:
            state = self._states.get(node.node_id)
            if state is None:
                state = ProbeState(node)
                self._states[node.node_id] = state
            return state

    def _run(self) -> None:
        while not self._stop.is_set():
            for node in self.router.map.nodes:
                if self._stop.is_set():
                    return
                self._probe_once(node)
            self._stop.wait(self.interval_s)

    # ------------------------------------------------------------------ reading

    def status(self) -> dict[str, dict[str, object]]:
        """Probe states keyed by node id (nodes still in the map first)."""
        current_ids = {n.node_id for n in self.router.map.nodes}
        with self._lock:
            states = dict(self._states)
        return {
            node_id: {
                "alive": s.alive,
                "in_map": node_id in current_ids,
                "probes": s.probes,
                "consecutive_misses": s.consecutive_misses,
                "last_rtt_ms": 1e3 * s.last_rtt_s,
                "epoch": s.last_epoch,
                "error": s.last_error,
            }
            for node_id, s in states.items()
        }
