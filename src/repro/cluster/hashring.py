"""Consistent-hash shard maps with versioned epochs.

The cluster assigns every store key (an array name or a chunk name) to
``replicas`` nodes via a classic consistent-hash ring: each node
contributes ``vnodes`` virtual points (SHA-256 of ``"node_id#k"``), the
key hashes to a point on the same 64-bit circle, and its owners are the
first ``replicas`` *distinct* nodes clockwise from there.  Two
properties carry the whole failure model:

* **Determinism** — placement is a pure function of ``(nodes, vnodes,
  replicas, key)``.  Every router and every node computing owners from
  the same map agrees byte-for-byte, so the map itself is the only
  state that has to be distributed.
* **Minimal movement** — removing a node reassigns only the keys it
  owned: each such key's new owner set is the old one minus the dead
  node plus the next distinct ring successor.  In particular, with
  ``replicas >= 2`` the new *primary* of every lost key is one of its
  surviving previous owners, so failover reads need no data movement
  at all (the property test in ``tests/cluster`` pins both halves).

Maps are immutable; every mutation returns a new map with ``epoch + 1``.
The epoch is the fencing token carried in every v2 request header: a
node at a different epoch answers ``RETRY`` with its map instead of
serving a misroute.  ``to_json`` / ``from_json`` round-trip the whole
map exactly (node order is part of the identity — it seeds nothing, but
keeping it stable keeps the JSON canonical).
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass

__all__ = ["NodeInfo", "ShardMap", "hash_point"]


@dataclass(frozen=True, order=True)
class NodeInfo:
    """One cluster node: a stable identity plus its TCP endpoint."""

    node_id: str
    host: str
    port: int

    def to_doc(self) -> dict[str, object]:
        return {"node_id": self.node_id, "host": self.host, "port": self.port}

    @classmethod
    def from_doc(cls, doc: dict[str, object]) -> "NodeInfo":
        return cls(str(doc["node_id"]), str(doc["host"]), int(doc["port"]))


def hash_point(text: str) -> int:
    """Deterministic 64-bit ring position of a string (SHA-256 prefix)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardMap:
    """An immutable, epoch-versioned consistent-hash placement map."""

    __slots__ = ("epoch", "nodes", "replicas", "vnodes", "_points", "_point_owner")

    def __init__(
        self,
        nodes: tuple[NodeInfo, ...] | list[NodeInfo],
        replicas: int = 2,
        vnodes: int = 64,
        epoch: int = 1,
    ) -> None:
        nodes = tuple(nodes)
        if not nodes:
            raise ValueError("a shard map needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids in shard map: {sorted(ids)}")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        self.epoch = int(epoch)
        self.nodes = nodes
        #: Requested replication; effective replication is capped at the
        #: node count (a 3-replica map over 2 nodes stores 2 copies).
        self.replicas = int(replicas)
        self.vnodes = int(vnodes)
        pairs = sorted(
            (hash_point(f"{node.node_id}#{k}"), i)
            for i, node in enumerate(nodes)
            for k in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._point_owner = [i for _, i in pairs]

    # ------------------------------------------------------------------ placement

    @property
    def effective_replicas(self) -> int:
        return min(self.replicas, len(self.nodes))

    def owners(self, key: str) -> tuple[NodeInfo, ...]:
        """The ``effective_replicas`` distinct nodes owning ``key``.

        The first element is the primary; the rest are replicas in
        clockwise ring order (the failover order readers use).
        """
        start = bisect_right(self._points, hash_point(key))
        seen: list[int] = []
        n_points = len(self._points)
        for step in range(n_points):
            owner = self._point_owner[(start + step) % n_points]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == self.effective_replicas:
                    break
        return tuple(self.nodes[i] for i in seen)

    def primary(self, key: str) -> NodeInfo:
        return self.owners(key)[0]

    def node(self, node_id: str) -> NodeInfo:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"unknown node id {node_id!r}")

    # ------------------------------------------------------------------ mutation

    def without_node(self, node_id: str) -> "ShardMap":
        """A new map (epoch + 1) with ``node_id`` removed."""
        survivors = tuple(n for n in self.nodes if n.node_id != node_id)
        if len(survivors) == len(self.nodes):
            raise KeyError(f"unknown node id {node_id!r}")
        return ShardMap(survivors, self.replicas, self.vnodes, self.epoch + 1)

    def with_node(self, node: NodeInfo) -> "ShardMap":
        """A new map (epoch + 1) with ``node`` added."""
        if any(n.node_id == node.node_id for n in self.nodes):
            raise ValueError(f"node id {node.node_id!r} already in the map")
        return ShardMap(
            self.nodes + (node,), self.replicas, self.vnodes, self.epoch + 1
        )

    # ------------------------------------------------------------------ identity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMap):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.nodes == other.nodes
            and self.replicas == other.replicas
            and self.vnodes == other.vnodes
        )

    def __hash__(self) -> int:
        return hash((self.epoch, self.nodes, self.replicas, self.vnodes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ids = ",".join(n.node_id for n in self.nodes)
        return (
            f"ShardMap(epoch={self.epoch}, nodes=[{ids}], "
            f"replicas={self.replicas}, vnodes={self.vnodes})"
        )

    # ------------------------------------------------------------------ JSON

    def to_json(self) -> str:
        return json.dumps(
            {
                "epoch": self.epoch,
                "replicas": self.replicas,
                "vnodes": self.vnodes,
                "nodes": [n.to_doc() for n in self.nodes],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ShardMap":
        doc = json.loads(text)
        if not isinstance(doc, dict):
            raise ValueError("shard map JSON must be an object")
        nodes = tuple(NodeInfo.from_doc(d) for d in doc["nodes"])
        return cls(
            nodes,
            replicas=int(doc["replicas"]),
            vnodes=int(doc["vnodes"]),
            epoch=int(doc["epoch"]),
        )
