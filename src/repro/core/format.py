"""The SZOps compressed container and its serialized stream layout.

The stream layout follows Figure 3 of the paper::

    header | per-block widths | per-block outliers | sign bitmaps | payload

with two properties that distinguish SZOps from SZp (its ancestor) and that
Table VII attributes the ratio advantage to:

* **no per-block byte-length field** — block boundaries inside the sign and
  payload sections are *derived* from the width plane, never stored;
* **outliers reorganized into their own plane** — constant blocks reduce to
  one width byte plus one outlier, with no sign bitmap and no payload.

The in-memory container keeps each section as a NumPy array so that
compressed-domain operations (:mod:`repro.core.ops`) can act on exactly the
data a serialized stream holds.  ``to_bytes`` / ``from_bytes`` round-trip
the container through the single-buffer stream format.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.bitstream import ByteReader, ByteWriter
from repro.core.blocks import BlockLayout
from repro.core.errors import FormatError

__all__ = ["SZOpsCompressed", "MAGIC"]

MAGIC = b"SZOPS"


@dataclass
class SZOpsCompressed:
    """A compressed array plus the metadata needed to operate on it.

    Attributes
    ----------
    shape : original array shape.
    dtype : original array dtype (reconstruction target).
    eps : absolute error bound the stream was produced with.
    block_size : elements per block.
    widths : uint8, one fixed-length bit width per block (0 = constant).
    outliers : int64, one quantized first-value per block.
    sign_bytes : packed sign bitmaps of the non-constant blocks, in block
        order (one bit per element; the block-start bit is always 0).
    payload_bytes : packed fixed-length magnitudes of the non-constant
        blocks, in block order.
    """

    shape: tuple[int, ...]
    dtype: np.dtype
    eps: float
    block_size: int
    widths: np.ndarray
    outliers: np.ndarray
    sign_bytes: np.ndarray
    payload_bytes: np.ndarray

    # ------------------------------------------------------------------ geometry

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def layout(self) -> BlockLayout:
        return BlockLayout(self.n_elements, self.block_size)

    @property
    def n_blocks(self) -> int:
        return self.layout.n_blocks

    @property
    def constant_mask(self) -> np.ndarray:
        """Boolean mask over blocks: True where the block is constant."""
        return self.widths == 0

    @property
    def n_constant_blocks(self) -> int:
        return int(np.count_nonzero(self.constant_mask))

    @property
    def constant_fraction(self) -> float:
        return self.n_constant_blocks / max(self.n_blocks, 1)

    def stored_lengths(self) -> np.ndarray:
        """Element counts of the non-constant (stored) blocks, in order."""
        return self.layout.lengths()[~self.constant_mask]

    # ------------------------------------------------------------------ sizes

    @property
    def compressed_nbytes(self) -> int:
        """Exact size of the serialized stream in bytes."""
        return len(self.to_bytes())

    @property
    def original_nbytes(self) -> int:
        return self.n_elements * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        return self.original_nbytes / max(self.compressed_nbytes, 1)

    # ------------------------------------------------------------------ checks

    def validate_structure(self) -> None:
        """Structural sanity checks; raises :class:`FormatError` on damage."""
        layout = self.layout
        if self.widths.shape != (layout.n_blocks,):
            raise FormatError("width plane does not match block count")
        if self.outliers.shape != (layout.n_blocks,):
            raise FormatError("outlier plane does not match block count")
        if self.widths.size and int(self.widths.max()) > 64:
            raise FormatError("block width exceeds 64 bits")
        stored = self.stored_lengths()
        sign_bits = int(stored.sum())
        if self.sign_bytes.size < (sign_bits + 7) // 8:
            raise FormatError("sign section shorter than the width plane implies")
        payload_bits = int(
            (self.widths[~self.constant_mask].astype(np.int64) * stored).sum()
        )
        if self.payload_bytes.size < (payload_bits + 7) // 8:
            raise FormatError("payload section shorter than the width plane implies")

    def content_fingerprint(self) -> str:
        """Content-addressed identity of the stream (cache key).

        A 128-bit BLAKE2b digest over the header fields (dtype, shape, eps,
        block size) and the four section planes (widths, outliers, signs,
        payload).  Two containers share a fingerprint iff they represent the
        same stream byte for byte, so the decoded-block cache in
        :mod:`repro.runtime.cache` keys on this value: mutating a container
        in place (e.g. ``scalar_add(..., inplace=True)``) changes its
        fingerprint and therefore naturally misses any stale cache entry.

        Cheaper than ``to_bytes()`` (no stream assembly, no outlier-plane
        narrowing) and orders of magnitude cheaper than the BF⁻¹ + Lorenzo⁻¹
        decode it guards.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(np.dtype(self.dtype).str.encode())
        h.update(struct.pack(f"<B{len(self.shape)}q", len(self.shape), *self.shape))
        h.update(struct.pack("<dI", self.eps, self.block_size))
        h.update(np.ascontiguousarray(self.widths, dtype=np.uint8))
        h.update(np.ascontiguousarray(self.outliers, dtype=np.int64))
        h.update(np.ascontiguousarray(self.sign_bytes, dtype=np.uint8))
        h.update(np.ascontiguousarray(self.payload_bytes, dtype=np.uint8))
        return h.hexdigest()

    def copy(self) -> "SZOpsCompressed":
        """Deep copy (ops that mutate planes work on copies by default)."""
        return replace(
            self,
            widths=self.widths.copy(),
            outliers=self.outliers.copy(),
            sign_bytes=self.sign_bytes.copy(),
            payload_bytes=self.payload_bytes.copy(),
        )

    # ------------------------------------------------------------------ serialization

    def to_bytes(self) -> bytes:
        """Serialize to the single-buffer stream of Figure 3."""
        w = ByteWriter()
        w.write_bytes(MAGIC)
        w.write_u8(1)  # format version
        w.write_str(np.dtype(self.dtype).str)
        w.write_u8(len(self.shape))
        for dim in self.shape:
            w.write_u64(dim)
        w.write_f64(self.eps)
        w.write_u32(self.block_size)
        w.write_bytes(np.ascontiguousarray(self.widths, dtype=np.uint8))
        # The outlier plane dominates per-block overhead; narrow it to the
        # smallest integer type that holds every value.
        out = np.ascontiguousarray(self.outliers, dtype=np.int64)
        for cand in (np.int16, np.int32):
            info = np.iinfo(cand)
            if out.size == 0 or (out.min() >= info.min and out.max() <= info.max):
                w.write_array(out.astype(cand))
                break
        else:
            w.write_array(out)
        w.write_u64(int(self.sign_bytes.size))
        w.write_bytes(self.sign_bytes)
        w.write_u64(int(self.payload_bytes.size))
        w.write_bytes(self.payload_bytes)
        return w.getvalue()

    @classmethod
    def from_bytes(cls, buf: bytes) -> "SZOpsCompressed":
        """Parse a serialized stream back into a container."""
        r = ByteReader(buf)
        if r.read_bytes(len(MAGIC)) != MAGIC:
            raise FormatError("not an SZOps stream (bad magic)")
        version = r.read_u8()
        if version != 1:
            raise FormatError(f"unsupported SZOps stream version {version}")
        try:
            dtype = np.dtype(r.read_str())
        except TypeError as exc:
            raise FormatError(f"bad dtype field: {exc}") from None
        ndim = r.read_u8()
        shape = tuple(r.read_u64() for _ in range(ndim))
        eps = r.read_f64()
        block_size = r.read_u32()
        # Header sanity against corrupted/hostile streams: the element count
        # must be positive, fit in int64, and be consistent with the buffer.
        n_elements = 1
        for dim in shape:
            n_elements *= dim
            if n_elements <= 0 or n_elements > 2**62:
                raise FormatError(f"implausible shape in header: {shape}")
        if block_size <= 0:
            raise FormatError(f"invalid block size {block_size}")
        if not (eps > 0 and np.isfinite(eps)):
            raise FormatError(f"invalid error bound {eps} in header")
        layout = BlockLayout(n_elements, block_size)
        widths = np.frombuffer(r.read_bytes(layout.n_blocks), dtype=np.uint8).copy()
        outliers = r.read_array().astype(np.int64)
        if outliers.size != layout.n_blocks:
            raise FormatError("outlier plane does not match block count")
        n_sign = r.read_u64()
        sign_bytes = np.frombuffer(r.read_bytes(n_sign), dtype=np.uint8).copy()
        n_payload = r.read_u64()
        payload_bytes = np.frombuffer(r.read_bytes(n_payload), dtype=np.uint8).copy()
        r.expect_end()
        container = cls(
            shape=shape,
            dtype=dtype,
            eps=eps,
            block_size=block_size,
            widths=widths,
            outliers=outliers,
            sign_bytes=sign_bytes,
            payload_bytes=payload_bytes,
        )
        container.validate_structure()
        return container
